#!/usr/bin/env python3
"""Collect benchmarks/results/*.txt into a single RESULTS.md report.

Run after a bench pass::

    pytest benchmarks/ --benchmark-only
    python benchmarks/collect_results.py        # writes RESULTS.md

The report groups the paper experiments (figures/tables in paper order)
before the extensions, so a reviewer can read one file top to bottom.
"""

from __future__ import annotations

import sys
from datetime import datetime, timezone
from pathlib import Path

RESULTS = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "RESULTS.md"

#: presentation order; anything else lands under "Other".
ORDER = [
    ("Paper experiments", [
        "fig02_ring_deadlock",
        "sec4_heuristics",
        "sec4_offline_vs_online",
        "fig04_realworld_ebb",
        "fig05_xgft_ebb",
        "fig06_kautz_ebb",
        "fig07_runtime_trees",
        "fig08_runtime_realworld",
        "table1_parameters",
        "fig09_random_vls",
        "fig10_realworld_vls",
        "fig12_netgauge_ebb",
        "fig13_alltoall",
        "fig14_nas_bt",
        "fig15_nas_sp",
        "fig16_nas_ft",
        "table2_nas_1024",
        "thm1_reduction",
    ]),
    ("Performance", [
        "parallel_speedup",
    ]),
    ("Extensions", [
        "ext_nas_ranger",
        "ext_dragonfly_vls",
        "ext_fault_sweep",
        "ext_grown_cluster",
        "ext_ablation_balance",
        "ext_saturation",
        "ext_lmc_multipath",
        "ext_reroute_time",
        "ext_adversarial",
        "ext_torus_lanes",
    ]),
]


def main() -> int:
    if not RESULTS.is_dir():
        print("no benchmarks/results/ directory; run the bench suite first", file=sys.stderr)
        return 1
    available = {p.stem: p for p in RESULTS.glob("*.txt")}
    lines = [
        "# RESULTS — regenerated benchmark tables",
        "",
        f"Collected {datetime.now(timezone.utc).strftime('%Y-%m-%d %H:%M UTC')} "
        f"from `benchmarks/results/`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of every entry.",
        "",
    ]
    seen = set()
    for section, names in ORDER:
        block = [name for name in names if name in available]
        if not block:
            continue
        lines.append(f"## {section}")
        lines.append("")
        for name in block:
            seen.add(name)
            lines.append("```")
            lines.append(available[name].read_text().rstrip())
            lines.append("```")
            lines.append("")
    leftovers = sorted(set(available) - seen)
    if leftovers:
        lines.append("## Other")
        lines.append("")
        for name in leftovers:
            lines.append("```")
            lines.append(available[name].read_text().rstrip())
            lines.append("```")
            lines.append("")
    OUTPUT.write_text("\n".join(lines))
    print(f"wrote {OUTPUT} ({len(seen) + len(leftovers)} tables)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
