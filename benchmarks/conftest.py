"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper. Because
the substrate is pure Python (the paper used C inside OpenSM plus real
hardware), default sizes are scaled down so the whole suite runs in
minutes; set ``REPRO_FULL=1`` for paper-scale runs. Every harness prints
its table and also writes it to ``benchmarks/results/<name>.txt``, which
EXPERIMENTS.md references.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: paper-scale switch; see module docstring.
FULL = os.environ.get("REPRO_FULL") == "1"

RESULTS_DIR = Path(__file__).parent / "results"

#: cluster lookalike scales for CI runs (full scale = 1.0).
CLUSTER_SCALES = {
    "odin": 0.5 if not FULL else 1.0,
    "deimos": 0.12 if not FULL else 1.0,
    "chic": 0.15 if not FULL else 1.0,
    "tsubame": 0.08 if not FULL else 1.0,
    "juropa": 0.04 if not FULL else 1.0,
    "ranger": 0.05 if not FULL else 1.0,
}

#: artificial-topology sweep sizes (paper: 64..4096).
SWEEP_SIZES = (64, 128, 256, 512, 1024, 2048, 4096) if FULL else (64, 128, 256)

#: bisection patterns per eBB estimate (ORCS used O(1000)).
EBB_PATTERNS = 250 if FULL else 25


def emit(name: str, text: str, table=None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    When the :class:`~repro.utils.reporting.Table` object is supplied a
    machine-readable CSV lands next to the text rendering.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if table is not None:
        (RESULTS_DIR / f"{name}.csv").write_text(table.to_csv())
    print()
    print(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The harnesses are end-to-end experiments (routing + simulation), so a
    single round keeps the suite fast while still recording wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL
