"""Shared harness for the NAS application benchmarks (Figs. 14-16, Table II).

Builds the Deimos lookalike once, routes it with MinHop / LASH / DFSSSP,
and predicts each kernel's Gflop/s over a core sweep through the
congestion-driven performance model. One fixed allocation per core count
is shared by all engines (the paper's same-allocation methodology).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import CLUSTER_SCALES

from repro import topologies
from repro.apps import core_allocation, improvement_percent, predict_kernel
from repro.core import DFSSSPEngine
from repro.routing import LASHEngine, MinHopEngine
from repro.utils.reporting import Table

ENGINE_ORDER = ("minhop", "lash", "dfsssp")


@lru_cache(maxsize=1)
def _deimos_setup():
    fabric = topologies.deimos(scale=CLUSTER_SCALES["deimos"])
    tables = {
        "minhop": MinHopEngine().route(fabric).tables,
        "lash": LASHEngine().route(fabric).tables,
        "dfsssp": DFSSSPEngine().route(fabric).tables,
    }
    return fabric, tables


def nas_sweep(kernel: str, core_counts: tuple[int, ...]):
    """Predict Gflop/s for every engine at every core count.

    Returns (table, data) with ``data[cores][engine] -> KernelPrediction``.
    """
    fabric, tables = _deimos_setup()
    table = Table(
        ["cores", *[f"{e} [Gflop/s]" for e in ENGINE_ORDER], "dfsssp vs minhop %"],
        title=f"NAS {kernel.upper()} on Deimos (model)",
        precision=2,
    )
    data = {}
    for cores in core_counts:
        alloc = core_allocation(fabric, cores, seed=cores)
        preds = {
            name: predict_kernel(tbl, kernel, cores, allocation=alloc)
            for name, tbl in tables.items()
        }
        row: list = [cores]
        row += [preds[e].gflops for e in ENGINE_ORDER]
        row.append(improvement_percent(preds["minhop"], preds["dfsssp"]))
        table.add_row(row)
        data[cores] = preds
    return table, data


def assert_nas_shape(data, min_final_gain: float = -2.0):
    """Common Figure 14-16 assertions.

    * total Gflop/s grows with cores (both routings scale positively on
      the plotted range, as in the paper's figures);
    * DFSSSP never materially regresses versus MinHop;
    * the DFSSSP advantage does not shrink as cores grow.
    """
    cores = sorted(data)
    for name in ("minhop", "dfsssp"):
        assert data[cores[-1]][name].gflops > data[cores[0]][name].gflops
    gains = [
        improvement_percent(data[c]["minhop"], data[c]["dfsssp"]) for c in cores
    ]
    for g in gains:
        assert g >= min_final_gain
    assert gains[-1] >= gains[0] - 1.0  # the wedge opens (or stays flat)
