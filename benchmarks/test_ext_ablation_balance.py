"""Extension/ablation: Algorithm 2's final layer-balancing step.

After cycle breaking, DFSSSP spreads paths over the *unused* virtual
lanes ("balance paths on empty CDGs without additional cycle search").
Layer choice never changes routes, so congestion-model bandwidth is
identical — the payoff is buffer-level: spreading traffic over more
lanes means more independent buffer pools per channel in the flit
simulator, hence fewer head-of-line stalls and faster drainage. The
ablation runs identical traffic with balancing on and off.
"""

from conftest import emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.simulator import FlitSimulator, bisection_pattern
from repro.utils.reporting import Table


def _experiment():
    fabric = topologies.random_topology(14, 30, 3, seed=21)
    on = DFSSSPEngine(max_layers=8, balance=True).route(fabric)
    off = DFSSSPEngine(max_layers=8, balance=False).route(fabric)
    assert (on.tables.next_channel == off.tables.next_channel).all()

    table = Table(
        ["variant", "lanes used", "pattern", "cycles to drain"],
        title="Ablation — Algorithm 2 layer balancing (identical routes/traffic)",
    )
    totals = {"balanced": 0, "compact": 0}
    for seed in range(3):
        pattern = bisection_pattern(fabric, seed=seed, bidirectional=True)
        for name, result in (("balanced", on), ("compact", off)):
            sim = FlitSimulator(result.tables, layered=result.layered, buffer_depth=1)
            out = sim.run(pattern, packets_per_flow=6)
            assert out.status == "delivered"
            table.add_row([name, result.layered.layers_used, seed, out.cycles])
            totals[name] += out.cycles
    return table, totals


def test_ext_ablation_balance(benchmark):
    table, totals = run_once(benchmark, _experiment)
    emit("ext_ablation_balance", table.render(), table=table)
    # Spreading over more lanes must not slow delivery down; typically it
    # helps by reducing head-of-line blocking.
    assert totals["balanced"] <= totals["compact"] * 1.05
