"""Extension: adversarial worst-case permutations per routing engine.

Random bisections measure average behaviour; a greedy adversary measures
how far each routing can be pushed. Notable (and honest) finding: the
best *average*-case oblivious routing is not automatically the best
worst-case one — on some fabrics the adversary hurts DFSSSP's carefully
balanced paths more than Up*/Down*'s tree-shaped ones. This is the
classic average/worst-case tension of oblivious routing (Valiant), worth
quantifying next to the paper's average-case story.
"""

from conftest import emit, run_once

from repro import topologies
from repro.analysis import adversarial_permutation
from repro.exceptions import ReproError
from repro.routing import make_engine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

ENGINES = ("minhop", "updown", "lash", "dfsssp")


def _experiment():
    fabric = topologies.random_topology(12, 26, 3, seed=29)
    table = Table(
        ["engine", "random eBB", "adversarial worst", "gap (eBB/worst)"],
        title="Extension — greedy adversarial permutations",
        precision=3,
    )
    data = {}
    for name in ENGINES:
        try:
            result = make_engine(name).route(fabric)
        except ReproError:
            table.add_row([name, None, None, None])
            continue
        sim = CongestionSimulator(result.tables)
        ebb = sim.effective_bisection_bandwidth(25, seed=7).ebb
        adv = adversarial_permutation(result.tables, seed=7, restarts=3)
        gap = ebb / adv.worst_flow_bandwidth
        table.add_row([name, ebb, adv.worst_flow_bandwidth, gap])
        data[name] = (ebb, adv.worst_flow_bandwidth, gap)
    return table, data


def test_ext_adversarial(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_adversarial", table.render(), table=table)
    for name, (ebb, worst, gap) in data.items():
        assert 0 < worst <= ebb + 1e-9, f"{name}: adversary weaker than average?"
        assert gap >= 1.0
    # DFSSSP keeps the best average even under this lens.
    assert data["dfsssp"][0] >= max(v[0] for v in data.values()) - 1e-9
