"""Extension: packet-level AI-collective completion times, DFSSSP vs SSSP.

The paper compares routings by static edge-forwarding-index and flit-sim
drainage; the DES adds the metric modern AI fabrics actually tune for —
flow completion time of collectives under finite buffers. Each cell
routes the fabric once and replays the identical collective (same flow
schedule, same sizes) under both engines, reporting FCT p50/p99 and
delivered throughput. On the ring the SSSP column shows the paper's
Figure 2 credit deadlock at packet level; on XGFT and the torus both
complete and the comparison is pure timing.
"""

from conftest import emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine, SSSPEngine
from repro.des import PacketDES, make_workload
from repro.utils.reporting import Table

_WORKLOADS = (
    ("ring_allreduce", {"size_bytes": 1 << 18}),
    ("alltoall", {"size_bytes": 1 << 15}),
)


def _experiment():
    fabrics = (
        ("xgft(2,(4,4),(1,2))", topologies.xgft(2, (4, 4), (1, 2))),
        ("torus 3x3", topologies.torus((3, 3), 1)),
    )
    table = Table(
        ["fabric", "workload", "engine", "status", "flows",
         "fct p50 [us]", "fct p99 [us]", "Gbytes/s"],
        title="DES — collective FCT under DFSSSP vs SSSP (finite buffers)",
    )
    p99 = {}
    for fab_name, fabric in fabrics:
        routed = (("sssp", SSSPEngine().route(fabric)),
                  ("dfsssp", DFSSSPEngine().route(fabric)))
        for kind, params in _WORKLOADS:
            for eng_name, result in routed:
                out = PacketDES(result, buffer_packets=8).run(
                    make_workload(kind, fabric, **params)
                )
                fct = out.fct_percentiles()
                table.add_row([
                    fab_name, kind, eng_name, out.status,
                    f"{out.flows_completed}/{out.flows_released}",
                    round(fct["p50"] * 1e6, 2),
                    round(fct["p99"] * 1e6, 2),
                    round(out.throughput_bytes_per_s / 1e9, 3),
                ])
                p99[(fab_name, kind, eng_name)] = (out.status, fct["p99"])
    return table, p99


def test_ext_des_collectives(benchmark):
    table, p99 = run_once(benchmark, _experiment)
    emit("ext_des_collectives", table.render(), table=table)
    for (fab, kind, eng), (status, value) in p99.items():
        assert status == "completed", f"{eng} wedged on {fab}/{kind}"
        assert value > 0
