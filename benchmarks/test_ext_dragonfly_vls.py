"""Extension: virtual-lane demand on dragonflies.

Dragonflies post-date the paper, but they are exactly the kind of
"arbitrary" low-diameter topology DFSSSP targets: minimal routes take
local→global→local turns whose channel dependencies close cycles, so
deadlock-freedom needs either topology-aware VC discipline (the original
dragonfly paper's 2-3 VCs) or a generic layer assignment. We sweep
balanced dragonfly sizes and record how many lanes DFSSSP (weakest-edge)
and LASH need — both should sit in the hardware-friendly 1-4 range the
dragonfly literature expects.
"""

from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.routing import LASHEngine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

CONFIGS = ((2, 2, 1), (3, 2, 1), (4, 2, 2)) if not FULL else ((4, 2, 2), (6, 3, 3), (8, 4, 4))


def _experiment():
    table = Table(
        ["a", "p", "h", "groups", "hosts", "dfsssp VLs", "lash VLs", "dfsssp eBB"],
        title="Extension — dragonfly virtual-lane demand",
        precision=3,
    )
    data = []
    for a, p, h in CONFIGS:
        fabric = topologies.dragonfly(a, p, h)
        df = DFSSSPEngine(max_layers=16, balance=False).route(fabric)
        la = LASHEngine(max_layers=16).route(fabric)
        ebb = CongestionSimulator(df.tables).effective_bisection_bandwidth(15, seed=4).ebb
        table.add_row(
            [
                a,
                p,
                h,
                fabric.metadata["groups"],
                fabric.num_terminals,
                df.stats["layers_needed"],
                la.stats["layers_needed"],
                ebb,
            ]
        )
        data.append((fabric, df, la))
    return table, data


def test_ext_dragonfly_vls(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_dragonfly_vls", table.render(), table=table)
    for fabric, df, la in data:
        # Dragonfly minimal routing closes cycles: > 1 lane once the
        # global graph is non-trivial, but stays within 4 — the range the
        # dragonfly literature budgets for.
        assert 1 <= df.stats["layers_needed"] <= 4
        assert 1 <= la.stats["layers_needed"] <= 6
    # The largest config genuinely needs the VC machinery.
    assert data[-1][1].stats["layers_needed"] >= 2
