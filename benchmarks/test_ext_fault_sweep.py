"""Extension: quantifying the paper's §I motivation — failures.

The paper motivates arbitrary-topology routing with systems that stop
being clean tori/fat trees (growth, failures). This sweep removes 0..k
random cables from a 4x4 torus and records, per step: whether DOR still
routes, DFSSSP's lane demand, and DFSSSP's effective bisection
bandwidth. Expected shape: DOR dies at the first failure; DFSSSP
degrades gracefully (bounded lane growth, gradual eBB decline).
"""

import numpy as np
from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.exceptions import ReproError
from repro.network import fail_links
from repro.routing import DOREngine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

MAX_FAILURES = 6 if not FULL else 12
DIMS = (4, 4) if not FULL else (6, 6)


def _experiment():
    healthy = topologies.torus(DIMS, terminals_per_switch=2)
    table = Table(
        ["failed cables", "dor", "dfsssp VLs", "dfsssp eBB"],
        title=f"Extension — {DIMS} torus degradation",
        precision=3,
    )
    data = []
    for failures in range(MAX_FAILURES + 1):
        fabric = healthy if failures == 0 else fail_links(healthy, failures, seed=failures).fabric
        try:
            DOREngine().route(fabric)
            dor = "ok"
        except ReproError:
            dor = "failed"
        df = DFSSSPEngine(max_layers=16, balance=False).route(fabric)
        ebb = CongestionSimulator(df.tables).effective_bisection_bandwidth(20, seed=2).ebb
        table.add_row([failures, dor, df.stats["layers_needed"], ebb])
        data.append((failures, dor, df.stats["layers_needed"], ebb))
    return table, data


def test_ext_fault_sweep(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_fault_sweep", table.render(), table=table)
    assert data[0][1] == "ok"  # DOR routes the pristine torus
    assert all(d[1] == "failed" for d in data[1:])  # ... and only that
    ebbs = [d[3] for d in data]
    # Graceful degradation: the worst case loses less than half the
    # healthy bandwidth over the sweep, and lanes stay bounded.
    assert min(ebbs) > 0.4 * ebbs[0]
    assert max(d[2] for d in data) <= 6
