"""Extension: organic cluster growth (the paper's §I motivation).

A clean fat tree is extended in phases — new leaf switches with fewer
uplinks wherever ports remain. Expected shape per phase: the fat-tree
engine drops out after the first extension; absolute bandwidth falls as
the machine outgrows its core; DFSSSP remains the best (or tied) general
router at every phase while keeping its lane demand tiny.
"""

from conftest import EBB_PATTERNS, FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.exceptions import ReproError
from repro.routing import make_engine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

ENGINES = ("ftree", "updown", "minhop", "dfsssp")
PHASES = (0, 1, 2, 3)
BASE = dict(base_leaves=12, spines=6, hosts_per_leaf=8, leaves_per_phase=6) if FULL else dict(
    base_leaves=6, spines=3, hosts_per_leaf=6, leaves_per_phase=3
)


def _experiment():
    table = Table(
        ["growth phases", "hosts", *ENGINES, "dfsssp VLs"],
        title="Extension — organically grown cluster",
        precision=3,
    )
    data = {}
    for phases in PHASES:
        fabric = topologies.grown_cluster(growth_phases=phases, seed=5, **BASE)
        row: list = [phases, fabric.num_terminals]
        point = {}
        for name in ENGINES:
            try:
                result = make_engine(name).route(fabric)
                ebb = (
                    CongestionSimulator(result.tables)
                    .effective_bisection_bandwidth(EBB_PATTERNS, seed=3)
                    .ebb
                )
            except ReproError:
                ebb = None
            point[name] = ebb
            row.append(ebb)
        vls = DFSSSPEngine(balance=False).route(fabric).stats["layers_needed"]
        row.append(vls)
        table.add_row(row)
        data[phases] = (point, vls)
    return table, data


def test_ext_grown_cluster(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_grown_cluster", table.render(), table=table)
    # Pristine machine: everyone routes it, all engines near-tied.
    point0, _ = data[0]
    assert point0["ftree"] is not None
    # After any growth, the specialised engine is gone...
    for phases in PHASES[1:]:
        point, vls = data[phases]
        assert point["ftree"] is None
        # ... while DFSSSP keeps routing within a whisker of the best.
        best = max(v for v in point.values() if v is not None)
        assert point["dfsssp"] >= 0.93 * best
        assert vls <= 4
    # Growth costs bandwidth (the machine outgrows its core).
    assert data[PHASES[-1]][0]["dfsssp"] < point0["dfsssp"]
