"""Extension: incremental repair vs full-reroute turnaround.

``test_ext_reroute_time`` measures the OpenSM status quo — a full
recompute after every dead cable. This bench measures what the
``repro.resilience`` stack buys instead: splice the surviving forwarding
entries, re-run Dijkstra only for the destination columns that crossed
the dead channels, and re-insert just the repaired paths into the layer
CDGs. Both variants end verified deadlock-free; the table records wall
time side by side plus the share of destinations the repair actually had
to recompute.
"""

from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.deadlock import verify_deadlock_free
from repro.exceptions import ReproError
from repro.network import fail_links
from repro.network.validate import check_routable
from repro.routing import extract_paths
from repro.utils.reporting import Table
from repro.utils.timing import Timer

SIZES = ((12, 26, 2), (20, 44, 3), (32, 72, 4)) if not FULL else (
    (32, 72, 4),
    (64, 150, 8),
    (128, 300, 16),
)


def _viable_fault(fabric, start_seed):
    """First single-link fault that keeps the fabric routable."""
    for seed in range(start_seed, start_seed + 16):
        degraded = fail_links(fabric, 1, seed=seed)
        try:
            check_routable(degraded.fabric)
        except ReproError:
            continue
        return degraded
    raise AssertionError("no viable single-link fault found")


def _experiment():
    table = Table(
        [
            "switches",
            "endpoints",
            "full reroute [s]",
            "incremental [s]",
            "dests recomputed",
            "speedup",
        ],
        title="Extension — incremental repair vs full DFSSSP reroute (one dead cable)",
        precision=3,
    )
    data = []
    engine = DFSSSPEngine(balance=False)
    for switches, links, terms in SIZES:
        fabric = topologies.random_topology(switches, links, terms, radix=None, seed=11)
        prior = engine.route(fabric)
        degraded = _viable_fault(fabric, start_seed=switches)

        t_full = Timer()
        with t_full:
            full = engine.route(degraded.fabric)
            ok = verify_deadlock_free(full.layered, extract_paths(full.tables)).deadlock_free
        assert ok

        t_repair = Timer()
        with t_repair:
            repaired = engine.reroute(prior, degraded)
        assert repaired.deadlock_free
        rep = repaired.stats["repair"]

        table.add_row(
            [
                switches,
                fabric.num_terminals,
                t_full.elapsed,
                t_repair.elapsed,
                f"{rep['destinations_repaired']}/{rep['destinations_total']}",
                t_full.elapsed / t_repair.elapsed if t_repair.elapsed else float("inf"),
            ]
        )
        data.append((t_full.elapsed, t_repair.elapsed, rep))
    return table, data


def test_ext_incremental_repair(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_incremental_repair", table.render(), table=table)
    for t_full, t_repair, rep in data:
        # The repair recomputed strictly fewer destinations than a full run
        # touches — the structural win incremental repair exists for.
        assert rep["destinations_repaired"] < rep["destinations_total"]
    # At the largest size the partial Dijkstra pass beats the full pipeline.
    assert data[-1][1] < data[-1][0]
