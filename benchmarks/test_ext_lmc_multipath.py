"""Extension: LMC multipathing (the OpenSM deployment knob).

The paper's production DFSSSP in OpenSM supports LMC > 0: each endpoint
owns 2^lmc LIDs, each routed as an independent balanced destination, and
MPI stacks stripe traffic over them. We sweep lmc 0..2 on the asymmetric
Ranger lookalike and record mean and worst-flow effective bandwidth —
the expected shape is a monotone improvement of the *tail* (worst flow),
with joint deadlock-freedom maintained across all planes.
"""

import numpy as np
from conftest import CLUSTER_SCALES, EBB_PATTERNS, emit, run_once

from repro import topologies
from repro.core import MultipathCongestionSimulator, MultipathDFSSSPEngine
from repro.simulator import shift_pattern
from repro.utils.prng import spawn_rngs
from repro.utils.reporting import Table


def _experiment():
    fabric = topologies.ranger(scale=CLUSTER_SCALES["ranger"])
    table = Table(
        ["lmc", "planes", "VLs", "eBB", "worst shift-1 flow", "deadlock-free"],
        title="Extension — LMC multipath striping on Ranger",
        precision=3,
    )
    data = {}
    pattern = shift_pattern(fabric, 1)
    for lmc in (0, 1, 2):
        routing = MultipathDFSSSPEngine(lmc=lmc).route(fabric)
        free = routing.verify_deadlock_free()
        sim = MultipathCongestionSimulator(routing, mode="stripe")
        ebb = sim.effective_bisection_bandwidth(EBB_PATTERNS, seed=31).ebb
        worst = float(sim.evaluate(pattern).min())
        table.add_row([lmc, routing.num_planes, routing.stats["layers_needed"], ebb, worst, free])
        data[lmc] = (ebb, worst, free, routing.stats["layers_needed"])
    return table, data


def test_ext_lmc_multipath(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_lmc_multipath", table.render(), table=table)
    for lmc, (ebb, worst, free, layers) in data.items():
        assert free, f"lmc={lmc} planes are not jointly deadlock-free"
        assert layers <= 8
    # Striping never hurts the tail and helps at lmc >= 1.
    assert data[1][1] >= data[0][1]
    assert data[2][1] >= data[0][1]
    # Mean eBB is at least preserved.
    assert data[2][0] >= 0.97 * data[0][0]
