"""Extension: NAS kernels on the asymmetric Ranger lookalike.

The paper measured its application gains on Deimos against OpenSM's
MinHop; our idealized MinHop nearly matches DFSSSP on that symmetric
fabric (see EXPERIMENTS.md deviation 3). Ranger's two *unequal* core
fabrics are where locally balancing routers provably mis-split traffic
(the paper's 63% Fig.-4 gap), so this extension runs the same NAS model
there to show the congestion mechanism carrying through to application
performance.
"""

from conftest import CLUSTER_SCALES, FULL, emit, run_once

from repro import topologies
from repro.apps import core_allocation, improvement_percent, predict_kernel
from repro.core import DFSSSPEngine
from repro.routing import MinHopEngine
from repro.utils.reporting import Table

KERNELS = ("ft", "cg", "bt")


def _experiment():
    fabric = topologies.ranger(scale=CLUSTER_SCALES["ranger"])
    nodes = fabric.num_terminals
    tables = {
        "minhop": MinHopEngine().route(fabric).tables,
        "dfsssp": DFSSSPEngine().route(fabric).tables,
    }
    table = Table(
        ["kernel", "cores", "minhop [Gflop/s]", "dfsssp [Gflop/s]", "improvement %"],
        title=f"Extension — NAS on Ranger ({nodes} nodes)",
        precision=2,
    )
    data = {}
    for kernel in KERNELS:
        if kernel == "bt":
            cores = 1024 if FULL else 196
        else:
            cores = 1024 if FULL else 128
        alloc = core_allocation(fabric, cores, seed=kernel.__hash__() % 1000)
        mh = predict_kernel(tables["minhop"], kernel, cores, allocation=alloc)
        df = predict_kernel(tables["dfsssp"], kernel, cores, allocation=alloc)
        gain = improvement_percent(mh, df)
        table.add_row([kernel.upper(), cores, mh.gflops, df.gflops, gain])
        data[kernel] = gain
    return table, data


def test_ext_nas_ranger(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_nas_ranger", table.render(), table=table)
    # The all-to-all kernel must show a real, positive gain here.
    assert data["ft"] > 2.0, f"expected visible FT gain on Ranger, got {data['ft']:.2f}%"
    # No kernel regresses materially.
    for kernel, gain in data.items():
        assert gain >= -2.0
