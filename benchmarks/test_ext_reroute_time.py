"""Extension: re-routing turnaround after a failure.

The paper's deployment pitch is that DFSSSP "improves network performance
transparently" — in production, OpenSM must recompute routes whenever a
cable dies, and the subnet stalls until the new tables are distributed.
This bench measures the full recompute (route + cycle-break + verify) on
progressively larger fabrics after a random link failure, giving the
operator-facing "how long is my fabric degraded" number our substrate
can provide.
"""

from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.deadlock import verify_deadlock_free
from repro.network import fail_links
from repro.routing import extract_paths
from repro.utils.reporting import Table
from repro.utils.timing import Timer

SIZES = ((12, 26, 2), (20, 44, 3), (32, 72, 4)) if not FULL else (
    (32, 72, 4),
    (64, 150, 8),
    (128, 300, 16),
)


def _experiment():
    table = Table(
        ["switches", "endpoints", "initial route [s]", "reroute [s]", "VLs before", "VLs after"],
        title="Extension — DFSSSP re-route turnaround after one link failure",
        precision=3,
    )
    data = []
    engine = DFSSSPEngine(balance=False)
    for switches, links, terms in SIZES:
        fabric = topologies.random_topology(switches, links, terms, radix=None, seed=11)
        t_initial = Timer()
        with t_initial:
            before = engine.route(fabric)
        degraded = fail_links(fabric, 1, seed=switches).fabric
        t_reroute = Timer()
        with t_reroute:
            after = engine.route(degraded)
            paths = extract_paths(after.tables)
            ok = verify_deadlock_free(after.layered, paths).deadlock_free
        assert ok
        table.add_row(
            [
                switches,
                fabric.num_terminals,
                t_initial.elapsed,
                t_reroute.elapsed,
                before.stats["layers_needed"],
                after.stats["layers_needed"],
            ]
        )
        data.append((fabric, t_initial.elapsed, t_reroute.elapsed, before, after))
    return table, data


def test_ext_reroute_time(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_reroute_time", table.render(), table=table)
    for fabric, t_init, t_re, before, after in data:
        # Rerouting costs about the same as the initial computation (full
        # recompute; OpenSM behaves the same) and lane needs stay stable.
        assert t_re < 5 * t_init + 1.0
        assert abs(after.stats["layers_needed"] - before.stats["layers_needed"]) <= 2
    # Cost grows with fabric size.
    assert data[-1][2] > data[0][2]
