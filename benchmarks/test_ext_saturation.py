"""Extension: saturation throughput of routed fabrics (flit-level).

The paper evaluates static congestion (ORCS); this extension drives the
routed network dynamically — Bernoulli injection at increasing offered
loads — and records delivered throughput and latency until saturation.
Expected shape: DFSSSP sustains at least Up*/Down*'s load on an irregular
fabric (its balanced routes postpone the first hot channel), and latency
stays flat below saturation then climbs.
"""

from conftest import emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.routing import UpDownEngine
from repro.simulator import FlitSimulator, permutation_pattern, saturation_point, saturation_sweep
from repro.utils.reporting import Table

RATES = [0.05, 0.15, 0.3, 0.5, 0.8]


def _experiment():
    fabric = topologies.random_topology(14, 30, 2, seed=17)
    pattern = permutation_pattern(fabric, seed=3)
    engines = {
        "updown": UpDownEngine().route(fabric),
        "dfsssp": DFSSSPEngine().route(fabric),
    }
    table = Table(
        ["engine", "offered", "delivered", "latency [cyc]", "deadlocked"],
        title="Extension — open-loop saturation sweep (random fabric, permutation traffic)",
        precision=3,
    )
    data = {}
    for name, result in engines.items():
        sim = FlitSimulator(result.tables, layered=result.layered, buffer_depth=2)
        sweep = saturation_sweep(sim, pattern, rates=RATES, warmup=200, measure=500, seed=5)
        for r in sweep:
            table.add_row([name, r.offered_rate, r.delivered_rate, r.mean_latency, r.deadlocked])
        data[name] = sweep
    return table, data


def test_ext_saturation(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_saturation", table.render(), table=table)
    for name, sweep in data.items():
        assert not any(r.deadlocked for r in sweep), f"{name} wedged"
        # Latency below saturation is near-minimal, then rises.
        assert sweep[-1].mean_latency >= sweep[0].mean_latency
    sat_df = saturation_point(data["dfsssp"])
    sat_ud = saturation_point(data["updown"])
    assert sat_df >= sat_ud, f"DFSSSP saturates earlier ({sat_df}) than Up*/Down* ({sat_ud})"
