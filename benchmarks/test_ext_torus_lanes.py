"""Extension: structured vs general deadlock-freedom on big tori (Jaguar).

The paper's §I names ORNL's Jaguar (a 3D torus) among the systems driving
the problem. Tori are where *structured* solutions shine: dateline DOR
needs exactly 2^d lanes by construction, while general cycle breaking
(DFSSSP, LASH) must discover the wrap cycles one by one — and on large
tori can demand more lanes than the hardware has (the documented reason
OpenSM ships Torus-2QoS alongside DFSSSP). This bench quantifies that
boundary of the paper's approach on scaled Jaguar lookalikes. (At
REPRO_FULL's 6x8x6 torus, DFSSSP genuinely exhausts all 16 spec lanes
while dateline DOR sits at its closed-form 8 — recorded in
EXPERIMENTS.md.)
"""

from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.exceptions import InsufficientLayersError
from repro.routing import DORVCEngine, LASHEngine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

SCALES = (0.004, 0.008) if not FULL else (0.016, 0.05, 0.1)
MAX_LAYERS = 16


def _lanes(engine, fabric):
    try:
        result = engine.route(fabric)
        return result.stats["layers_needed"], result
    except InsufficientLayersError:
        return None, None


def _experiment():
    table = Table(
        ["torus dims", "switches", "dor_vc VLs", "dfsssp VLs", "lash VLs", "dfsssp eBB", "dor_vc eBB"],
        title="Extension — lane demand on Jaguar-style tori",
        precision=3,
    )
    data = []
    for scale in SCALES:
        fabric = topologies.cluster("jaguar", scale=scale)
        dims = fabric.metadata["dims"]
        vc, vc_res = _lanes(DORVCEngine(max_layers=MAX_LAYERS), fabric)
        df, df_res = _lanes(DFSSSPEngine(max_layers=MAX_LAYERS, balance=False), fabric)
        la, _ = _lanes(LASHEngine(max_layers=MAX_LAYERS), fabric)
        ebb_df = (
            CongestionSimulator(df_res.tables).effective_bisection_bandwidth(10, seed=2).ebb
            if df_res
            else None
        )
        ebb_vc = (
            CongestionSimulator(vc_res.tables).effective_bisection_bandwidth(10, seed=2).ebb
            if vc_res
            else None
        )
        table.add_row(["x".join(map(str, dims)), fabric.num_switches, vc, df, la, ebb_df, ebb_vc])
        data.append((dims, vc, df, la, ebb_df, ebb_vc))
    return table, data


def test_ext_torus_lanes(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("ext_torus_lanes", table.render(), table=table)
    for dims, vc, df, la, ebb_df, ebb_vc in data:
        # The structured solution always fits its closed-form budget.
        assert vc is not None and vc <= 2 ** len(dims)
        # General cycle breaking succeeds within the IB spec budget here,
        # but needs at least as many lanes as the torus has dimensions.
        if df is not None:
            assert df >= 2
            # ... and pays nothing in bandwidth for its generality.
            assert ebb_df >= 0.9 * ebb_vc
    # Lane demand grows with torus size for the general algorithms.
    dfs = [d[2] for d in data if d[2] is not None]
    if len(dfs) >= 2:
        assert dfs[-1] >= dfs[0]
