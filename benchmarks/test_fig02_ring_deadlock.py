"""Figure 2 / §III: the ring deadlock, made observable.

The paper argues (Figure 2) that SSSP on a 5-node ring with a 2-hop
clockwise shift fills all buffers into a circular wait. We run that exact
configuration in the flit-level simulator for both SSSP (expect: proven
deadlock with a 5-buffer wait-for cycle) and DFSSSP (expect: all packets
delivered), at several buffer depths.
"""

from conftest import emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine, SSSPEngine
from repro.simulator import FlitSimulator, shift_pattern
from repro.utils.reporting import Table


def _experiment():
    fabric = topologies.ring(5, terminals_per_switch=1)
    pattern = shift_pattern(fabric, 2)
    table = Table(
        ["routing", "buffers", "status", "cycles", "delivered", "waitfor-cycle-len"],
        title="Fig. 2 — 5-ring, 2-hop clockwise shift, 8 packets/flow",
    )
    outcomes = {}
    for name, result in (
        ("sssp", SSSPEngine().route(fabric)),
        ("dfsssp", DFSSSPEngine().route(fabric)),
    ):
        for buffers in (1, 2, 4):
            sim = FlitSimulator(result.tables, layered=result.layered, buffer_depth=buffers)
            out = sim.run(pattern, packets_per_flow=8)
            table.add_row(
                [name, buffers, out.status, out.cycles, out.delivered, len(out.waitfor_cycle)]
            )
            outcomes[(name, buffers)] = out
    return table, outcomes


def test_fig02_ring_deadlock(benchmark):
    table, outcomes = run_once(benchmark, _experiment)
    emit("fig02_ring_deadlock", table.render(), table=table)
    # Paper shape: SSSP deadlocks at every finite buffer depth; DFSSSP
    # always drains.
    for buffers in (1, 2, 4):
        assert outcomes[("sssp", buffers)].status == "deadlock"
        assert outcomes[("dfsssp", buffers)].status == "delivered"
    assert len(outcomes[("sssp", 1)].waitfor_cycle) == 5
