"""Figure 4: effective bisection bandwidth on the six real-world systems.

Paper shape targets: SSSP/DFSSSP highest everywhere except the pure
fat-tree Odin (where the specialised engines tie or edge ahead by a few
percent); DOR and fat-tree routing fail ("missing bar") on the irregular
systems; the largest DFSSSP gain is on Ranger (63% over the second best
in the paper).
"""

import pytest
from conftest import CLUSTER_SCALES, EBB_PATTERNS, emit, run_once

from repro import topologies
from repro.exceptions import ReproError
from repro.routing import PAPER_ENGINES, make_engine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

SYSTEMS = ("chic", "juropa", "odin", "ranger", "tsubame", "deimos")


def _experiment():
    table = Table(
        ["system", *PAPER_ENGINES],
        title=f"Fig. 4 — relative eBB, {EBB_PATTERNS} bisection patterns "
        f"(scales: {CLUSTER_SCALES})",
        precision=3,
    )
    ebbs: dict[tuple[str, str], float | None] = {}
    for system in SYSTEMS:
        fabric = topologies.cluster(system, scale=CLUSTER_SCALES[system])
        row: list = [system]
        for engine_name in PAPER_ENGINES:
            try:
                result = make_engine(engine_name).route(fabric)
                sim = CongestionSimulator(result.tables)
                ebb = sim.effective_bisection_bandwidth(EBB_PATTERNS, seed=42).ebb
            except ReproError:
                ebb = None  # the paper's "missing bar"
            row.append(ebb)
            ebbs[(system, engine_name)] = ebb
        table.add_row(row)
    return table, ebbs


def test_fig04_realworld_ebb(benchmark):
    table, ebbs = run_once(benchmark, _experiment)
    emit("fig04_realworld_ebb", table.render(), table=table)
    for system in SYSTEMS:
        # Universal engines never fail.
        for engine in ("minhop", "sssp", "dfsssp", "lash", "updown"):
            assert ebbs[(system, engine)] is not None, f"{engine} failed on {system}"
        # DOR fails everywhere (no coordinates on real systems).
        assert ebbs[(system, "dor")] is None
        # DFSSSP == SSSP (identical routes).
        assert ebbs[(system, "dfsssp")] == pytest.approx(ebbs[(system, "sssp")], rel=1e-9)
        # DFSSSP is at worst marginally below the best engine.
        best = max(v for v in (ebbs[(system, e)] for e in PAPER_ENGINES) if v is not None)
        assert ebbs[(system, "dfsssp")] >= 0.93 * best, f"{system}: DFSSSP not competitive"
    # ftree routes only the fat-tree-shaped systems.
    assert ebbs[("odin", "ftree")] is not None
    assert ebbs[("deimos", "ftree")] is None
    assert ebbs[("tsubame", "ftree")] is None
    # The headline: DFSSSP strictly beats MinHop on Ranger.
    assert ebbs[("ranger", "dfsssp")] > ebbs[("ranger", "minhop")]
