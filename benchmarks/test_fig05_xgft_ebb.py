"""Figure 5: eBB on extended generalized fat trees (Table-I sweep).

Paper shape: LASH (and DOR, which fails here for lack of coordinates)
decreases steadily with size; MinHop, Up*/Down* and (DF)SSSP stay
roughly flat per tree height, with (DF)SSSP on top for h = 2 sizes.
"""

import pytest
from conftest import EBB_PATTERNS, SWEEP_SIZES, emit, run_once

from repro import topologies
from repro.exceptions import ReproError
from repro.routing import make_engine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

ENGINES = ("minhop", "updown", "ftree", "lash", "dfsssp")


def _experiment():
    table = Table(
        ["endpoints", *ENGINES],
        title=f"Fig. 5 — XGFT relative eBB, {EBB_PATTERNS} patterns",
        precision=3,
    )
    data = {}
    for nominal in SWEEP_SIZES:
        fabric = topologies.build_xgft(nominal)
        row: list = [nominal]
        for engine_name in ENGINES:
            try:
                result = make_engine(engine_name).route(fabric)
                ebb = (
                    CongestionSimulator(result.tables)
                    .effective_bisection_bandwidth(EBB_PATTERNS, seed=11)
                    .ebb
                )
            except ReproError:
                ebb = None
            row.append(ebb)
            data[(nominal, engine_name)] = ebb
        table.add_row(row)
    return table, data


def test_fig05_xgft_ebb(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig05_xgft_ebb", table.render(), table=table)
    sizes = list(SWEEP_SIZES)
    for nominal in sizes:
        for engine in ENGINES:
            assert data[(nominal, engine)] is not None, f"{engine} failed at {nominal}"
        # The balancing engines stay competitive with the specialised one.
        assert data[(nominal, "dfsssp")] >= 0.9 * data[(nominal, "ftree")]
    # LASH's switch-pair granularity degrades with size (paper: steady
    # decrease) — compare the ends of the sweep.
    assert data[(sizes[-1], "lash")] <= data[(sizes[0], "lash")] + 1e-9
    # ... and loses clearly to DFSSSP on the larger trees.
    assert data[(sizes[-1], "lash")] < data[(sizes[-1], "dfsssp")]
