"""Figure 6: eBB on Kautz-graph networks (Table-I sweep).

Paper shape: all routing algorithms deliver *similar* bandwidth on Kautz
topologies — in contrast to the fat-tree sweep, LASH is close to DFSSSP
here — and bandwidth steps up whenever the switch graph gets denser
(larger b).
"""

import pytest
from conftest import EBB_PATTERNS, SWEEP_SIZES, emit, run_once

from repro import topologies
from repro.exceptions import ReproError
from repro.routing import make_engine
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table

ENGINES = ("minhop", "updown", "lash", "dfsssp")


def _experiment():
    table = Table(
        ["endpoints", *ENGINES],
        title=f"Fig. 6 — Kautz relative eBB, {EBB_PATTERNS} patterns",
        precision=3,
    )
    data = {}
    for nominal in SWEEP_SIZES:
        fabric = topologies.build_kautz(nominal)
        row: list = [nominal]
        for engine_name in ENGINES:
            try:
                result = make_engine(engine_name).route(fabric)
                ebb = (
                    CongestionSimulator(result.tables)
                    .effective_bisection_bandwidth(EBB_PATTERNS, seed=23)
                    .ebb
                )
            except ReproError:
                ebb = None
            row.append(ebb)
            data[(nominal, engine_name)] = ebb
        table.add_row(row)
    return table, data


def test_fig06_kautz_ebb(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig06_kautz_ebb", table.render(), table=table)
    for nominal in SWEEP_SIZES:
        for engine in ENGINES:
            assert data[(nominal, engine)] is not None
        # Paper: "all investigated routing algorithms provide similar
        # effective bisection bandwidths for this type of topology" —
        # LASH within ~35% of DFSSSP (vs collapsing on fat trees).
        assert data[(nominal, "lash")] >= 0.65 * data[(nominal, "dfsssp")]
        # DFSSSP is never beaten by more than a whisker.
        best = max(data[(nominal, e)] for e in ENGINES)
        assert data[(nominal, "dfsssp")] >= 0.9 * best
