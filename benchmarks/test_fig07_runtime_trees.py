"""Figure 7: routing runtime vs network size on k-ary n-trees.

Paper shape: the offline DFSSSP costs roughly an order of magnitude more
wall time than MinHop (≈10x in OpenSM's C) — the price of global
balancing plus cycle breaking — while remaining practical. In this pure-
Python reproduction the *constant factors* differ (our MinHop inner loop
is interpreted Python while SSSP's hot path is heapq/NumPy), so the
measured ratio lands near 1-2x; the assertions therefore bound the ratio
within a generous envelope and check growth with size rather than the
exact 10x. EXPERIMENTS.md discusses the deviation.
"""

from conftest import SWEEP_SIZES, emit, run_once

from repro import topologies
from repro.routing import make_engine
from repro.utils.reporting import Table
from repro.utils.timing import Timer

ENGINES = ("minhop", "updown", "ftree", "lash", "dfsssp")


def _experiment():
    table = Table(
        ["endpoints", *[f"{e} [s]" for e in ENGINES], "dfsssp/minhop"],
        title="Fig. 7 — routing wall time on k-ary n-trees",
        precision=3,
    )
    data = {}
    for nominal in SWEEP_SIZES:
        fabric = topologies.build_ktree(nominal)
        row: list = [fabric.num_terminals]
        times = {}
        for engine_name in ENGINES:
            timer = Timer(metric="routing_runtime_seconds", engine=engine_name)
            with timer:
                make_engine(engine_name).route(fabric)
            times[engine_name] = timer.elapsed
            row.append(timer.elapsed)
        ratio = times["dfsssp"] / times["minhop"]
        row.append(ratio)
        table.add_row(row)
        data[nominal] = times
    return table, data


def test_fig07_runtime_trees(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig07_runtime_trees", table.render(), table=table)
    for nominal, times in data.items():
        # DFSSSP does strictly more work than MinHop; with Python constant
        # factors the wall-clock ratio lands in [0.5x, 120x].
        assert times["dfsssp"] > 0.5 * times["minhop"]
        assert times["dfsssp"] < 120 * times["minhop"]
    # Runtime grows with size.
    sizes = sorted(data)
    assert data[sizes[-1]]["dfsssp"] > data[sizes[0]]["dfsssp"]
