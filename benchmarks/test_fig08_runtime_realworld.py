"""Figure 8: routing runtime on the real-world systems.

Same statement as Figure 7 on the irregular fabrics: DFSSSP ≈ 10x MinHop
wall time, failures (DOR/ftree on irregular systems) reported as missing
entries.
"""

from conftest import CLUSTER_SCALES, emit, run_once

from repro import topologies
from repro.exceptions import ReproError
from repro.routing import PAPER_ENGINES, make_engine
from repro.utils.reporting import Table
from repro.utils.timing import Timer

SYSTEMS = ("chic", "juropa", "odin", "ranger", "tsubame", "deimos")


def _experiment():
    table = Table(
        ["system", *[f"{e} [s]" for e in PAPER_ENGINES]],
        title="Fig. 8 — routing wall time on real-world lookalikes",
        precision=3,
    )
    data = {}
    for system in SYSTEMS:
        fabric = topologies.cluster(system, scale=CLUSTER_SCALES[system])
        row: list = [system]
        times = {}
        for engine_name in PAPER_ENGINES:
            timer = Timer(metric="routing_runtime_seconds", engine=engine_name)
            try:
                with timer:
                    make_engine(engine_name).route(fabric)
                times[engine_name] = timer.elapsed
                row.append(timer.elapsed)
            except ReproError:
                times[engine_name] = None
                row.append(None)
        table.add_row(row)
        data[system] = times
    return table, data


def test_fig08_runtime_realworld(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig08_runtime_realworld", table.render(), table=table)
    for system, times in data.items():
        assert times["minhop"] is not None and times["dfsssp"] is not None
        # Python constant factors put the ratio near 1x (see Fig. 7 notes);
        # bound it within a generous envelope.
        assert times["dfsssp"] > 0.4 * times["minhop"]
        assert times["dfsssp"] < 200 * times["minhop"], f"{system} ratio exploded"
