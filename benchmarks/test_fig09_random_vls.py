"""Figure 9: virtual lanes needed on random topologies, LASH vs DFSSSP.

Paper setup: 128 32-port switches, 16 endpoints each, varying numbers of
random inter-switch links; 100 seeds per point. Shape: DFSSSP needs
fewer layers on *sparse* graphs, LASH on *dense* ones, with a crossover
(paper: around 200 links). CI scale uses 24 switches / 4 endpoints and a
proportional link sweep; REPRO_FULL=1 uses the paper's dimensions (fewer
seeds — Python).
"""

import numpy as np
from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.exceptions import ReproError
from repro.routing import LASHEngine
from repro.utils.reporting import Table

if FULL:
    SWITCHES, TERMS, RADIX = 128, 16, 32
    LINK_SWEEP = (130, 160, 200, 260, 320, 400)
    TRIALS = 20
else:
    SWITCHES, TERMS, RADIX = 24, 4, 32
    LINK_SWEEP = (25, 32, 44, 60, 84)
    TRIALS = 5

MAX_LAYERS = 16


def _vls(engine_factory, fabric):
    try:
        result = engine_factory().route(fabric)
        return result.stats["layers_needed"]
    except ReproError:
        return None


def _experiment():
    table = Table(
        [
            "links",
            "dfsssp min", "dfsssp avg", "dfsssp max",
            "lash min", "lash avg", "lash max",
        ],
        title=(
            f"Fig. 9 — virtual lanes on random topologies "
            f"({SWITCHES} switches x {TERMS} endpoints, {TRIALS} seeds)"
        ),
        precision=2,
    )
    data = {}
    for links in LINK_SWEEP:
        df, la = [], []
        for seed in range(TRIALS):
            fabric = topologies.random_topology(
                SWITCHES, links, TERMS, radix=RADIX, seed=seed * 1000 + links
            )
            d = _vls(lambda: DFSSSPEngine(max_layers=MAX_LAYERS, balance=False), fabric)
            l = _vls(lambda: LASHEngine(max_layers=MAX_LAYERS), fabric)
            if d is not None:
                df.append(d)
            if l is not None:
                la.append(l)
        table.add_row(
            [
                links,
                min(df), float(np.mean(df)), max(df),
                min(la), float(np.mean(la)), max(la),
            ]
        )
        data[links] = (df, la)
    return table, data


def test_fig09_random_vls(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig09_random_vls", table.render(), table=table)
    sparse = min(data)
    dense = max(data)
    df_sparse = np.mean(data[sparse][0])
    la_sparse = np.mean(data[sparse][1])
    df_dense = np.mean(data[dense][0])
    la_dense = np.mean(data[dense][1])
    # Figure 9's robust shape (the exact crossover point is an artefact of
    # NP-complete-problem heuristics and differs between implementations):
    # (i) the two algorithms are within about one layer of each other at
    # the sparse end — the paper's crossover region;
    assert abs(df_sparse - la_sparse) <= 1.25
    # (ii) LASH's relative position does not get worse as density grows
    # (the paper: "LASH is smaller for a larger number of links");
    assert (df_dense - la_dense) >= (df_sparse - la_sparse) - 0.5
    # (iii) both stay within the InfiniBand budget on every instance.
    for links, (df, la) in data.items():
        assert max(df) <= MAX_LAYERS and max(la) <= MAX_LAYERS
