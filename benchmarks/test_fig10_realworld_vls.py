"""Figure 10: virtual lanes required to route the real-world systems.

Paper shape: DFSSSP needs no more layers than LASH on every one of the
six systems (typically 1-4 layers; these fabrics are tree-ish, so both
stay small). At CI scale our lookalikes reproduce that ordering. At
REPRO_FULL scale the trunked lookalikes (Ranger/Tsubame/Deimos) demand
*more* DFSSSP lanes than LASH (8/10/5 vs 6/6/2) — a documented deviation:
our synthetic trunk-to-line-board placement creates more valley cycles
than the (unpublished) real fabric files, and DFSSSP's per-destination
paths see all of them while LASH's coarser switch-pair set does not.
Both stay within the InfiniBand 16-lane spec, which is what we assert at
full scale. See EXPERIMENTS.md.
"""

from conftest import CLUSTER_SCALES, FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine
from repro.routing import LASHEngine
from repro.utils.reporting import Table

SYSTEMS = ("chic", "juropa", "odin", "ranger", "tsubame", "deimos")
MAX_LAYERS = 16


def _experiment():
    table = Table(
        ["system", "dfsssp VLs", "lash VLs"],
        title="Fig. 10 — virtual lanes needed for deadlock-freedom",
    )
    data = {}
    for system in SYSTEMS:
        fabric = topologies.cluster(system, scale=CLUSTER_SCALES[system])
        df = DFSSSPEngine(max_layers=MAX_LAYERS, balance=False).route(fabric)
        la = LASHEngine(max_layers=MAX_LAYERS).route(fabric)
        table.add_row([system, df.stats["layers_needed"], la.stats["layers_needed"]])
        data[system] = (df.stats["layers_needed"], la.stats["layers_needed"])
    return table, data


def test_fig10_realworld_vls(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig10_realworld_vls", table.render(), table=table)
    for system, (df, la) in data.items():
        if FULL:
            # Documented deviation (see module docstring): assert the
            # spec budget rather than the exact ordering.
            assert 1 <= df <= MAX_LAYERS and 1 <= la <= MAX_LAYERS
        else:
            # Paper: "DFSSSP routing performs better on these topologies".
            assert df <= la, f"{system}: DFSSSP needed {df} > LASH {la}"
            assert 1 <= df <= 8  # fits the hardware budget with room to spare
