"""Figure 12: Netgauge effective bisection bandwidth on Deimos.

Paper shape: (a) absolute eBB decreases for every routing as the core
count grows (congestion); (b) DFSSSP's advantage over MinHop grows with
the core count (27% at 128 cores up to ~2x at 512); (c) LASH trails on
this topology. Core counts scale with the fabric (paper: 128..1024 on
724 nodes).
"""

from conftest import CLUSTER_SCALES, EBB_PATTERNS, FULL, emit, run_once

from repro import topologies
from repro.apps import core_allocation, netgauge_ebb
from repro.core import DFSSSPEngine
from repro.routing import LASHEngine, MinHopEngine
from repro.utils.reporting import Table


def _experiment():
    fabric = topologies.deimos(scale=CLUSTER_SCALES["deimos"])
    nodes = fabric.num_terminals
    if FULL:
        core_counts = (128, 256, 512, 1024)
    else:
        core_counts = tuple(c for c in (nodes // 4, nodes // 2, nodes, 2 * nodes) if c >= 8)
    engines = {
        "minhop": MinHopEngine().route(fabric).tables,
        "lash": LASHEngine().route(fabric).tables,
        "dfsssp": DFSSSPEngine().route(fabric).tables,
    }
    table = Table(
        ["cores", "minhop [MiB/s]", "lash [MiB/s]", "dfsssp [MiB/s]", "dfsssp/minhop"],
        title=f"Fig. 12 — Netgauge eBB on Deimos ({nodes} nodes), "
        f"{EBB_PATTERNS} partitions/point",
        precision=1,
    )
    data = {}
    for cores in core_counts:
        alloc = core_allocation(fabric, cores, seed=cores)
        row: list = [cores]
        point = {}
        for name, tables in engines.items():
            r = netgauge_ebb(tables, cores, num_patterns=EBB_PATTERNS, seed=77, allocation=alloc)
            point[name] = r.ebb_mibs
            row.append(r.ebb_mibs)
        row.append(point["dfsssp"] / point["minhop"])
        table.add_row(row)
        data[cores] = point
    return table, data


def test_fig12_netgauge_ebb(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig12_netgauge_ebb", table.render(), table=table)
    cores = sorted(data)
    # (a) absolute bandwidth decreases with core count for every engine.
    for name in ("minhop", "dfsssp"):
        assert data[cores[-1]][name] <= data[cores[0]][name] + 25.0
    # (b) DFSSSP never loses to MinHop; Netgauge's estimator is noisy at
    # small pattern counts, so allow a 5% band.
    for c in cores:
        assert data[c]["dfsssp"] >= 0.95 * data[c]["minhop"]
    # All estimates live below the PCIe limit.
    for c in cores:
        for name, v in data[c].items():
            assert 0 < v <= 946.0 + 1e-6
