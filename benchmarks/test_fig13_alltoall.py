"""Figure 13: MPI_Alltoall runtime vs send-buffer size (128 cores).

Paper shape: time grows linearly with buffer size once bandwidth-bound,
and DFSSSP's balanced routes finish the collective faster than MinHop's
(paper: 18.88 ms -> 10.06 ms at 4096 floats, a 46.7% speedup wedge that
opens with message size).
"""

from conftest import CLUSTER_SCALES, FULL, emit, run_once

from repro import topologies
from repro.apps import alltoall_time
from repro.core import DFSSSPEngine
from repro.routing import LASHEngine, MinHopEngine
from repro.utils.reporting import Table

FLOAT_SWEEP = (4, 16, 64, 256, 1024, 4096)


def _experiment():
    fabric = topologies.deimos(scale=CLUSTER_SCALES["deimos"])
    cores = 128 if FULL else min(32, fabric.num_terminals)
    # Spread the job over the whole machine, as the paper's node
    # allocation did (one core per node, random placement).
    from repro.apps import core_allocation

    participants = [int(t) for t in core_allocation(fabric, cores, seed=13)]
    engines = {
        "minhop": MinHopEngine().route(fabric).tables,
        "lash": LASHEngine().route(fabric).tables,
        "dfsssp": DFSSSPEngine().route(fabric).tables,
    }
    table = Table(
        ["floats", "minhop [ms]", "lash [ms]", "dfsssp [ms]", "speedup %"],
        title=f"Fig. 13 — all-to-all on Deimos, {cores} cores",
        precision=3,
    )
    data = {}
    for floats in FLOAT_SWEEP:
        row: list = [floats]
        point = {}
        for name, tables in engines.items():
            t = alltoall_time(tables, participants, floats).total_ms
            point[name] = t
            row.append(t)
        row.append((point["minhop"] / point["dfsssp"] - 1.0) * 100.0)
        table.add_row(row)
        data[floats] = point
    return table, data


def test_fig13_alltoall(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("fig13_alltoall", table.render(), table=table)
    # Linear growth in message size (bandwidth model).
    assert data[4096]["dfsssp"] / data[1024]["dfsssp"] == __import__("pytest").approx(4.0, rel=0.01)
    # DFSSSP at least matches MinHop at every size.
    for floats, point in data.items():
        assert point["dfsssp"] <= point["minhop"] * 1.02
