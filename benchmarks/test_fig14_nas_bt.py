"""Figure 14: NAS BT (block-tridiagonal solver) Gflop/s vs cores.

Paper shape: MinHop and DFSSSP tie at small core counts (nearest-neighbor
traffic, little congestion), diverge at larger ones; both keep scaling
positively. Paper peak improvement at 1024 cores: 95%.
"""

from conftest import FULL, emit, run_once
from nas_common import assert_nas_shape, nas_sweep

CORES = (121, 256, 484, 1024) if FULL else (16, 36, 64, 100)


def test_fig14_nas_bt(benchmark):
    table, data = run_once(benchmark, nas_sweep, "bt", CORES)
    emit("fig14_nas_bt", table.render(), table=table)
    assert_nas_shape(data)
