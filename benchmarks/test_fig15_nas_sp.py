"""Figure 15: NAS SP (scalar-pentadiagonal solver) Gflop/s vs cores.

Same communication structure as BT with thinner faces and more
iterations: the congestion wedge opens earlier (the paper shows MinHop's
SP dropping at 484 cores while DFSSSP keeps scaling).
"""

from conftest import FULL, emit, run_once
from nas_common import assert_nas_shape, nas_sweep

CORES = (121, 256, 484, 1024) if FULL else (16, 36, 64, 100)


def test_fig15_nas_sp(benchmark):
    table, data = run_once(benchmark, nas_sweep, "sp", CORES)
    emit("fig15_nas_sp", table.render(), table=table)
    assert_nas_shape(data)
