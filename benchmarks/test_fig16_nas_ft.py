"""Figure 16: NAS FT (3D FFT) Gflop/s vs cores.

FT is all-to-all dominated, so routing quality matters at *every* core
count — the paper measures ~25% DFSSSP gains already at 128/256 cores,
unlike the stencil kernels.
"""

from conftest import FULL, emit, run_once
from nas_common import assert_nas_shape, nas_sweep

from repro.apps import improvement_percent

CORES = (128, 256, 512, 1024) if FULL else (16, 32, 64, 128)


def test_fig16_nas_ft(benchmark):
    table, data = run_once(benchmark, nas_sweep, "ft", CORES)
    emit("fig16_nas_ft", table.render(), table=table)
    assert_nas_shape(data)
