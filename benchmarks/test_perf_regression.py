"""Performance-regression gate for the routing hot path.

Measures, on the reference fabric ``xgft(3, (8,8,6), (1,4,4))`` (88
switches, 384 terminals — large enough that process-pool startup is
noise):

* serial SSSP / DFSSSP route time and peak memory (tracemalloc),
* parallel DFSSSP (``workers=4, kernel="numpy"``) route time,

and writes everything to ``benchmarks/results/BENCH_parallel.json`` (the
CI artifact) plus the usual text table for RESULTS.md.

Two gates fail the run:

* **speedup** — parallel DFSSSP must be ≥ 2× faster than serial at 4
  workers (the tentpole's acceptance criterion; currently ~2.7×);
* **regression** — serial SSSP, *normalized by a machine-speed
  calibration primitive*, must not be > 20% slower than the committed
  baseline in ``benchmarks/baselines/BENCH_parallel_baseline.json``.
  The calibration primitive (pure-Python heap churn, independent of the
  routing code) cancels host-speed differences, so the gate tracks code
  regressions, not runner hardware.

After an *intentional* perf change, refresh the baseline::

    PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline
"""

from __future__ import annotations

import heapq
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import DFSSSPEngine, SSSPEngine
from repro.network.topologies import xgft
from repro.utils.reporting import Table

from conftest import RESULTS_DIR, emit

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_parallel_baseline.json"
BENCH_JSON = RESULTS_DIR / "BENCH_parallel.json"

#: reference fabric (see module docstring)
REFERENCE_XGFT = (3, (8, 8, 6), (1, 4, 4))

#: smaller companion fabric for the tracemalloc pass — allocation tracing
#: slows Python-heavy code ~10x, so memory is profiled separately from time
MEMORY_XGFT = (3, (6, 6, 6), (1, 3, 3))

#: serial-SSSP regression tolerance vs the committed baseline
REGRESSION_FACTOR = 1.2

#: required parallel-DFSSSP speedup at PARALLEL_WORKERS workers
MIN_SPEEDUP = 2.0
PARALLEL_WORKERS = 4


def _calibrate() -> float:
    """Machine-speed unit: seconds for a fixed pure-Python heap workload.

    Deliberately independent of the routing code (a regression there must
    not slow the yardstick too) but dominated by the same interpreter
    operations — heap pushes/pops and integer arithmetic — as the serial
    SSSP hot loop, so host-speed variation divides out of the ratio.
    """
    start = time.perf_counter()
    acc = 0
    for _ in range(3):
        h: list[tuple[int, int]] = []
        for i in range(120_000):
            heapq.heappush(h, ((i * 2654435761) & 0xFFFFF, i))
        while h:
            acc ^= heapq.heappop(h)[1]
    assert acc == 0
    return time.perf_counter() - start


def _timed_route(engine, fabric):
    start = time.perf_counter()
    result = engine.route(fabric)
    return result, time.perf_counter() - start


def _peak_memory_mb(engine, fabric) -> float:
    """Peak Python-heap allocation of one route, in MB (tracemalloc)."""
    tracemalloc.start()
    try:
        engine.route(fabric)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def measure() -> dict:
    """All measurements as one JSON-ready record."""
    fabric = xgft(*REFERENCE_XGFT)
    calib = _calibrate()

    serial_sssp, t_sssp = _timed_route(SSSPEngine(), fabric)
    serial_df, t_df = _timed_route(DFSSSPEngine(), fabric)
    par_engine = DFSSSPEngine(workers=PARALLEL_WORKERS, kernel="numpy")
    par_df, t_par = _timed_route(par_engine, fabric)
    par_sssp_engine = SSSPEngine(workers=PARALLEL_WORKERS, kernel="numpy")
    par_sssp, t_par_sssp = _timed_route(par_sssp_engine, fabric)

    mem_fabric = xgft(*MEMORY_XGFT)
    mem_sssp = _peak_memory_mb(SSSPEngine(), mem_fabric)
    mem_df = _peak_memory_mb(DFSSSPEngine(), mem_fabric)

    # The gate only means anything if the parallel run is the *same* run.
    assert np.array_equal(
        par_df.tables.next_channel, serial_df.tables.next_channel
    ), "parallel DFSSSP diverged from serial — perf numbers are meaningless"
    assert np.array_equal(par_df.layered.path_layers, serial_df.layered.path_layers)
    assert np.array_equal(
        par_sssp.tables.next_channel, serial_sssp.tables.next_channel
    )

    return {
        "fabric": f"xgft{REFERENCE_XGFT}",
        "terminals": fabric.num_terminals,
        "switches": fabric.num_switches,
        "memory_fabric": f"xgft{MEMORY_XGFT}",
        "calibration_s": calib,
        "serial_sssp_s": t_sssp,
        "serial_sssp_peak_mb": mem_sssp,
        "serial_dfsssp_s": t_df,
        "serial_dfsssp_peak_mb": mem_df,
        "parallel_sssp_s": t_par_sssp,
        "parallel_dfsssp_s": t_par,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_kernel": "numpy",
        "dfsssp_speedup": t_df / t_par,
        "sssp_speedup": t_sssp / t_par_sssp,
        "serial_sssp_per_calib": t_sssp / calib,
    }


def _emit(record: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(record, indent=1) + "\n")
    table = Table(
        ["configuration", "time [s]", "speedup", "peak mem [MB]"],
        title=f"parallel routing on {record['fabric']} "
        f"({record['terminals']} terminals; memory profiled on "
        f"{record['memory_fabric']})",
    )
    table.add_row(["sssp serial", round(record["serial_sssp_s"], 3), 1.0,
                   round(record["serial_sssp_peak_mb"], 1)])
    table.add_row([f"sssp workers={record['parallel_workers']} numpy",
                   round(record["parallel_sssp_s"], 3),
                   round(record["sssp_speedup"], 2), None])
    table.add_row(["dfsssp serial", round(record["serial_dfsssp_s"], 3), 1.0,
                   round(record["serial_dfsssp_peak_mb"], 1)])
    table.add_row([f"dfsssp workers={record['parallel_workers']} numpy",
                   round(record["parallel_dfsssp_s"], 3),
                   round(record["dfsssp_speedup"], 2), None])
    emit("parallel_speedup", table.render(), table)


def test_parallel_speedup_and_no_serial_regression():
    record = measure()
    _emit(record)

    assert record["dfsssp_speedup"] >= MIN_SPEEDUP, (
        f"parallel DFSSSP speedup {record['dfsssp_speedup']:.2f}x at "
        f"{PARALLEL_WORKERS} workers is below the required {MIN_SPEEDUP}x "
        f"(serial {record['serial_dfsssp_s']:.3f}s, "
        f"parallel {record['parallel_dfsssp_s']:.3f}s)"
    )

    assert BASELINE_PATH.is_file(), (
        f"missing committed baseline {BASELINE_PATH}; create it with "
        "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    allowed = baseline["serial_sssp_per_calib"] * REGRESSION_FACTOR
    assert record["serial_sssp_per_calib"] <= allowed, (
        f"serial SSSP regressed: {record['serial_sssp_per_calib']:.2f} "
        f"calibration units vs baseline "
        f"{baseline['serial_sssp_per_calib']:.2f} "
        f"(gate: {REGRESSION_FACTOR:.1f}x). If intentional, rebaseline with "
        "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
    )


def _rebaseline() -> None:
    record = measure()
    _emit(record)
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "fabric": record["fabric"],
                "serial_sssp_per_calib": record["serial_sssp_per_calib"],
                "note": "serial SSSP route time divided by the calibration "
                "primitive; gate allows 1.2x",
            },
            indent=1,
        )
        + "\n"
    )
    print(f"baseline written to {BASELINE_PATH}")
    print(json.dumps(record, indent=1))


if __name__ == "__main__":
    import sys

    if "--rebaseline" in sys.argv:
        _rebaseline()
    else:
        test_parallel_speedup_and_no_serial_regression()
        print(BENCH_JSON.read_text())
