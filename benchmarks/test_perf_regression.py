"""Performance-regression gate for the routing hot path.

Measures, on the reference fabric ``xgft(3, (8,8,6), (1,4,4))`` (88
switches, 384 terminals — large enough that process-pool startup is
noise):

* serial SSSP / DFSSSP route time and peak memory (tracemalloc),
* parallel DFSSSP (``workers=4, kernel="numpy"``) route time,
* cycle breaking: the incremental CSR engine
  (:func:`repro.deadlock.incremental.assign_layers_incremental`) vs the
  rebuild-based reference (:func:`repro.core.layers.assign_layers_offline`)
  on the same XGFT plus a dragonfly,

and writes everything to ``benchmarks/results/BENCH_parallel.json`` and
``benchmarks/results/BENCH_cdg.json`` (the CI artifacts) plus the usual
text tables for RESULTS.md.

Three gates fail the run:

* **speedup** — parallel DFSSSP must be ≥ 2× faster than serial at 4
  workers (currently ~2.7×);
* **cycle breaking** — the incremental engine must be ≥ 3× faster than
  the rebuild reference on *both* benchmark fabrics, with bit-identical
  layer assignments (currently ~4.5× on the XGFT, ~3.4× on the
  dragonfly);
* **regression** — serial SSSP and the incremental cycle breaker,
  *normalized by a machine-speed calibration primitive*, must not be
  > 20% slower than the committed baselines in ``benchmarks/baselines/``.
  The calibration primitive (pure-Python heap churn, independent of the
  routing code) cancels host-speed differences, so the gate tracks code
  regressions, not runner hardware.

After an *intentional* perf change, refresh the baselines::

    PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline
"""

from __future__ import annotations

import heapq
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import DFSSSPEngine, SSSPEngine
from repro.core.layers import assign_layers_offline
from repro.deadlock.incremental import assign_layers_incremental
from repro.network.topologies import dragonfly, xgft
from repro.routing import extract_paths
from repro.utils.reporting import Table

from conftest import RESULTS_DIR, emit

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_parallel_baseline.json"
BENCH_JSON = RESULTS_DIR / "BENCH_parallel.json"
CDG_BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_cdg_baseline.json"
CDG_BENCH_JSON = RESULTS_DIR / "BENCH_cdg.json"

#: reference fabric (see module docstring)
REFERENCE_XGFT = (3, (8, 8, 6), (1, 4, 4))

#: smaller companion fabric for the tracemalloc pass — allocation tracing
#: slows Python-heavy code ~10x, so memory is profiled separately from time
MEMORY_XGFT = (3, (6, 6, 6), (1, 3, 3))

#: serial-SSSP regression tolerance vs the committed baseline
REGRESSION_FACTOR = 1.2

#: required parallel-DFSSSP speedup at PARALLEL_WORKERS workers
MIN_SPEEDUP = 2.0
PARALLEL_WORKERS = 4

#: cycle-breaking benchmark fabrics: the reference XGFT plus a dragonfly
#: (dense global links make its CDGs much more cyclic — the adversarial
#: case for the drain/eviction machinery)
CDG_FABRICS = {
    "xgft(3, (8, 8, 6), (1, 4, 4))": lambda: xgft(3, (8, 8, 6), (1, 4, 4)),
    "dragonfly(8, 4, 4)": lambda: dragonfly(8, 4, 4),
}

#: required incremental-vs-rebuild cycle-breaking speedup, per fabric
MIN_CDG_SPEEDUP = 3.0


def _calibrate() -> float:
    """Machine-speed unit: seconds for a fixed pure-Python heap workload.

    Deliberately independent of the routing code (a regression there must
    not slow the yardstick too) but dominated by the same interpreter
    operations — heap pushes/pops and integer arithmetic — as the serial
    SSSP hot loop, so host-speed variation divides out of the ratio.
    """
    start = time.perf_counter()
    acc = 0
    for _ in range(3):
        h: list[tuple[int, int]] = []
        for i in range(120_000):
            heapq.heappush(h, ((i * 2654435761) & 0xFFFFF, i))
        while h:
            acc ^= heapq.heappop(h)[1]
    assert acc == 0
    return time.perf_counter() - start


def _timed_route(engine, fabric):
    start = time.perf_counter()
    result = engine.route(fabric)
    return result, time.perf_counter() - start


def _peak_memory_mb(engine, fabric) -> float:
    """Peak Python-heap allocation of one route, in MB (tracemalloc)."""
    tracemalloc.start()
    try:
        engine.route(fabric)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def measure() -> dict:
    """All measurements as one JSON-ready record."""
    fabric = xgft(*REFERENCE_XGFT)
    calib = _calibrate()

    serial_sssp, t_sssp = _timed_route(SSSPEngine(), fabric)
    serial_df, t_df = _timed_route(DFSSSPEngine(), fabric)
    par_engine = DFSSSPEngine(workers=PARALLEL_WORKERS, kernel="numpy")
    par_df, t_par = _timed_route(par_engine, fabric)
    par_sssp_engine = SSSPEngine(workers=PARALLEL_WORKERS, kernel="numpy")
    par_sssp, t_par_sssp = _timed_route(par_sssp_engine, fabric)

    mem_fabric = xgft(*MEMORY_XGFT)
    mem_sssp = _peak_memory_mb(SSSPEngine(), mem_fabric)
    mem_df = _peak_memory_mb(DFSSSPEngine(), mem_fabric)

    # The gate only means anything if the parallel run is the *same* run.
    assert np.array_equal(
        par_df.tables.next_channel, serial_df.tables.next_channel
    ), "parallel DFSSSP diverged from serial — perf numbers are meaningless"
    assert np.array_equal(par_df.layered.path_layers, serial_df.layered.path_layers)
    assert np.array_equal(
        par_sssp.tables.next_channel, serial_sssp.tables.next_channel
    )

    return {
        "fabric": f"xgft{REFERENCE_XGFT}",
        "terminals": fabric.num_terminals,
        "switches": fabric.num_switches,
        "memory_fabric": f"xgft{MEMORY_XGFT}",
        "calibration_s": calib,
        "serial_sssp_s": t_sssp,
        "serial_sssp_peak_mb": mem_sssp,
        "serial_dfsssp_s": t_df,
        "serial_dfsssp_peak_mb": mem_df,
        "parallel_sssp_s": t_par_sssp,
        "parallel_dfsssp_s": t_par,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_kernel": "numpy",
        "dfsssp_speedup": t_df / t_par,
        "sssp_speedup": t_sssp / t_par_sssp,
        "serial_sssp_per_calib": t_sssp / calib,
    }


def measure_cdg() -> dict:
    """Cycle-breaking comparison on both benchmark fabrics."""
    calib = _calibrate()
    fabrics = {}
    for name, build in CDG_FABRICS.items():
        fabric = build()
        paths = extract_paths(SSSPEngine().route(fabric).tables)
        pids = paths.active_pids()

        # Best-of-2 per engine: one noisy scheduler hiccup must not trip
        # a gate that the code clears by a comfortable margin.
        t_rebuild = t_inc = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            ref = assign_layers_offline(paths, pids=pids)
            t_rebuild = min(t_rebuild, time.perf_counter() - start)

            start = time.perf_counter()
            inc = assign_layers_incremental(paths, pids=pids)
            t_inc = min(t_inc, time.perf_counter() - start)

        # The speedup only means anything if both engines did the same work.
        assert np.array_equal(inc.path_layers, ref.path_layers), (
            f"{name}: incremental diverged from rebuild — numbers are meaningless"
        )
        assert inc.cycles_broken == ref.cycles_broken

        fabrics[name] = {
            "switches": fabric.num_switches,
            "terminals": fabric.num_terminals,
            "paths": int(len(pids)),
            "cycles_broken": ref.cycles_broken,
            "layers_needed": ref.layers_needed,
            "rebuild_s": t_rebuild,
            "incremental_s": t_inc,
            "speedup": t_rebuild / t_inc,
            "incremental_per_calib": t_inc / calib,
        }
    return {"calibration_s": calib, "fabrics": fabrics}


def _emit_cdg(record: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    CDG_BENCH_JSON.write_text(json.dumps(record, indent=1) + "\n")
    table = Table(
        ["fabric", "paths", "cycles", "rebuild [s]", "incremental [s]", "speedup"],
        title="cycle breaking: incremental CSR engine vs rebuild reference "
        "(bit-identical assignments)",
    )
    for name, f in record["fabrics"].items():
        table.add_row([
            name, f["paths"], f["cycles_broken"],
            round(f["rebuild_s"], 3), round(f["incremental_s"], 3),
            round(f["speedup"], 2),
        ])
    emit("cdg_speedup", table.render(), table)


def _emit(record: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(record, indent=1) + "\n")
    table = Table(
        ["configuration", "time [s]", "speedup", "peak mem [MB]"],
        title=f"parallel routing on {record['fabric']} "
        f"({record['terminals']} terminals; memory profiled on "
        f"{record['memory_fabric']})",
    )
    table.add_row(["sssp serial", round(record["serial_sssp_s"], 3), 1.0,
                   round(record["serial_sssp_peak_mb"], 1)])
    table.add_row([f"sssp workers={record['parallel_workers']} numpy",
                   round(record["parallel_sssp_s"], 3),
                   round(record["sssp_speedup"], 2), None])
    table.add_row(["dfsssp serial", round(record["serial_dfsssp_s"], 3), 1.0,
                   round(record["serial_dfsssp_peak_mb"], 1)])
    table.add_row([f"dfsssp workers={record['parallel_workers']} numpy",
                   round(record["parallel_dfsssp_s"], 3),
                   round(record["dfsssp_speedup"], 2), None])
    emit("parallel_speedup", table.render(), table)


def test_parallel_speedup_and_no_serial_regression():
    record = measure()
    _emit(record)

    assert record["dfsssp_speedup"] >= MIN_SPEEDUP, (
        f"parallel DFSSSP speedup {record['dfsssp_speedup']:.2f}x at "
        f"{PARALLEL_WORKERS} workers is below the required {MIN_SPEEDUP}x "
        f"(serial {record['serial_dfsssp_s']:.3f}s, "
        f"parallel {record['parallel_dfsssp_s']:.3f}s)"
    )

    assert BASELINE_PATH.is_file(), (
        f"missing committed baseline {BASELINE_PATH}; create it with "
        "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    allowed = baseline["serial_sssp_per_calib"] * REGRESSION_FACTOR
    assert record["serial_sssp_per_calib"] <= allowed, (
        f"serial SSSP regressed: {record['serial_sssp_per_calib']:.2f} "
        f"calibration units vs baseline "
        f"{baseline['serial_sssp_per_calib']:.2f} "
        f"(gate: {REGRESSION_FACTOR:.1f}x). If intentional, rebaseline with "
        "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
    )


def test_cycle_breaking_speedup_and_no_regression():
    record = measure_cdg()
    _emit_cdg(record)

    for name, f in record["fabrics"].items():
        assert f["speedup"] >= MIN_CDG_SPEEDUP, (
            f"incremental cycle breaking on {name} is only "
            f"{f['speedup']:.2f}x the rebuild reference "
            f"(rebuild {f['rebuild_s']:.3f}s, incremental "
            f"{f['incremental_s']:.3f}s); gate requires {MIN_CDG_SPEEDUP}x"
        )

    assert CDG_BASELINE_PATH.is_file(), (
        f"missing committed baseline {CDG_BASELINE_PATH}; create it with "
        "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
    )
    baseline = json.loads(CDG_BASELINE_PATH.read_text())
    for name, base in baseline["incremental_per_calib"].items():
        got = record["fabrics"][name]["incremental_per_calib"]
        assert got <= base * REGRESSION_FACTOR, (
            f"incremental cycle breaking on {name} regressed: {got:.2f} "
            f"calibration units vs baseline {base:.2f} "
            f"(gate: {REGRESSION_FACTOR:.1f}x). If intentional, rebaseline with "
            "`PYTHONPATH=src python benchmarks/test_perf_regression.py --rebaseline`"
        )


def _rebaseline() -> None:
    record = measure()
    _emit(record)
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "fabric": record["fabric"],
                "serial_sssp_per_calib": record["serial_sssp_per_calib"],
                "note": "serial SSSP route time divided by the calibration "
                "primitive; gate allows 1.2x",
            },
            indent=1,
        )
        + "\n"
    )
    print(f"baseline written to {BASELINE_PATH}")
    print(json.dumps(record, indent=1))

    cdg = measure_cdg()
    _emit_cdg(cdg)
    CDG_BASELINE_PATH.write_text(
        json.dumps(
            {
                "incremental_per_calib": {
                    name: f["incremental_per_calib"]
                    for name, f in cdg["fabrics"].items()
                },
                "note": "incremental cycle-breaking time divided by the "
                "calibration primitive; gate allows 1.2x",
            },
            indent=1,
        )
        + "\n"
    )
    print(f"baseline written to {CDG_BASELINE_PATH}")
    print(json.dumps(cdg, indent=1))


if __name__ == "__main__":
    import sys

    if "--rebaseline" in sys.argv:
        _rebaseline()
    else:
        test_parallel_speedup_and_no_serial_regression()
        print(BENCH_JSON.read_text())
        test_cycle_breaking_speedup_and_no_regression()
        print(CDG_BENCH_JSON.read_text())
