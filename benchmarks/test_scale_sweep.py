"""Scale-sweep benchmark: 1k / 10k / 100k-endpoint XGFTs.

The perf-regression gate (``test_perf_regression.py``) pins the hot path
on a 384-terminal reference fabric; this sweep shows the fast path
(shared-memory fan-out + numpy kernel + vectorized weight update) holds
up at three orders of magnitude:

========  ==========================  =========  ==========
tier      fabric                      terminals  channels
========  ==========================  =========  ==========
``1k``    ``xgft(3,(10,10,10),(1,4,4))``   1 000     4 200
``10k``   ``xgft(3,(22,22,21),(1,6,6))``  10 164    27 384
``100k``  ``xgft(3,(50,50,40),(1,8,8))`` 100 000   237 120
========  ==========================  =========  ==========

Per tier we record fast-path wall time, peak RSS
(``resource.getrusage``), and a *sampled* pure-python serial estimate:
the reference heap Dijkstra + farthest-first weight update is timed on a
handful of evenly spaced destinations and extrapolated by the terminal
count. Full pure-python runs at 10k+ take tens of minutes — exactly the
wall this sweep documents breaking — so sampling keeps the gate cheap
while staying honest (the per-destination cost is flat across
destinations of one fabric).

The ``1k``/``10k`` tiers run everywhere (the CI smoke step); results
land in ``benchmarks/results/BENCH_scale.json``. The ``100k`` tier needs
a ~64 GB box and minutes of wall time, so it only runs with
``REPRO_SCALE_100K=1`` (the nightly leg): it allocates the full dense
forwarding table (~41 GB), routes sampled destinations through the numpy
kernel at true scale, and gates peak RSS under the ceiling.

Gates:

* **speedup** — the 10k fast path must be ≥ 5× the extrapolated python
  serial time (currently ~12×);
* **memory** — peak RSS per tier stays under its ceiling (the 100k
  ceiling, 64 GB, is the headline: dense tables at 100k endpoints fit);
* **regression** — fast-path time per calibration unit must not exceed
  the committed ``benchmarks/baselines/BENCH_scale_baseline.json`` by
  more than 30% (scale runs are noisier than the reference fabric, hence
  the wider band than test_perf_regression's 20%).

After an *intentional* perf change, refresh the baseline::

    PYTHONPATH=src python benchmarks/test_scale_sweep.py --rebaseline
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import SSSPEngine
from repro.core.sssp import (
    dijkstra_to_dest,
    update_weights_for_dest,
    update_weights_for_dest_fast,
)
from repro.network.topologies import xgft
from repro.parallel.kernel import dijkstra_to_dest_numpy
from repro.utils.reporting import Table

from conftest import RESULTS_DIR, emit
from test_perf_regression import _calibrate

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_scale_baseline.json"
SCALE_JSON = RESULTS_DIR / "BENCH_scale.json"

#: tier name -> xgft parameters, python-sample size, peak-RSS ceiling
TIERS = {
    "1k": {"xgft": (3, (10, 10, 10), (1, 4, 4)), "sample": 8, "rss_ceiling_mb": 4_096},
    "10k": {"xgft": (3, (22, 22, 21), (1, 6, 6)), "sample": 6, "rss_ceiling_mb": 16_384},
    "100k": {"xgft": (3, (50, 50, 40), (1, 8, 8)), "sample": 3, "rss_ceiling_mb": 65_536},
}

#: tiers the smoke test (and CI) runs; 100k is env-gated (see module docstring)
SMOKE_TIERS = ("1k", "10k")

#: required fast-path speedup over the extrapolated python serial at 10k
MIN_SPEEDUP_10K = 5.0

#: fast-path regression tolerance vs the committed baseline
REGRESSION_FACTOR = 1.3

#: fast-path configuration: shared-memory fan-out + numpy kernel
FAST_WORKERS = 2

RUN_100K = os.environ.get("REPRO_SCALE_100K") == "1"


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB (Linux ru_maxrss is in KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _sample_dests(fabric, k: int) -> list[int]:
    terms = np.asarray(fabric.terminals)
    step = max(1, len(terms) // k)
    return [int(d) for d in terms[::step][:k]]


def _python_per_dest_s(fabric, k: int) -> float:
    """Pure-python serial cost per destination, sampled over k dests."""
    is_term = np.zeros(fabric.num_nodes, dtype=bool)
    is_term[np.asarray(fabric.terminals)] = True
    weights = np.ones(fabric.num_channels, dtype=np.int64)
    dests = _sample_dests(fabric, k)
    start = time.perf_counter()
    for dest in dests:
        dist, parent = dijkstra_to_dest(fabric, dest, weights)
        update_weights_for_dest(fabric, dest, dist, parent, weights, is_term)
    return (time.perf_counter() - start) / len(dests)


def measure_tier(name: str) -> dict:
    """Full fast-path route + sampled python estimate for one smoke tier."""
    cfg = TIERS[name]
    fabric = xgft(*cfg["xgft"])
    calib = _calibrate()

    per_dest = _python_per_dest_s(fabric, cfg["sample"])
    est_python_s = per_dest * fabric.num_terminals

    engine = SSSPEngine(workers=FAST_WORKERS, kernel="numpy")
    start = time.perf_counter()
    result = engine.route(fabric)
    fast_s = time.perf_counter() - start
    assert result.tables.next_channel.shape[0] == fabric.num_nodes

    return {
        "fabric": f"xgft{cfg['xgft']}",
        "nodes": fabric.num_nodes,
        "terminals": fabric.num_terminals,
        "channels": fabric.num_channels,
        "calibration_s": calib,
        "python_sample_dests": cfg["sample"],
        "python_per_dest_s": per_dest,
        "python_serial_est_s": est_python_s,
        "fast_s": fast_s,
        "fast_workers": FAST_WORKERS,
        "fast_kernel": "numpy",
        "speedup_vs_python_est": est_python_s / fast_s,
        "fast_per_calib": fast_s / calib,
        "peak_rss_mb": _peak_rss_mb(),
        "rss_ceiling_mb": cfg["rss_ceiling_mb"],
    }


def measure_100k() -> dict:
    """Memory-ceiling probe at 100k endpoints.

    Allocates the full dense forwarding table (the dominant allocation of
    a real route: ``num_nodes x num_terminals`` int32, ~41 GB here), then
    routes sampled destinations through the numpy kernel + vectorized
    weight update at true scale, filling their columns. Peak RSS is the
    gate; wall time per destination is extrapolated for the record.
    """
    cfg = TIERS["100k"]
    fabric = xgft(*cfg["xgft"])
    calib = _calibrate()
    is_term = np.zeros(fabric.num_nodes, dtype=bool)
    is_term[np.asarray(fabric.terminals)] = True
    weights = np.ones(fabric.num_channels, dtype=np.int64)
    dests = _sample_dests(fabric, cfg["sample"])

    # -1 (not np.empty) so every page is touched and counted in RSS.
    table = np.full((fabric.num_nodes, fabric.num_terminals), -1, dtype=np.int32)

    start = time.perf_counter()
    for i, dest in enumerate(dests):
        dist, parent = dijkstra_to_dest_numpy(fabric, dest, weights)
        update_weights_for_dest_fast(fabric, dest, dist, parent, weights, is_term)
        table[:, i] = parent
    per_dest = (time.perf_counter() - start) / len(dests)

    py_per_dest = _python_per_dest_s(fabric, 2)
    record = {
        "fabric": f"xgft{cfg['xgft']}",
        "nodes": fabric.num_nodes,
        "terminals": fabric.num_terminals,
        "channels": fabric.num_channels,
        "calibration_s": calib,
        "table_gb": table.nbytes / 1e9,
        "sampled_dests": len(dests),
        "fast_per_dest_s": per_dest,
        "fast_est_full_route_min": per_dest * fabric.num_terminals / 60,
        "python_per_dest_s": py_per_dest,
        "python_serial_est_min": py_per_dest * fabric.num_terminals / 60,
        "speedup_vs_python_est": py_per_dest / per_dest,
        "peak_rss_mb": _peak_rss_mb(),
        "rss_ceiling_mb": cfg["rss_ceiling_mb"],
    }
    del table
    return record


def _emit_scale(tiers: dict) -> None:
    """Merge tier records into BENCH_scale.json and render the table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {"tiers": {}}
    if SCALE_JSON.is_file():
        record = json.loads(SCALE_JSON.read_text())
    record["tiers"].update(tiers)
    SCALE_JSON.write_text(json.dumps(record, indent=1) + "\n")

    table = Table(
        ["tier", "terminals", "fast [s]", "python est [s]", "speedup", "peak RSS [MB]"],
        title=f"scale sweep: shared-memory fan-out + numpy kernel "
        f"(workers={FAST_WORKERS}) vs sampled pure-python serial estimate",
    )
    for name in ("1k", "10k", "100k"):
        t = record["tiers"].get(name)
        if t is None:
            continue
        fast = t.get("fast_s", t.get("fast_per_dest_s", 0) * t["terminals"])
        table.add_row([
            name, t["terminals"], round(fast, 1),
            round(t.get("python_serial_est_s",
                        t.get("python_serial_est_min", 0) * 60), 1),
            round(t["speedup_vs_python_est"], 1),
            round(t["peak_rss_mb"], 0),
        ])
    emit("scale_sweep", table.render(), table)


def test_scale_sweep_smoke():
    tiers = {name: measure_tier(name) for name in SMOKE_TIERS}
    _emit_scale(tiers)

    t10k = tiers["10k"]
    assert t10k["speedup_vs_python_est"] >= MIN_SPEEDUP_10K, (
        f"10k fast path is only {t10k['speedup_vs_python_est']:.1f}x the "
        f"extrapolated python serial (fast {t10k['fast_s']:.1f}s, python est "
        f"{t10k['python_serial_est_s']:.1f}s); gate requires {MIN_SPEEDUP_10K}x"
    )
    for name, t in tiers.items():
        assert t["peak_rss_mb"] <= t["rss_ceiling_mb"], (
            f"{name} tier peaked at {t['peak_rss_mb']:.0f} MB RSS, over the "
            f"{t['rss_ceiling_mb']} MB ceiling"
        )

    assert BASELINE_PATH.is_file(), (
        f"missing committed baseline {BASELINE_PATH}; create it with "
        "`PYTHONPATH=src python benchmarks/test_scale_sweep.py --rebaseline`"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    for name, base in baseline["fast_per_calib"].items():
        got = tiers[name]["fast_per_calib"]
        assert got <= base * REGRESSION_FACTOR, (
            f"{name} fast path regressed: {got:.2f} calibration units vs "
            f"baseline {base:.2f} (gate: {REGRESSION_FACTOR:.1f}x). If "
            "intentional, rebaseline with `PYTHONPATH=src python "
            "benchmarks/test_scale_sweep.py --rebaseline`"
        )


@pytest.mark.skipif(
    not RUN_100K, reason="100k tier needs ~64 GB RAM; set REPRO_SCALE_100K=1"
)
def test_scale_100k_under_memory_ceiling():
    record = measure_100k()
    _emit_scale({"100k": record})
    assert record["peak_rss_mb"] <= record["rss_ceiling_mb"], (
        f"100k tier peaked at {record['peak_rss_mb']:.0f} MB RSS, over the "
        f"{record['rss_ceiling_mb']} MB ceiling"
    )
    # A full dense table really was resident — the probe means something.
    assert record["table_gb"] >= 40.0
    assert record["peak_rss_mb"] >= record["table_gb"] * 1e3 / 1.048576 * 0.95


def _rebaseline() -> None:
    tiers = {name: measure_tier(name) for name in SMOKE_TIERS}
    _emit_scale(tiers)
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "fast_per_calib": {
                    name: t["fast_per_calib"] for name, t in tiers.items()
                },
                "note": "fast-path route time divided by the calibration "
                "primitive; gate allows 1.3x",
            },
            indent=1,
        )
        + "\n"
    )
    print(f"baseline written to {BASELINE_PATH}")
    print(json.dumps(tiers, indent=1))


if __name__ == "__main__":
    import sys

    if "--rebaseline" in sys.argv:
        _rebaseline()
    else:
        test_scale_sweep_smoke()
        if RUN_100K:
            test_scale_100k_under_memory_ceiling()
        print(SCALE_JSON.read_text())
