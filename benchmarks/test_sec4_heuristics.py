"""§IV heuristic study: virtual lanes by cycle-break heuristic.

Paper setup: random topologies with 64 switches, 1024 endpoints and 128
inter-switch links. Result: weakest-edge needs 3-5 layers, the
pseudo-random first-edge 4-8, strongest-edge 4-16. We reproduce the
ordering (weakest <= first <= strongest on average) on a proportionally
scaled family.
"""

import numpy as np
from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import DFSSSPEngine, HEURISTICS
from repro.utils.reporting import Table

if FULL:
    SWITCHES, TERMS, LINKS, TRIALS = 64, 16, 128, 10
else:
    SWITCHES, TERMS, LINKS, TRIALS = 20, 4, 40, 6

MAX_LAYERS = 16


def _experiment():
    table = Table(
        ["heuristic", "min VLs", "avg VLs", "max VLs"],
        title=(
            f"§IV heuristics — {SWITCHES} switches, {SWITCHES * TERMS} endpoints, "
            f"{LINKS} links, {TRIALS} seeds"
        ),
        precision=2,
    )
    data = {}
    for heuristic in ("weakest", "first", "strongest"):
        needed = []
        for seed in range(TRIALS):
            fabric = topologies.random_topology(
                SWITCHES, LINKS, TERMS, radix=None, seed=seed + 101
            )
            result = DFSSSPEngine(
                max_layers=MAX_LAYERS, heuristic=heuristic, balance=False
            ).route(fabric)
            needed.append(result.stats["layers_needed"])
        table.add_row([heuristic, min(needed), float(np.mean(needed)), max(needed)])
        data[heuristic] = needed
    return table, data


def test_sec4_heuristics(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("sec4_heuristics", table.render(), table=table)
    avg = {h: float(np.mean(v)) for h, v in data.items()}
    # Paper ordering: weakest is the best heuristic...
    assert avg["weakest"] <= avg["first"] + 1e-9
    assert avg["weakest"] <= avg["strongest"] + 1e-9
    # ... and every run fits the IB spec budget of 16 lanes.
    for needed in data.values():
        assert max(needed) <= MAX_LAYERS
