"""§IV: offline vs online cycle breaking — the runtime argument.

The paper reports ~170 s offline vs ~2 h online for a 4096-node fabric:
the offline algorithm performs one resumable cycle search per layer,
while the online one pays a cycle check per path. We measure both on the
same SSSP path set and assert (a) identical layer requirements here and
(b) offline is faster once the fabric is non-trivial.
"""

from conftest import FULL, emit, run_once

from repro import topologies
from repro.core import SSSPEngine, assign_layers_offline, assign_layers_online
from repro.routing import extract_paths
from repro.utils.reporting import Table
from repro.utils.timing import Timer

SIZES = ((16, 36, 4), (24, 60, 6), (32, 88, 8)) if not FULL else (
    (32, 88, 8),
    (64, 180, 16),
    (96, 280, 16),
)


def _experiment():
    table = Table(
        ["switches", "endpoints", "offline [s]", "online [s]", "online/offline", "VLs"],
        title="§IV — offline vs online layer assignment (same SSSP paths)",
        precision=3,
    )
    data = []
    for switches, links, terms in SIZES:
        fabric = topologies.random_topology(switches, links, terms, radix=None, seed=5)
        paths = extract_paths(SSSPEngine().route(fabric).tables)
        t_off, t_on = Timer(), Timer()
        with t_off:
            off = assign_layers_offline(paths, max_layers=16, balance=False)
        with t_on:
            on = assign_layers_online(paths, max_layers=16)
        table.add_row(
            [
                switches,
                fabric.num_terminals,
                t_off.elapsed,
                t_on.elapsed,
                t_on.elapsed / t_off.elapsed,
                off.layers_needed,
            ]
        )
        data.append((fabric, off, on, t_off.elapsed, t_on.elapsed))
    return table, data


def test_sec4_offline_vs_online(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("sec4_offline_vs_online", table.render(), table=table)
    for fabric, off, on, t_off, t_on in data:
        # Both produce valid assignments with the same layer count here.
        assert off.layers_needed <= on.layers_needed + 1
    # On the largest instance the offline algorithm must win the race
    # (the paper's scalability claim).
    _fabric, _off, _on, t_off, t_on = data[-1]
    assert t_off < t_on
