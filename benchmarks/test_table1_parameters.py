"""Table I: the topology-generator parameter sets.

Regenerates the table (endpoint count -> XGFT / Kautz / k-ary n-tree
parameters) with the *actual* endpoint and switch counts our generators
produce, and asserts the structural constraints the paper states: 36-port
switches suffice for every instance.
"""

from conftest import SWEEP_SIZES, emit, run_once

from repro import topologies
from repro.network.topologies.tables import KAUTZ_PARAMS, KTREE_PARAMS, XGFT_PARAMS
from repro.utils.reporting import Table


def _experiment():
    table = Table(
        [
            "nominal",
            "XGFT(h;m;w)",
            "xgft hosts",
            "Kautz(b,n)",
            "kautz hosts",
            "k-ary n-tree",
            "ktree hosts",
        ],
        title="Table I — generator parameters and realised endpoint counts",
    )
    rows = {}
    for nominal in SWEEP_SIZES:
        h, ms, ws = XGFT_PARAMS[nominal]
        b, n = KAUTZ_PARAMS[nominal]
        k, kn = KTREE_PARAMS[nominal]
        xg = topologies.build_xgft(nominal)
        kz = topologies.build_kautz(nominal)
        kt = topologies.build_ktree(nominal)
        table.add_row(
            [
                nominal,
                f"({h};{','.join(map(str, ms))};{','.join(map(str, ws))})",
                xg.num_terminals,
                f"({b},{n})",
                kz.num_terminals,
                f"{k}-ary {kn}-tree",
                kt.num_terminals,
            ]
        )
        rows[nominal] = (xg, kz, kt)
    return table, rows


def test_table1_parameters(benchmark):
    table, rows = run_once(benchmark, _experiment)
    emit("table1_parameters", table.render(), table=table)
    for nominal, (xg, kz, kt) in rows.items():
        assert xg.num_terminals == nominal  # XGFT params hit nominal exactly
        assert kz.num_terminals == nominal  # Kautz attaches exactly nominal
        assert abs(kt.num_terminals - nominal) / nominal <= 0.25
        for fab in (xg, kz, kt):
            for s in fab.switches:
                assert fab.degree(int(s)) <= 36, "36-port constraint violated"
