"""Table II: NAS benchmark improvements at the largest core count.

Paper (1024 cores on Deimos): improvements of DFSSSP over MinHop between
30% (CG/SP) and 95% (BT), across BT / CG / FT / MG / SP (LU similar,
omitted there; we include it). We regenerate the table at the largest
core count each kernel supports on the scaled fabric and assert the
qualitative statement: every kernel improves or ties, none regresses.
"""

from conftest import FULL, emit, run_once
from nas_common import _deimos_setup

from repro.apps import core_allocation, improvement_percent, predict_kernel
from repro.utils.reporting import Table

# kernel -> core count (paper: 1024 everywhere; CI: largest valid small count)
KERNEL_CORES = (
    {"bt": 1024, "cg": 1024, "ft": 1024, "mg": 1024, "sp": 1024, "lu": 1024}
    if FULL
    else {"bt": 100, "cg": 128, "ft": 128, "mg": 100, "sp": 100, "lu": 100}
)


def _experiment():
    fabric, tables = _deimos_setup()
    table = Table(
        ["kernel", "cores", "minhop [Gflop/s]", "dfsssp [Gflop/s]", "improvement %"],
        title="Table II — NAS kernels at the largest core count (model)",
        precision=2,
    )
    data = {}
    for kernel, cores in sorted(KERNEL_CORES.items()):
        alloc = core_allocation(fabric, cores, seed=cores)
        mh = predict_kernel(tables["minhop"], kernel, cores, allocation=alloc)
        df = predict_kernel(tables["dfsssp"], kernel, cores, allocation=alloc)
        gain = improvement_percent(mh, df)
        table.add_row([kernel.upper(), cores, mh.gflops, df.gflops, gain])
        data[kernel] = (mh, df, gain)
    return table, data


def test_table2_nas_1024(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("table2_nas_1024", table.render(), table=table)
    for kernel, (mh, df, gain) in data.items():
        assert gain >= -2.0, f"{kernel} regressed {gain:.1f}%"
        assert mh.gflops > 0 and df.gflops > 0
    # The all-to-all kernel is the most congestion-sensitive family
    # member: its gain is at least that of the stencil kernels' minimum.
    assert data["ft"][2] >= min(data[k][2] for k in ("bt", "sp", "lu")) - 1.0
