"""Theorem 1 as an executable experiment.

Runs the k-colorability -> APP transformation on a family of graphs with
known chromatic numbers and checks, via the exact APP solver, that the
minimum cover equals the chromatic number every time — the two directions
of the proof, executed rather than argued.
"""

import itertools

from conftest import emit, run_once

from repro.core import chromatic_number, coloring_to_app, minimum_cover
from repro.utils.reporting import Table


def _graphs():
    yield "K3 (triangle)", ["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")]
    yield "C5 (odd cycle)", list("abcde"), [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")
    ]
    yield "C6 (even cycle)", list("abcdef"), [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "a")
    ]
    yield "K4", list("abcd"), list(itertools.combinations("abcd", 2))
    yield "star S4", list("cxyz"), [("c", "x"), ("c", "y"), ("c", "z")]
    yield "P4 (path)", list("abcd"), [("a", "b"), ("b", "c"), ("c", "d")]
    yield "empty E4", list("abcd"), []
    yield "bowtie", list("abcde"), [
        ("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "e"), ("c", "e")
    ]


def _experiment():
    table = Table(
        ["graph", "chi(G)", "APP min cover", "paths", "labels"],
        title="Theorem 1 — chromatic number vs exact APP minimum",
    )
    data = []
    for name, nodes, edges in _graphs():
        chi = chromatic_number(nodes, edges)
        instance, _order = coloring_to_app(nodes, edges)
        k, witness = minimum_cover(instance)
        labels = len({l for p in instance.paths for l in p.labels})
        table.add_row([name, chi, k, len(instance), labels])
        data.append((name, chi, k, instance, witness))
    return table, data


def test_thm1_reduction(benchmark):
    table, data = run_once(benchmark, _experiment)
    emit("thm1_reduction", table.render(), table=table)
    for name, chi, k, instance, witness in data:
        assert k == chi, f"{name}: APP minimum {k} != chromatic number {chi}"
        assert instance.is_cover(witness)
