#!/usr/bin/env python3
"""Compare every routing engine on a real-system lookalike (Figure 4 style).

Routes a scaled Ranger (TACC) fabric — dual-homed chassis into two
asymmetric core Clos fabrics, the system where the paper measured its
largest DFSSSP gain (63%) — with all seven engines, reporting:

* effective bisection bandwidth (ORCS-style),
* virtual lanes needed for deadlock-freedom,
* path length statistics and link-utilization balance.

Run:  python examples/cluster_comparison.py [system] [scale]
      e.g. python examples/cluster_comparison.py tsubame 0.1
"""

import sys

from repro import PAPER_ENGINES, extract_paths, make_engine, topologies
from repro.analysis import path_stats, routing_utilization
from repro.exceptions import ReproError
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "ranger"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.06
    fabric = topologies.cluster(system, scale=scale)
    print(f"{system} lookalike at scale {scale}: {fabric}\n")

    table = Table(
        ["engine", "eBB", "VLs", "mean hops", "max link load", "util gini"],
        title=f"routing comparison on {system}",
        precision=3,
    )
    for name in PAPER_ENGINES:
        try:
            result = make_engine(name).route(fabric)
        except ReproError as err:
            table.add_row([name, None, None, None, None, None])
            print(f"note: {name} failed ({type(err).__name__}: {err})")
            continue
        paths = extract_paths(result.tables)
        sim = CongestionSimulator(result.tables, paths)
        ebb = sim.effective_bisection_bandwidth(num_patterns=40, seed=3)
        stats = path_stats(result.tables, paths)
        util = routing_utilization(result.tables, paths)
        table.add_row(
            [
                name,
                ebb.ebb,
                result.stats.get("layers_needed", result.num_layers),
                stats.mean_hops,
                util.maximum,
                util.gini,
            ]
        )
    print()
    print(table.render())
    print("Reading guide: DFSSSP should post the top eBB with a small VL count;")
    print("Up*/Down* pays in hops and hot links; missing rows mirror the paper's")
    print("'routing failed' bars (DOR and ftree need structure this fabric lacks).")


if __name__ == "__main__":
    main()
