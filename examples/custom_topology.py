#!/usr/bin/env python3
"""Describe your own fabric, route it, and ship the forwarding state.

Builds the paper's Figure 11 (Deimos) by hand with :class:`FabricBuilder`
— three director switches in a chain with thin trunks — then:

* routes it with DFSSSP and prints per-path virtual-lane usage,
* saves the fabric to JSON and the ORCS-style edge list,
* reloads and re-routes to demonstrate reproducibility.

Run:  python examples/custom_topology.py
"""

import tempfile
from pathlib import Path

from repro import DFSSSPEngine, FabricBuilder, extract_paths, verify_deadlock_free
from repro.network import load_fabric, save_edge_list, save_fabric


def build_mini_deimos():
    """Three switches in a chain, 2-cable trunks, 4 hosts each."""
    b = FabricBuilder()
    cores = [b.add_switch(name=f"core{i}", radix=288) for i in range(3)]
    b.add_link(cores[0], cores[1], count=2)
    b.add_link(cores[1], cores[2], count=2)
    for ci, core in enumerate(cores):
        for j in range(4):
            host = b.add_terminal(name=f"node{ci}{j}")
            b.add_link(host, core)
    b.metadata = {"family": "custom", "description": "mini Deimos (paper Fig. 11)"}
    return b.build()


def main() -> None:
    fabric = build_mini_deimos()
    print(f"built: {fabric}")

    result = DFSSSPEngine(max_layers=4).route(fabric)
    paths = extract_paths(result.tables)
    report = verify_deadlock_free(result.layered, paths)
    print(f"deadlock-free: {report.deadlock_free}, "
          f"lanes needed: {result.stats['layers_needed']}, "
          f"layer histogram: {result.layered.layer_histogram().tolist()}")

    # A concrete route: first node on core0 to first node on core2.
    src = int(fabric.terminals[0])
    dst = int(fabric.terminals[-1])
    hops = result.tables.path_channels(src, dst)
    names = [fabric.names[int(fabric.channels.src[c])] for c in hops]
    print(f"route {fabric.names[src]} -> {fabric.names[dst]}: "
          + " -> ".join(names + [fabric.names[dst]])
          + f"  (virtual lane {result.layered.layer_for(src, dst)})")

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "deimos.json"
        edges_path = Path(tmp) / "deimos.edges"
        save_fabric(fabric, json_path)
        save_edge_list(fabric, edges_path)
        print(f"saved {json_path.name} ({json_path.stat().st_size} bytes) "
              f"and {edges_path.name} ({edges_path.stat().st_size} bytes)")

        reloaded = load_fabric(json_path)
        again = DFSSSPEngine(max_layers=4).route(reloaded)
        identical = (again.tables.next_channel == result.tables.next_channel).all()
        print(f"reload + re-route gives identical tables: {bool(identical)}")


if __name__ == "__main__":
    main()
