#!/usr/bin/env python3
"""The paper's Section III deadlock, reproduced packet by packet.

A 5-switch ring, every node sending to the node two hops clockwise —
SSSP routes everything clockwise, the per-hop buffers fill, and the
network wedges into a circular wait (the paper's Figure 2). DFSSSP
splits the dependency cycle over two virtual lanes and the same traffic
drains.

The script shows the channel-dependency-graph view (the *prediction*)
and the flit-level simulation (the *observation*) side by side.

Run:  python examples/deadlock_demo.py
"""

from repro import (
    DFSSSPEngine,
    LayeredRouting,
    SSSPEngine,
    extract_paths,
    topologies,
    verify_deadlock_free,
)
from repro.simulator import FlitSimulator, shift_pattern


def describe(name, result, fabric, pattern):
    paths = extract_paths(result.tables)
    layered = result.layered or LayeredRouting.single_layer(result.tables)
    report = verify_deadlock_free(layered, paths)

    print(f"--- {name} ---")
    if report.deadlock_free:
        print("CDG analysis : every virtual layer is acyclic -> deadlock-free")
    else:
        cycle = report.cycles[0]
        pretty = " -> ".join(str(a) for a, _ in cycle) + f" -> {cycle[0][0]}"
        print(f"CDG analysis : cycle through channels {pretty}")

    sim = FlitSimulator(result.tables, layered=result.layered, buffer_depth=1)
    out = sim.run(pattern, packets_per_flow=8)
    print(f"flit-level   : {out.status} after {out.cycles} cycles "
          f"({out.delivered} delivered, {out.in_flight} stuck)")
    if out.deadlocked:
        wait = " -> ".join(f"ch{c}/vl{v}" for c, v in out.waitfor_cycle)
        print(f"               circular wait: {wait}")
    print()
    return out


def main() -> None:
    fabric = topologies.ring(5, terminals_per_switch=1)
    pattern = shift_pattern(fabric, 2)  # everyone sends 2 hops clockwise
    print(f"fabric : {fabric}")
    print(f"traffic: {pattern}\n")

    sssp = describe("SSSP (1 virtual lane)", SSSPEngine().route(fabric), fabric, pattern)
    dfsssp = describe("DFSSSP (2 lanes needed)", DFSSSPEngine().route(fabric), fabric, pattern)

    assert sssp.deadlocked and dfsssp.status == "delivered"
    print("Conclusion: identical routes, identical traffic — the virtual-lane")
    print("assignment alone turns a guaranteed deadlock into full delivery.")


if __name__ == "__main__":
    main()
