#!/usr/bin/env python3
"""Failure injection: why arbitrary-topology routing matters.

The paper's introduction argues that real systems are rarely the clean
tori/fat trees their specialised routings assume — links die and systems
grow. This script takes a healthy 4x4 torus, kills cables one by one,
and shows that:

* DOR refuses the degraded fabric immediately,
* the fat-tree engine never applied in the first place,
* DFSSSP keeps producing verified deadlock-free routes, paying only a
  gradual bandwidth decline.

Run:  python examples/fault_tolerance.py
"""

from repro import DFSSSPEngine, DOREngine, extract_paths, topologies, verify_deadlock_free
from repro.exceptions import ReproError
from repro.network import fail_links
from repro.simulator import CongestionSimulator
from repro.utils.reporting import Table


def try_engine(engine, fabric):
    try:
        result = engine.route(fabric)
    except ReproError as err:
        return None, f"failed ({type(err).__name__})"
    paths = extract_paths(result.tables)
    if result.layered is not None:
        assert verify_deadlock_free(result.layered, paths).deadlock_free
    ebb = CongestionSimulator(result.tables, paths).effective_bisection_bandwidth(
        num_patterns=30, seed=1
    )
    return ebb.ebb, "ok"


def main() -> None:
    healthy = topologies.torus((4, 4), terminals_per_switch=2)
    print(f"healthy fabric: {healthy}\n")

    table = Table(
        ["failed cables", "dor eBB", "dor status", "dfsssp eBB", "dfsssp VLs"],
        title="torus degradation sweep",
        precision=3,
    )
    fabric = healthy
    for failures in range(0, 5):
        if failures:
            fabric = fail_links(healthy, failures, seed=failures).fabric
        dor_ebb, dor_status = try_engine(DOREngine(), fabric)
        dfsssp = DFSSSPEngine().route(fabric)
        paths = extract_paths(dfsssp.tables)
        assert verify_deadlock_free(dfsssp.layered, paths).deadlock_free
        ebb = CongestionSimulator(dfsssp.tables, paths).effective_bisection_bandwidth(
            num_patterns=30, seed=1
        )
        table.add_row(
            [failures, dor_ebb, dor_status, ebb.ebb, dfsssp.stats["layers_needed"]]
        )
    print(table.render())
    print("DOR survives only the pristine grid; DFSSSP re-balances around every")
    print("failure and stays provably deadlock-free (acyclic layer CDGs).")


if __name__ == "__main__":
    main()
