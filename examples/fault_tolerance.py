#!/usr/bin/env python3
"""Fail-in-place resilience: route, degrade, repair, verify — forever.

The paper's introduction argues that real systems are rarely the clean
tori/fat trees their specialised routings assume — links die and systems
grow. This script shows both halves of that argument on a 4x4 torus:

* DOR refuses the fabric the moment a single cable dies;
* DFSSSP rides out a whole seeded fault storm (link-down, switch-down,
  link-up) via ``repro.resilience``: each fault is repaired
  *incrementally* — only the destinations whose forwarding entries
  crossed the dead channels are re-routed, the untouched paths keep
  their virtual layers, and deadlock-freedom is re-verified after every
  event.

Run:  python examples/fault_tolerance.py
"""

from repro import DFSSSPEngine, DOREngine, topologies
from repro.exceptions import ReproError
from repro.network import fail_links
from repro.resilience import ChaosRunner
from repro.utils.reporting import Table


def main() -> None:
    healthy = topologies.torus((4, 4), terminals_per_switch=2)
    print(f"healthy fabric: {healthy}\n")

    # -- the specialised baseline dies at the first fault ---------------
    degraded = fail_links(healthy, 1, seed=1).fabric
    try:
        DOREngine().route(degraded)
        dor_status = "ok"
    except ReproError as err:
        dor_status = f"failed ({type(err).__name__})"
    print(f"DOR after one dead cable: {dor_status}")

    # -- DFSSSP survives a seeded fault storm ---------------------------
    report = ChaosRunner(DFSSSPEngine()).run(
        healthy, num_events=25, seed=3, p_switch_down=0.2, p_link_up=0.2
    )
    summary = report.summary()

    table = Table(
        ["event", "fault", "action", "dests repaired", "VLs", "deadlock-free"],
        title="chaos soak: dfsssp on the degrading torus",
    )
    for r in report.records[:10]:
        table.add_row(
            [
                r.index,
                r.detail,
                r.action,
                f"{r.destinations_repaired}/{r.destinations_total}"
                if r.destinations_repaired is not None
                else "-",
                r.layers_used,
                r.deadlock_free,
            ]
        )
    print()
    print(table.render())
    if len(report.records) > 10:
        print(f"... {len(report.records) - 10} more events elided ...")

    print()
    print(f"survived: {summary['survived']}")
    print(
        f"incremental repairs: {summary['incremental_repairs']}, "
        f"full reroutes: {summary['full_reroutes']} (link-up rebuilds), "
        f"escalations: {summary['escalations']}"
    )
    frac = summary["repair_fraction_mean"]
    print(
        f"mean share of destinations recomputed per repair: {frac:.1%} — "
        "the rest of the forwarding state was spliced over untouched"
    )
    print("every event was independently re-verified: all pairs reachable,")
    print("all layer CDGs acyclic. DOR never got past the first cable.")


if __name__ == "__main__":
    main()
