#!/usr/bin/env python3
"""OpenSM interoperability: from a live-subnet dump to forwarding tables.

The workflow an InfiniBand operator would actually use:

1. ``ibnetdiscover > fabric.topo`` on the real cluster (here we use a
   bundled sample of a small two-switch subnet);
2. parse it into the fabric model;
3. route with DFSSSP and with the subnet's presumable default (MinHop);
4. export OpenSM-style artifacts — the linear forwarding tables
   (``ibroute`` format), the per-path SL assignment, and an
   ``ibtracert``-style route — ready to diff against the live subnet.

Run:  python examples/opensm_interop.py
"""

from repro import DFSSSPEngine, extract_paths, verify_deadlock_free
from repro.network import export_lft, export_route, export_sl_assignment, parse_ibnetdiscover

SAMPLE = """
# sample ibnetdiscover output: 2 ISR9024 switches, 4 nodes, 2-cable trunk
Switch  24 "S-0002c902400c8850"  # "sw-rack1 ISR9024D" base port 0 lid 6 lmc 0
[1]  "H-0002c9020020e78c"[1](e78d)  # "node-01 HCA-1" lid 4 4xSDR
[2]  "H-0002c9020020e790"[1](e791)  # "node-02 HCA-1" lid 9 4xSDR
[13]  "S-0002c902400c8851"[13]  # "sw-rack2 ISR9024D" lid 7 4xDDR
[14]  "S-0002c902400c8851"[14]  # "sw-rack2 ISR9024D" lid 7 4xDDR

Switch  24 "S-0002c902400c8851"  # "sw-rack2 ISR9024D" base port 0 lid 7 lmc 0
[3]  "H-0002c9020020e794"[1](e795)  # "node-03 HCA-1" lid 12 4xSDR
[4]  "H-0002c9020020e798"[1](e799)  # "node-04 HCA-1" lid 14 4xSDR
[13]  "S-0002c902400c8850"[13]  # "sw-rack1 ISR9024D" lid 6 4xDDR
[14]  "S-0002c902400c8850"[14]  # "sw-rack1 ISR9024D" lid 6 4xDDR

Ca  2 "H-0002c9020020e78c"  # "node-01 HCA-1"
[1](e78d)  "S-0002c902400c8850"[1]  # lid 4

Ca  2 "H-0002c9020020e790"  # "node-02 HCA-1"
[1](e791)  "S-0002c902400c8850"[2]  # lid 9

Ca  2 "H-0002c9020020e794"  # "node-03 HCA-1"
[1](e795)  "S-0002c902400c8851"[3]  # lid 12

Ca  2 "H-0002c9020020e798"  # "node-04 HCA-1"
[1](e799)  "S-0002c902400c8851"[4]  # lid 14
"""


def main() -> None:
    fabric = parse_ibnetdiscover(SAMPLE)
    print(f"parsed subnet: {fabric} (trunked inter-switch cables: "
          f"{len(fabric.channels_between(0, 1))})\n")

    result = DFSSSPEngine(max_layers=8).route(fabric)
    paths = extract_paths(result.tables)
    assert verify_deadlock_free(result.layered, paths).deadlock_free
    print(f"DFSSSP routed it deadlock-free with "
          f"{result.stats['layers_needed']} lane(s)\n")

    print(export_lft(result.tables))
    print(export_sl_assignment(result.layered))

    src = int(fabric.terminals[0])
    dst = int(fabric.terminals[-1])
    print(export_route(result.tables, src, dst))


if __name__ == "__main__":
    main()
