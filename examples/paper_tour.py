#!/usr/bin/env python3
"""The whole paper in one sitting — a guided tour of every claim.

Runs miniature versions of each of the paper's arguments in order,
printing what the paper asserts and what this reproduction measures:

  1. §II   SSSP balances globally and stays hop-minimal.
  2. §III  SSSP can deadlock (the Figure 2 ring, packet by packet).
  3. §III-A/Thm. 1  Lane minimisation is graph coloring in disguise.
  4. §IV   DFSSSP breaks every cycle with few lanes (weakest-edge wins).
  5. §V    Bandwidth: DFSSSP vs the OpenSM engines on an irregular fabric.
  6. §VI   Application view: all-to-all completion times.

Run:  python examples/paper_tour.py   (~30 s)
"""

from repro import topologies
from repro.analysis import path_stats, routing_utilization
from repro.apps import alltoall_time
from repro.core import (
    DFSSSPEngine,
    SSSPEngine,
    chromatic_number,
    coloring_to_app,
    minimum_cover,
)
from repro.deadlock import verify_deadlock_free
from repro.exceptions import ReproError
from repro.routing import PAPER_ENGINES, extract_paths, make_engine
from repro.simulator import CongestionSimulator, FlitSimulator, shift_pattern


def section(title):
    print()
    print(f"=== {title} ===")


def main() -> None:
    section("1. SSSP: global balance, minimal hops (paper §II)")
    fabric = topologies.ranger(scale=0.05)
    sssp = SSSPEngine().route(fabric)
    minhop = make_engine("minhop").route(fabric)
    for name, result in (("minhop", minhop), ("sssp", sssp)):
        stats = path_stats(result.tables)
        util = routing_utilization(result.tables)
        print(
            f"  {name:7s} mean hops={stats.mean_hops:.2f} "
            f"minimal={stats.minimal}  max link load={util.maximum}"
        )
    assert path_stats(sssp.tables).minimal

    section("2. The ring deadlock (paper §III, Figure 2)")
    ring = topologies.ring(5, 1)
    pattern = shift_pattern(ring, 2)
    wedged = FlitSimulator(SSSPEngine().route(ring).tables, buffer_depth=1).run(
        pattern, packets_per_flow=8
    )
    df_ring = DFSSSPEngine().route(ring)
    drained = FlitSimulator(
        df_ring.tables, layered=df_ring.layered, buffer_depth=1
    ).run(pattern, packets_per_flow=8)
    print(f"  SSSP   : {wedged.status} (circular wait of {len(wedged.waitfor_cycle)} buffers)")
    print(f"  DFSSSP : {drained.status} ({drained.delivered} packets)")

    section("3. Lane minimisation is NP-complete (Theorem 1)")
    nodes, edges = ["u", "v", "w"], [("u", "v"), ("v", "w"), ("u", "w")]
    instance, _ = coloring_to_app(nodes, edges)
    k, _witness = minimum_cover(instance)
    print(f"  triangle graph: chromatic number={chromatic_number(nodes, edges)}, "
          f"APP minimum cover={k}  (equal, as the reduction demands)")

    section("4. DFSSSP lane demand (paper §IV heuristics)")
    irregular = topologies.random_topology(16, 36, 3, seed=11)
    for heuristic in ("weakest", "first", "strongest"):
        r = DFSSSPEngine(heuristic=heuristic, balance=False, max_layers=16).route(irregular)
        print(f"  {heuristic:9s}: {r.stats['layers_needed']} lanes")

    section("5. Effective bisection bandwidth (paper §V, Fig. 4 style)")
    for name in PAPER_ENGINES:
        try:
            result = make_engine(name).route(fabric)
            paths = extract_paths(result.tables)
            if result.layered is not None:
                assert verify_deadlock_free(result.layered, paths).deadlock_free
            ebb = CongestionSimulator(result.tables, paths).effective_bisection_bandwidth(
                20, seed=5
            )
            print(f"  {name:7s} eBB = {ebb.ebb:.3f}")
        except ReproError as err:
            print(f"  {name:7s} failed ({type(err).__name__}) — the paper's missing bar")

    section("6. Application view: all-to-all (paper §VI, Fig. 13 style)")
    participants = [int(t) for t in fabric.terminals[:: max(1, fabric.num_terminals // 32)]][:32]
    for name in ("minhop", "dfsssp"):
        tables = make_engine(name).route(fabric).tables
        t = alltoall_time(tables, participants, floats_per_dest=4096)
        print(f"  {name:7s} 32-rank all-to-all @4096 floats: {t.total_ms:.2f} ms")

    print()
    print("Tour complete — see benchmarks/ for the full-figure harnesses and")
    print("EXPERIMENTS.md for the paper-vs-measured record.")


if __name__ == "__main__":
    main()
