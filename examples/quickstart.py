#!/usr/bin/env python3
"""Quickstart: route an irregular fabric deadlock-free and measure it.

The 60-second tour of the library:

1. generate an irregular network (the kind the paper targets),
2. route it with DFSSSP,
3. verify deadlock-freedom independently (Dally/Seitz acyclicity),
4. estimate the effective bisection bandwidth against MinHop.

Run:  python examples/quickstart.py
"""

from repro import DFSSSPEngine, MinHopEngine, extract_paths, topologies, verify_deadlock_free
from repro.simulator import CongestionSimulator

def main() -> None:
    # 1. An irregular fabric: 16 switches, 36 random cables, 64 endpoints.
    fabric = topologies.random_topology(
        num_switches=16, num_links=36, terminals_per_switch=4, seed=2011
    )
    print(f"fabric: {fabric}")

    # 2. DFSSSP = globally balanced SSSP routes + virtual-lane assignment.
    result = DFSSSPEngine(max_layers=8).route(fabric)
    print(
        f"routed: {result.stats['layers_needed']} virtual lane(s) needed, "
        f"{result.stats['cycles_broken']} dependency cycle(s) broken"
    )

    # 3. Independent deadlock check: rebuild every layer's channel
    #    dependency graph and search for cycles.
    paths = extract_paths(result.tables)
    report = verify_deadlock_free(result.layered, paths)
    print(f"deadlock-free: {report.deadlock_free} (edges/layer: {report.edges_per_layer})")
    assert report.deadlock_free

    # 4. Effective bisection bandwidth, DFSSSP vs MinHop (ORCS-style).
    for engine_result, name in ((result, "dfsssp"), (MinHopEngine().route(fabric), "minhop")):
        sim = CongestionSimulator(engine_result.tables)
        ebb = sim.effective_bisection_bandwidth(num_patterns=50, seed=7)
        print(f"eBB[{name:7s}] = {ebb.ebb:.3f} of link speed (min {ebb.minimum:.3f})")


if __name__ == "__main__":
    main()
