"""Legacy setup shim.

Fully-offline environments sometimes lack the `wheel` package, which
PEP-517 editable installs require; `python setup.py develop` keeps
working there. All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
