"""repro — a full reproduction of *Deadlock-Free Oblivious Routing for
Arbitrary Topologies* (Domke, Hoefler, Nagel; IPDPS 2011).

The package implements the paper's DFSSSP routing (globally balanced
single-source-shortest-path routing made deadlock-free through virtual
layers), every baseline it compares against (MinHop, Up*/Down*, DOR,
fat-tree, LASH), the acyclic-path-partitioning formalism with its
NP-completeness reduction, an ORCS-equivalent effective-bisection-
bandwidth simulator, a flit-level deadlock demonstrator, and benchmark
harnesses regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import topologies, DFSSSPEngine, verify_deadlock_free, extract_paths

    fabric = topologies.random_topology(16, 32, terminals_per_switch=4, seed=7)
    result = DFSSSPEngine().route(fabric)
    report = verify_deadlock_free(result.layered, extract_paths(result.tables))
    assert report.deadlock_free

Top-level names resolve lazily (PEP 562): importing :mod:`repro` alone
pulls in no numpy and none of the heavy subpackages. This keeps
``python -m repro.deadlock.checker`` — the standalone certificate
checker — genuinely dependency-free while preserving the flat
``from repro import ...`` API.
"""

__version__ = "1.0.0"

_EXPORTS = {
    "DFSSSPEngine": "repro.core",
    "SSSPEngine": "repro.core",
    "assign_layers_offline": "repro.core",
    "assign_layers_online": "repro.core",
    "verify_deadlock_free": "repro.deadlock",
    "CertificateError": "repro.exceptions",
    "DeadlockError": "repro.exceptions",
    "DisconnectedFabricError": "repro.exceptions",
    "FabricError": "repro.exceptions",
    "InsufficientLayersError": "repro.exceptions",
    "RepairError": "repro.exceptions",
    "ReproError": "repro.exceptions",
    "RoutingError": "repro.exceptions",
    "SimulationError": "repro.exceptions",
    "UnsupportedTopologyError": "repro.exceptions",
    "Fabric": "repro.network",
    "FabricBuilder": "repro.network",
    "topologies": "repro.network.topologies",
    "ChaosRunner": "repro.resilience",
    "FaultInjector": "repro.resilience",
    "repair_routing": "repro.resilience",
    "DOREngine": "repro.routing",
    "ENGINES": "repro.routing",
    "FatTreeEngine": "repro.routing",
    "LASHEngine": "repro.routing",
    "LayeredRouting": "repro.routing",
    "MinHopEngine": "repro.routing",
    "PAPER_ENGINES": "repro.routing",
    "RoutingResult": "repro.routing",
    "RoutingTables": "repro.routing",
    "UpDownEngine": "repro.routing",
    "extract_paths": "repro.routing",
    "make_engine": "repro.routing",
}


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = module if target.endswith("." + name) else getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [*sorted(_EXPORTS), "__version__"]
