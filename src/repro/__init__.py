"""repro — a full reproduction of *Deadlock-Free Oblivious Routing for
Arbitrary Topologies* (Domke, Hoefler, Nagel; IPDPS 2011).

The package implements the paper's DFSSSP routing (globally balanced
single-source-shortest-path routing made deadlock-free through virtual
layers), every baseline it compares against (MinHop, Up*/Down*, DOR,
fat-tree, LASH), the acyclic-path-partitioning formalism with its
NP-completeness reduction, an ORCS-equivalent effective-bisection-
bandwidth simulator, a flit-level deadlock demonstrator, and benchmark
harnesses regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import topologies, DFSSSPEngine, verify_deadlock_free, extract_paths

    fabric = topologies.random_topology(16, 32, terminals_per_switch=4, seed=7)
    result = DFSSSPEngine().route(fabric)
    report = verify_deadlock_free(result.layered, extract_paths(result.tables))
    assert report.deadlock_free
"""

from repro.core import (
    DFSSSPEngine,
    SSSPEngine,
    assign_layers_offline,
    assign_layers_online,
)
from repro.deadlock import verify_deadlock_free
from repro.exceptions import (
    DeadlockError,
    DisconnectedFabricError,
    FabricError,
    InsufficientLayersError,
    RepairError,
    ReproError,
    RoutingError,
    SimulationError,
    UnsupportedTopologyError,
)
from repro.network import Fabric, FabricBuilder
from repro.network import topologies
from repro.resilience import ChaosRunner, FaultInjector, repair_routing
from repro.routing import (
    DOREngine,
    ENGINES,
    FatTreeEngine,
    LASHEngine,
    LayeredRouting,
    MinHopEngine,
    PAPER_ENGINES,
    RoutingResult,
    RoutingTables,
    UpDownEngine,
    extract_paths,
    make_engine,
)

__version__ = "1.0.0"

__all__ = [
    "DFSSSPEngine",
    "SSSPEngine",
    "assign_layers_offline",
    "assign_layers_online",
    "verify_deadlock_free",
    "DeadlockError",
    "DisconnectedFabricError",
    "FabricError",
    "InsufficientLayersError",
    "RepairError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "UnsupportedTopologyError",
    "Fabric",
    "FabricBuilder",
    "topologies",
    "DOREngine",
    "ENGINES",
    "FatTreeEngine",
    "LASHEngine",
    "LayeredRouting",
    "MinHopEngine",
    "PAPER_ENGINES",
    "RoutingResult",
    "RoutingTables",
    "UpDownEngine",
    "extract_paths",
    "make_engine",
    "ChaosRunner",
    "FaultInjector",
    "repair_routing",
    "__version__",
]
