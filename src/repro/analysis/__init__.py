"""Static analysis of routings: path quality and link-utilization balance."""

from repro.analysis.adversarial import AdversarialResult, adversarial_permutation, worst_case_gap
from repro.analysis.bisection import BisectionEstimate, estimate_bisection, routing_efficiency
from repro.analysis.heatmap import hot_channels, switch_matrix, utilization_report
from repro.analysis.pathstats import PathStats, compare_mean_hops, path_stats
from repro.analysis.utilization import RoutingUtilization, routing_utilization

__all__ = [
    "hot_channels",
    "switch_matrix",
    "utilization_report",
    "AdversarialResult",
    "adversarial_permutation",
    "worst_case_gap",
    "BisectionEstimate",
    "estimate_bisection",
    "routing_efficiency",
    "PathStats",
    "compare_mean_hops",
    "path_stats",
    "RoutingUtilization",
    "routing_utilization",
]
