"""Adversarial traffic search: how bad can a permutation get?

Random bisections (the eBB estimator) measure *average* behaviour; the
worst-case permutation is the classic complementary metric for oblivious
routing (Valiant's lower bounds, ORCS's `worst` patterns). Finding the
true worst case is combinatorial, so we use a greedy adversary:

* destinations are visited in (seeded) random order;
* for each destination, the adversary assigns the unused source whose
  flow pushes the *currently hottest* channel highest (ties: the flow
  with the most total load along its path).

The resulting permutation's minimum flow bandwidth is a (tight-ish)
upper bound on the routing's worst-case throughput. Interestingly, a
better *average*-case oblivious routing is not automatically a better
worst-case one — on some fabrics the adversary hurts DFSSSP more than
Up*/Down* (the classic average/worst-case tension Valiant's randomised
routing was invented to break); :func:`worst_case_gap` quantifies the
spread per routing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet
from repro.simulator.congestion import CongestionSimulator
from repro.simulator.patterns import Pattern
from repro.utils.prng import make_rng


@dataclass(frozen=True)
class AdversarialResult:
    """Outcome of a greedy worst-case search."""

    pattern: Pattern
    worst_flow_bandwidth: float
    mean_flow_bandwidth: float
    max_channel_load: int


def _flow_channels_fast(sim: CongestionSimulator, src: int, dst: int) -> np.ndarray:
    fab = sim.fabric
    t_idx = int(fab.term_index[dst])
    inject = int(sim.tables.next_channel[src, t_idx])
    first = int(fab.channels.dst[inject])
    rest = sim.paths.path(t_idx * fab.num_switches + int(fab.switch_index[first]))
    out = np.empty(len(rest) + 1, dtype=np.int64)
    out[0] = inject
    out[1:] = rest
    return out


def adversarial_permutation(
    tables: RoutingTables,
    paths: PathSet | None = None,
    seed=None,
    restarts: int = 3,
) -> AdversarialResult:
    """Greedy search for a congestion-maximising permutation.

    Multiple restarts with different destination orders; the worst
    (lowest min-bandwidth) pattern wins.
    """
    if restarts < 1:
        raise SimulationError("restarts must be >= 1")
    sim = CongestionSimulator(tables, paths)
    fab = tables.fabric
    terms = [int(t) for t in fab.terminals]
    if len(terms) < 2:
        raise SimulationError("need at least 2 terminals")
    rng = make_rng(seed)

    best: AdversarialResult | None = None
    for _ in range(restarts):
        order = list(terms)
        rng.shuffle(order)
        load = np.zeros(fab.num_channels, dtype=np.int64)
        unused = set(terms)
        pattern: Pattern = []
        for dst in order:
            best_src, best_key = None, None
            for src in unused:
                if src == dst:
                    continue
                flow = _flow_channels_fast(sim, src, dst)
                on_path = load[flow]
                key = (int(on_path.max(initial=0)), int(on_path.sum()))
                if best_key is None or key > best_key:
                    best_src, best_key = src, key
            if best_src is None:
                continue  # only the destination itself is left
            unused.discard(best_src)
            flow = _flow_channels_fast(sim, best_src, dst)
            np.add.at(load, flow, 1)
            pattern.append((best_src, dst))
        result = sim.evaluate(pattern)
        candidate = AdversarialResult(
            pattern=pattern,
            worst_flow_bandwidth=result.min_bandwidth,
            mean_flow_bandwidth=result.mean_bandwidth,
            max_channel_load=int(result.channel_load.max()),
        )
        if best is None or candidate.worst_flow_bandwidth < best.worst_flow_bandwidth:
            best = candidate
    assert best is not None
    return best


def worst_case_gap(tables: RoutingTables, seed=None, num_random: int = 20) -> float:
    """Ratio of average (random-bisection) to adversarial worst-flow
    bandwidth — how much an adversary can hurt this routing."""
    sim = CongestionSimulator(tables)
    avg = sim.effective_bisection_bandwidth(num_random, seed=seed).ebb
    adv = adversarial_permutation(tables, seed=seed).worst_flow_bandwidth
    return avg / adv if adv > 0 else float("inf")
