"""Theoretical bisection bandwidth of a fabric.

The paper contrasts the *effective* bisection bandwidth (which includes
the routing) against the topology's idealized bisection. We compute the
bisection width as

    min over balanced terminal splits (A, B) of
        min-cut(A, B)   [max-flow over cable capacities]

— exactly for small fabrics (enumerating splits), and heuristically for
large ones (Kernighan–Lin proposes balanced splits, max-flow refines each
candidate's cut). Note host links count: a terminal can never receive
more than its own cable, so ``per_pair_bandwidth <= 1`` with unit links.

The ratio eBB / per-pair-bisection then quantifies how much of the wiring
a routing actually exploits — the gap the paper's introduction discusses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

from repro.network.fabric import Fabric
from repro.utils.prng import make_rng


@dataclass(frozen=True)
class BisectionEstimate:
    """A (possibly heuristic) balanced-cut estimate."""

    cut_capacity: float  # total capacity of cables crossing the cut
    terminals_a: int
    terminals_b: int
    exact: bool = False

    @property
    def per_pair_bandwidth(self) -> float:
        """Idealized bandwidth per communicating pair when all of side A
        talks to side B: cut capacity shared by min(|A|,|B|) pairs."""
        pairs = min(self.terminals_a, self.terminals_b)
        return self.cut_capacity / pairs if pairs else 0.0


def _flow_graph(fabric: Fabric) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(fabric.num_nodes))
    for cid in range(fabric.num_channels):
        u = int(fabric.channels.src[cid])
        v = int(fabric.channels.dst[cid])
        w = float(fabric.channels.capacity[cid])
        if g.has_edge(u, v):
            g[u][v]["capacity"] += w
        else:
            g.add_edge(u, v, capacity=w)
    return g


def _min_cut_between(g: nx.DiGraph, side_a, side_b) -> float:
    """Max-flow min-cut separating two terminal groups."""
    src, dst = "_S", "_T"
    g.add_node(src)
    g.add_node(dst)
    for t in side_a:
        g.add_edge(src, t, capacity=float("inf"))
    for t in side_b:
        g.add_edge(t, dst, capacity=float("inf"))
    try:
        value = nx.maximum_flow_value(g, src, dst)
    finally:
        g.remove_node(src)
        g.remove_node(dst)
    return float(value)


def estimate_bisection(
    fabric: Fabric, restarts: int = 4, seed=None, exact_limit: int = 12
) -> BisectionEstimate:
    """Bisection width over balanced terminal splits.

    Exact (all splits enumerated) when the fabric has at most
    ``exact_limit`` terminals; otherwise Kernighan–Lin proposes balanced
    splits whose cuts are refined by max-flow — an upper bound on the
    true width.
    """
    terms = [int(t) for t in fabric.terminals]
    T = len(terms)
    if T < 2:
        return BisectionEstimate(0.0, T, 0, exact=True)
    g = _flow_graph(fabric)
    half = T // 2

    if T <= exact_limit:
        best = None
        anchor = terms[0]  # fix one terminal to side A: halves the splits
        rest = terms[1:]
        for combo in itertools.combinations(rest, half - 1):
            side_a = {anchor, *combo}
            side_b = [t for t in terms if t not in side_a]
            cut = _min_cut_between(g, side_a, side_b)
            if best is None or cut < best[0]:
                best = (cut, len(side_a), len(side_b))
        return BisectionEstimate(best[0], best[1], best[2], exact=True)

    rng = make_rng(seed)
    ug = nx.Graph()
    ug.add_nodes_from(range(fabric.num_nodes))
    for u, v, data in g.edges(data=True):
        if ug.has_edge(u, v):
            continue
        ug.add_edge(u, v, weight=data["capacity"])
    tolerance = max(1, T // 10)
    best = None
    candidates = []
    for _ in range(max(1, restarts)):
        a, _b = nx.algorithms.community.kernighan_lin_bisection(
            ug, weight="weight", seed=int(rng.integers(2**31 - 1))
        )
        side_a = [t for t in terms if t in a]
        candidates.append(side_a)
    # Plus one random balanced split as a baseline proposal.
    shuffled = list(terms)
    rng.shuffle(shuffled)
    candidates.append(shuffled[:half])
    for side_a in candidates:
        # Rebalance the proposal to an exact terminal split.
        side_a = list(side_a)
        others = [t for t in terms if t not in set(side_a)]
        if len(side_a) > half:
            others += side_a[half:]
            side_a = side_a[:half]
        elif len(side_a) < half:
            move = half - len(side_a)
            side_a += others[:move]
            others = others[move:]
        if not side_a or not others:
            continue
        cut = _min_cut_between(g, set(side_a), others)
        if best is None or cut < best[0]:
            best = (cut, len(side_a), len(others))
    assert best is not None
    return BisectionEstimate(best[0], best[1], best[2], exact=False)


def routing_efficiency(ebb: float, fabric: Fabric, seed=None) -> float:
    """eBB relative to the idealized per-pair bisection bandwidth.

    Values near 1 mean the routing extracts almost everything the wiring
    allows; can exceed 1 slightly because random matchings keep some
    traffic on each side of the cut.
    """
    estimate = estimate_bisection(fabric, seed=seed)
    ideal = min(1.0, estimate.per_pair_bandwidth)
    return ebb / ideal if ideal > 0 else 0.0
