"""Text heatmaps of channel utilization — the operator's congestion view.

When a fabric underperforms, the first question is *where* the hot links
are. These helpers render per-channel load (static path counts or a
pattern's flow counts) as terminal-friendly reports:

* :func:`hot_channels` — the top-N loaded channels with endpoints and
  share of total load;
* :func:`switch_matrix` — a switch-by-switch load matrix with a
  logarithmic shade scale (``.:-=+*#%@``), readable at a glance for
  fabrics up to a few dozen switches;
* :func:`utilization_report` — both, plus summary statistics.
"""

from __future__ import annotations

import io

import numpy as np

from repro.network.fabric import Fabric
from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.metrics import gini_coefficient

_SHADES = " .:-=+*#%@"


def _loads(tables: RoutingTables, paths: PathSet | None) -> np.ndarray:
    if paths is None:
        paths = extract_paths(tables)
    return np.bincount(paths.chans, minlength=tables.fabric.num_channels)


def hot_channels(
    tables: RoutingTables,
    paths: PathSet | None = None,
    top: int = 10,
    loads: np.ndarray | None = None,
) -> str:
    """The ``top`` most-loaded inter-switch channels."""
    fabric = tables.fabric
    if loads is None:
        loads = _loads(tables, paths)
    sw = fabric.is_switch_channel
    masked = np.where(sw, loads, -1)
    order = np.argsort(masked)[::-1][:top]
    total = loads[sw].sum()
    out = io.StringIO()
    out.write(f"top {min(top, int(sw.sum()))} hot channels ({tables.engine} routing):\n")
    for rank, cid in enumerate(order, 1):
        if masked[cid] < 0:
            break
        u = int(fabric.channels.src[cid])
        v = int(fabric.channels.dst[cid])
        share = 100.0 * loads[cid] / total if total else 0.0
        out.write(
            f"  {rank:2d}. ch{int(cid):4d}  {fabric.names[u]} -> {fabric.names[v]}"
            f"  load={int(loads[cid])} ({share:.1f}%)\n"
        )
    return out.getvalue()


def switch_matrix(
    tables: RoutingTables,
    paths: PathSet | None = None,
    loads: np.ndarray | None = None,
    max_switches: int = 40,
) -> str:
    """Shaded switch-to-switch load matrix (rows: source, cols: target).

    Trunked cables aggregate into one cell. Fabrics larger than
    ``max_switches`` get a truncation note instead of an unreadable wall.
    """
    fabric = tables.fabric
    if loads is None:
        loads = _loads(tables, paths)
    S = fabric.num_switches
    if S > max_switches:
        return f"(switch matrix omitted: {S} switches > {max_switches})\n"
    matrix = np.zeros((S, S), dtype=np.int64)
    for cid in fabric.switch_channel_ids():
        u = int(fabric.switch_index[fabric.channels.src[cid]])
        v = int(fabric.switch_index[fabric.channels.dst[cid]])
        matrix[u, v] += int(loads[cid])
    peak = matrix.max()
    out = io.StringIO()
    out.write(f"switch-to-switch load matrix (peak cell = {int(peak)}):\n")
    header = "      " + "".join(f"{j % 10}" for j in range(S))
    out.write(header + "\n")
    for i in range(S):
        row = []
        for j in range(S):
            if matrix[i, j] == 0:
                row.append("." if fabric.channel_between(int(fabric.switches[i]), int(fabric.switches[j])) >= 0 else " ")
            else:
                # logarithmic shade so trunked giants don't flatten the rest
                level = int(np.ceil((len(_SHADES) - 1) * np.log1p(matrix[i, j]) / np.log1p(peak)))
                row.append(_SHADES[max(1, level)])
        out.write(f"  sw{i:2d} " + "".join(row) + "\n")
    return out.getvalue()


def utilization_report(
    tables: RoutingTables, paths: PathSet | None = None, top: int = 10
) -> str:
    """Summary + hot channels + matrix, ready to print."""
    fabric = tables.fabric
    if paths is None:
        paths = extract_paths(tables)
    loads = _loads(tables, paths)
    sw_loads = loads[fabric.is_switch_channel]
    out = io.StringIO()
    out.write(f"utilization report — {tables.engine} on {fabric}\n")
    if len(sw_loads):
        out.write(
            f"  inter-switch channels: {len(sw_loads)}  "
            f"mean load: {sw_loads.mean():.1f}  max: {int(sw_loads.max())}  "
            f"gini: {gini_coefficient(sw_loads):.3f}\n\n"
        )
    out.write(hot_channels(tables, paths, top=top, loads=loads))
    out.write("\n")
    out.write(switch_matrix(tables, paths, loads=loads))
    return out.getvalue()
