"""Path-quality statistics: hop distributions and minimality checks.

SSSP's large initial weight guarantees hop-minimal paths (§II); this
module quantifies that and lets experiments compare average path lengths
across engines (Up*/Down* pays with detours, which shows up here before
it shows up in bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet, extract_paths, path_minimality_violations


@dataclass(frozen=True)
class PathStats:
    """Summary of one routing's switch-to-terminal path population."""

    engine: str
    num_paths: int
    mean_hops: float
    max_hops: int
    hop_histogram: np.ndarray
    minimality_violations: int

    @property
    def minimal(self) -> bool:
        return self.minimality_violations == 0


def path_stats(tables: RoutingTables, paths: PathSet | None = None) -> PathStats:
    """Compute hop statistics and count non-minimal paths."""
    if paths is None:
        paths = extract_paths(tables)
    lengths = paths.lengths()
    return PathStats(
        engine=tables.engine,
        num_paths=paths.num_paths,
        mean_hops=float(lengths.mean()) if len(lengths) else 0.0,
        max_hops=int(lengths.max(initial=0)),
        hop_histogram=paths.hop_histogram(),
        minimality_violations=path_minimality_violations(tables, paths),
    )


def compare_mean_hops(stats: list[PathStats]) -> dict[str, float]:
    """Engine name -> mean hops, for quick tabulation."""
    return {s.engine: s.mean_hops for s in stats}
