"""Static link-utilization analysis of forwarding tables.

Where :mod:`repro.simulator.metrics` looks at one traffic pattern, this
module measures the *routing itself*: how many of the |S|·|T| paths cross
each channel. SSSP's whole point is to flatten this distribution (its
edge weights literally accumulate these counts), so the per-channel path
histogram is the most direct window into why DFSSSP wins bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.metrics import gini_coefficient


@dataclass(frozen=True)
class RoutingUtilization:
    """Per-channel path-count distribution of one routing."""

    engine: str
    paths_per_channel: np.ndarray  # switch channels only
    mean: float
    maximum: int
    gini: float

    @property
    def balance_ratio(self) -> float:
        """mean/max — 1.0 means perfectly flat utilisation (an unloaded
        fabric counts as trivially flat)."""
        return self.mean / self.maximum if self.maximum else 1.0


def routing_utilization(tables: RoutingTables, paths: PathSet | None = None) -> RoutingUtilization:
    """Count, for every inter-switch channel, the paths crossing it.

    Degenerate fabrics are fine: with no inter-switch channels (or no
    paths) every statistic is 0.0 / the gini is 0.0 — never NaN.
    """
    if paths is None:
        paths = extract_paths(tables)
    fabric = tables.fabric
    counts = np.bincount(paths.chans, minlength=fabric.num_channels)
    sw_counts = counts[fabric.is_switch_channel]
    return RoutingUtilization(
        engine=tables.engine,
        paths_per_channel=sw_counts,
        mean=float(sw_counts.mean()) if len(sw_counts) else 0.0,
        maximum=int(sw_counts.max(initial=0)),
        gini=gini_coefficient(sw_counts),
    )
