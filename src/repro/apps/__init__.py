"""Application-level models: Netgauge eBB, collective timing and the NAS
kernel performance predictions of §VI."""

from repro.apps.netgauge import (
    DEIMOS_LINK_MIBS,
    NetgaugeResult,
    core_allocation,
    netgauge_ebb,
)
from repro.apps.collectives import (
    BYTES_PER_FLOAT,
    CollectiveTime,
    allreduce_time,
    alltoall_time,
)
from repro.apps.trace import CommTrace, ReplayResult, TraceRecord, replay_trace
from repro.apps.nas import KERNELS, KernelSpec, Phase, get_kernel
from repro.apps.perfmodel import (
    DEFAULT_CORE_GFLOPS,
    KernelPrediction,
    improvement_percent,
    predict_kernel,
)

__all__ = [
    "CommTrace",
    "ReplayResult",
    "TraceRecord",
    "replay_trace",
    "DEIMOS_LINK_MIBS",
    "NetgaugeResult",
    "core_allocation",
    "netgauge_ebb",
    "BYTES_PER_FLOAT",
    "CollectiveTime",
    "allreduce_time",
    "alltoall_time",
    "KERNELS",
    "KernelSpec",
    "Phase",
    "get_kernel",
    "DEFAULT_CORE_GFLOPS",
    "KernelPrediction",
    "improvement_percent",
    "predict_kernel",
]
