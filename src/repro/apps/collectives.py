"""Collective-communication time models (Fig. 13).

The paper's microbenchmark times ``MPI_Alltoall`` for growing send
buffers on 128 cores; DFSSSP's better balancing nearly halves the time at
4096 floats (18.88 ms → 10.06 ms). We model the collective as its linear
shift schedule — round ``r`` has rank ``i`` sending to ``(i + r) mod P``
— and charge each round the completion time of its slowest flow under
the congestion simulator. The total is a lower-bound-style model (no
protocol constants), which is fine: the paper's signal is the *ratio*
between routings, and that is purely a congestion property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.simulator.congestion import CongestionSimulator
from repro.simulator.patterns import shift_pattern

#: float size used by the paper's kernel buffers
BYTES_PER_FLOAT = 4


@dataclass(frozen=True)
class CollectiveTime:
    """Modelled runtime of one collective invocation."""

    operation: str
    participants: int
    bytes_per_message: float
    round_seconds: np.ndarray

    @property
    def total_seconds(self) -> float:
        return float(self.round_seconds.sum())

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3


def alltoall_time(
    tables: RoutingTables,
    participants: list[int],
    floats_per_dest: int,
    link_bytes_per_s: float = 946.0 * 2**20,
    sim: CongestionSimulator | None = None,
) -> CollectiveTime:
    """Model ``MPI_Alltoall`` among the given terminals.

    ``floats_per_dest`` is the per-destination element count (the paper's
    x axis). Each of the ``P-1`` shift rounds transfers
    ``floats_per_dest * 4`` bytes per flow; a round completes when its
    slowest flow does.
    """
    if len(set(participants)) != len(participants):
        raise SimulationError("participants must be distinct terminals")
    if len(participants) < 2:
        raise SimulationError("all-to-all needs >= 2 participants")
    if floats_per_dest < 1:
        raise SimulationError("floats_per_dest must be >= 1")
    if sim is None:
        sim = CongestionSimulator(tables)
    bytes_per_msg = floats_per_dest * BYTES_PER_FLOAT
    n = len(participants)
    rounds = np.empty(n - 1)
    for r in range(1, n):
        pattern = shift_pattern(tables.fabric, r, participants)
        result = sim.evaluate(pattern)
        slowest_bw = result.min_bandwidth * link_bytes_per_s
        rounds[r - 1] = bytes_per_msg / slowest_bw
    return CollectiveTime(
        operation="alltoall",
        participants=n,
        bytes_per_message=bytes_per_msg,
        round_seconds=rounds,
    )


def allreduce_time(
    tables: RoutingTables,
    participants: list[int],
    bytes_total: float,
    link_bytes_per_s: float = 946.0 * 2**20,
    sim: CongestionSimulator | None = None,
) -> CollectiveTime:
    """Recursive-doubling allreduce model (used by the NAS kernels'
    reduction phases): log2(P) rounds of pairwise exchanges at distance
    1, 2, 4, ... Non-power-of-two participant counts round down (the
    leftover ranks piggyback in practice)."""
    if len(participants) < 2:
        raise SimulationError("allreduce needs >= 2 participants")
    if sim is None:
        sim = CongestionSimulator(tables)
    p2 = 1 << (len(participants).bit_length() - 1)
    group = list(participants[:p2])
    rounds = []
    dist = 1
    while dist < p2:
        pattern = []
        for i, src in enumerate(group):
            dst = group[i ^ dist]
            if src != dst:
                pattern.append((src, dst))
        result = sim.evaluate(pattern)
        slowest_bw = result.min_bandwidth * link_bytes_per_s
        rounds.append(bytes_total / slowest_bw)
        dist <<= 1
    return CollectiveTime(
        operation="allreduce",
        participants=len(group),
        bytes_per_message=bytes_total,
        round_seconds=np.array(rounds),
    )
