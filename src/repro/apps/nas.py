"""Communication models of the NAS Parallel Benchmarks (§VI-B).

The paper measures MPI NPB 2.4 (BT, SP, FT, CG, MG, LU) on Deimos; we
cannot run the Fortran codes, but their *communication structures* are
classical and fully determine how much a routing change can help:

=======  ==============================================================
kernel   communication structure (per timed iteration)
=======  ==============================================================
BT       2D multipartition: ±x/±y neighbor face exchanges, 3 sweeps
SP       same structure as BT, thinner faces, more iterations
FT       3D FFT: transpose = all-to-all between all ranks
CG       2D rank grid: row exchanges + transpose pairs + reductions
MG       V-cycle: halo exchanges whose size halves per level
LU       2D pipelined wavefront: small ±x/±y messages, many phases
=======  ==============================================================

Each :class:`KernelSpec` produces, for a concrete rank→terminal
allocation, the list of simultaneous-flow phases and per-flow byte counts
of one iteration; :mod:`repro.apps.perfmodel` charges them against the
congestion simulator to predict Gflop/s. Problem-size constants are
NPB class C; they set absolute scales while the routing comparison (the
paper's actual claim) comes entirely from the congestion ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.simulator.patterns import Pattern, shift_pattern, stencil_pattern

#: NPB class C reference dimensions.
_BT_N = 162  # 162^3 grid, 5 variables
_SP_N = 162
_FT_N = 512  # 512^3 complex grid
_CG_N = 150_000
_MG_N = 512
_LU_N = 162


def _square_grid(p: int) -> tuple[int, int]:
    root = int(math.isqrt(p))
    if root * root != p:
        raise SimulationError(f"kernel needs a square process count, got {p}")
    return (root, root)


def _pow2(p: int) -> None:
    if p < 2 or (p & (p - 1)) != 0:
        raise SimulationError(f"kernel needs a power-of-two process count, got {p}")


@dataclass(frozen=True)
class Phase:
    """One simultaneous-flow communication phase."""

    pattern: Pattern
    bytes_per_flow: float


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one NAS kernel's communication."""

    name: str
    iterations: int
    flops_per_iteration: float

    def valid_ranks(self, p: int) -> bool:
        raise NotImplementedError

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        raise NotImplementedError

    @property
    def total_flops(self) -> float:
        return self.iterations * self.flops_per_iteration


def _dedup_flows(pattern: Pattern) -> Pattern:
    """Drop self-flows (ranks sharing a terminal talk via shared memory)."""
    return [(s, d) for s, d in pattern if s != d]


class _StencilKernel(KernelSpec):
    """BT/SP/LU-style ±x/±y neighbor exchanges on a square rank grid."""

    def __init__(self, name, iterations, flops_per_iteration, face_bytes, sweeps):
        super().__init__(name, iterations, flops_per_iteration)
        object.__setattr__(self, "face_bytes", face_bytes)
        object.__setattr__(self, "sweeps", sweeps)

    def valid_ranks(self, p: int) -> bool:
        root = int(math.isqrt(p))
        return root * root == p and p >= 4

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        grid = _square_grid(len(participants))
        bytes_per_flow = self.face_bytes(len(participants))
        raw = stencil_pattern(fabric, grid, participants, periodic=True)
        phases = []
        for _ in range(self.sweeps):
            for pat in raw:
                flows = _dedup_flows(pat)
                if flows:
                    phases.append(Phase(flows, bytes_per_flow))
        return phases


class _AllToAllKernel(KernelSpec):
    """FT: transpose = all-to-all, linear shift schedule."""

    def __init__(self, name, iterations, flops_per_iteration, pair_bytes, transposes):
        super().__init__(name, iterations, flops_per_iteration)
        object.__setattr__(self, "pair_bytes", pair_bytes)
        object.__setattr__(self, "transposes", transposes)

    def valid_ranks(self, p: int) -> bool:
        return p >= 2 and (p & (p - 1)) == 0

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        _pow2(len(participants))
        p = len(participants)
        bytes_per_flow = self.pair_bytes(p)
        phases = []
        for _ in range(self.transposes):
            for r in range(1, p):
                flows = _dedup_flows(shift_pattern(fabric, r, participants))
                if flows:
                    phases.append(Phase(flows, bytes_per_flow))
        return phases


class _CGKernel(KernelSpec):
    """CG: row-group exchanges and transpose swaps on a 2D rank grid."""

    def __init__(self):
        super().__init__("cg", iterations=75, flops_per_iteration=3.0e10)

    def valid_ranks(self, p: int) -> bool:
        return p >= 4 and (p & (p - 1)) == 0

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        _pow2(len(participants))
        p = len(participants)
        # npbC CG: rows of size 2^ceil(log2(p)/2).
        row = 1 << ((p.bit_length() - 1 + 1) // 2)
        seg_bytes = 8.0 * _CG_N / row
        phases: list[Phase] = []
        # Transpose exchange: partner = row-major transpose within row pairs.
        swap = []
        for i in range(p):
            partner = (i % row) * (p // row) + (i // row) if row * row == p else i ^ (row // 2 or 1)
            if partner != i:
                swap.append((participants[i], participants[partner]))
        flows = _dedup_flows(swap)
        if flows:
            phases.append(Phase(flows, seg_bytes))
        # Recursive halving within rows: log2(row) rounds.
        dist = 1
        while dist < row:
            pat = []
            for i in range(p):
                j = (i // row) * row + ((i % row) ^ dist)
                pat.append((participants[i], participants[j]))
            flows = _dedup_flows(pat)
            if flows:
                phases.append(Phase(flows, seg_bytes / dist))
            dist <<= 1
        return phases


class _MGKernel(KernelSpec):
    """MG: V-cycle halo exchanges with geometrically shrinking messages."""

    def __init__(self):
        super().__init__("mg", iterations=20, flops_per_iteration=2.9e11)

    def valid_ranks(self, p: int) -> bool:
        return p >= 4 and int(math.isqrt(p)) ** 2 == p

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        grid = _square_grid(len(participants))
        p = len(participants)
        raw = stencil_pattern(fabric, grid, participants, periodic=True)
        phases = []
        levels = max(2, int(math.log2(_MG_N)) - 2)
        for level in range(levels):
            face = 8.0 * (_MG_N / (1 << level)) ** 2 / p
            if face < 8:
                break
            for pat in raw:
                flows = _dedup_flows(pat)
                if flows:
                    phases.append(Phase(flows, face))
        return phases


def _bt_face(p: int) -> float:
    return 5 * 8.0 * _BT_N * _BT_N / math.isqrt(p)


def _sp_face(p: int) -> float:
    return 3 * 8.0 * _SP_N * _SP_N / math.isqrt(p)


def _lu_face(p: int) -> float:
    return 5 * 8.0 * _LU_N * _LU_N / math.isqrt(p) / 20.0  # pencil slices


def _ft_pair(p: int) -> float:
    return 16.0 * _FT_N**3 / (p * p)


class _ISKernel(KernelSpec):
    """IS (integer sort): bucket redistribution = all-to-all-v.

    The paper's suite includes the integer-sort kernel; its network phase
    is one all-to-all per iteration with *uneven* per-pair volumes (the
    bucket histogram). We model the skew with a deterministic ±50%
    modulation around the mean bucket size.
    """

    def __init__(self):
        super().__init__("is", iterations=10, flops_per_iteration=6.0e9)
        object.__setattr__(self, "total_keys", 2**27)  # class C

    def valid_ranks(self, p: int) -> bool:
        return p >= 2 and (p & (p - 1)) == 0

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        _pow2(len(participants))
        p = len(participants)
        mean_bytes = 4.0 * self.total_keys / (p * p)
        phases = []
        for r in range(1, p):
            flows = _dedup_flows(shift_pattern(fabric, r, participants))
            if flows:
                skew = 1.0 + 0.5 * ((r % 3) - 1)  # 0.5x / 1.0x / 1.5x buckets
                phases.append(Phase(flows, mean_bytes * skew))
        return phases


class _EPKernel(KernelSpec):
    """EP (embarrassingly parallel): the communication-free control.

    Only a final tiny reduction crosses the network, so all routings must
    tie — a guard against the perf model inventing phantom differences.
    """

    def __init__(self):
        super().__init__("ep", iterations=1, flops_per_iteration=1.5e11)

    def valid_ranks(self, p: int) -> bool:
        return p >= 2

    def phases(self, fabric, participants: list[int]) -> list[Phase]:
        p = len(participants)
        # Recursive-doubling allreduce of a handful of doubles.
        p2 = 1 << (p.bit_length() - 1)
        group = participants[:p2]
        phases = []
        dist = 1
        while dist < p2:
            pat = []
            for i in range(p2):
                j = i ^ dist
                if group[i] != group[j]:
                    pat.append((group[i], group[j]))
            if pat:
                phases.append(Phase(pat, 80.0))
            dist <<= 1
        return phases


KERNELS: dict[str, KernelSpec] = {
    "bt": _StencilKernel("bt", iterations=200, flops_per_iteration=1.4e10, face_bytes=_bt_face, sweeps=3),
    "sp": _StencilKernel("sp", iterations=400, flops_per_iteration=0.37e10, face_bytes=_sp_face, sweeps=3),
    "lu": _StencilKernel("lu", iterations=250, flops_per_iteration=0.8e10, face_bytes=_lu_face, sweeps=8),
    "ft": _AllToAllKernel("ft", iterations=20, flops_per_iteration=2.0e11, pair_bytes=_ft_pair, transposes=2),
    "cg": _CGKernel(),
    "mg": _MGKernel(),
    "is": _ISKernel(),
    "ep": _EPKernel(),
}


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name.lower()]
    except KeyError:
        raise SimulationError(
            f"unknown NAS kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
