"""Netgauge-style effective-bisection-bandwidth measurement (Fig. 12).

Netgauge's eBB benchmark partitions the participating MPI processes into
two random equal sets, matches them up, runs 1 MiB ping-pongs and reports
the average pair bandwidth over many random partitions. We reproduce the
estimator on the fabric model:

* a *core allocation* maps MPI ranks to terminals — one core per node up
  to the node count, then round-robin over nodes (the paper's 1024-core
  runs spread over 250 multi-core nodes);
* each random partition becomes a terminal-level flow pattern evaluated
  by the congestion simulator;
* relative bandwidths scale by the node's link limit (946 MiB/s PCIe 1.1
  on Deimos).

Intra-node pairs (two ranks on the same terminal) exchange data through
shared memory on the real system and are excluded from the network
estimate, as Netgauge's allocation also avoided them where possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.network.fabric import Fabric
from repro.routing.base import RoutingTables
from repro.simulator.congestion import CongestionSimulator
from repro.utils.prng import make_rng, spawn_rngs

#: Deimos' point-to-point limit (PCIe 1.1 HCAs), MiB/s.
DEIMOS_LINK_MIBS = 946.0


def core_allocation(fabric: Fabric, cores: int, seed=None) -> np.ndarray:
    """Map ``cores`` MPI ranks onto terminals.

    Up to the terminal count, a random subset (one core per node, the
    paper's ≤512-core setup); beyond it, round-robin over a random node
    order (multiple ranks per node, the 1024-core setup).
    """
    if cores < 2:
        raise SimulationError("need at least 2 cores")
    rng = make_rng(seed)
    terms = fabric.terminals.astype(np.int64)
    order = rng.permutation(terms)
    if cores <= len(order):
        return order[:cores]
    reps = int(np.ceil(cores / len(order)))
    return np.tile(order, reps)[:cores]


@dataclass(frozen=True)
class NetgaugeResult:
    """eBB estimate for one (routing, core count) configuration."""

    cores: int
    num_patterns: int
    per_pattern_mibs: np.ndarray
    link_mibs: float

    @property
    def ebb_mibs(self) -> float:
        return float(self.per_pattern_mibs.mean())

    @property
    def std_mibs(self) -> float:
        return float(self.per_pattern_mibs.std())


def netgauge_ebb(
    tables: RoutingTables,
    cores: int,
    num_patterns: int = 100,
    seed=None,
    link_mibs: float = DEIMOS_LINK_MIBS,
    allocation: np.ndarray | None = None,
) -> NetgaugeResult:
    """Estimate eBB for ``cores`` ranks through one routing's tables.

    The same ``allocation`` (and seed) should be reused across routing
    engines so the only difference is the routing — exactly the paper's
    methodology ("We used the same nodes for identical number of cores").
    """
    fabric = tables.fabric
    if allocation is None:
        allocation = core_allocation(fabric, cores, seed=make_rng(seed))
    if len(allocation) < cores:
        raise SimulationError(f"allocation has {len(allocation)} ranks, need {cores}")
    sim = CongestionSimulator(tables)
    rngs = spawn_rngs(seed, num_patterns)
    means = np.empty(num_patterns)
    ranks = np.arange(cores)
    for i, rng in enumerate(rngs):
        perm = rng.permutation(ranks)
        half = cores // 2
        pattern = []
        for a, b in zip(perm[:half], perm[half : 2 * half]):
            src, dst = int(allocation[a]), int(allocation[b])
            if src != dst:
                pattern.append((src, dst))
        if not pattern:
            means[i] = link_mibs  # everything intra-node: no network load
            continue
        result = sim.evaluate(pattern)
        means[i] = result.mean_bandwidth * link_mibs
    return NetgaugeResult(
        cores=cores,
        num_patterns=num_patterns,
        per_pattern_mibs=means,
        link_mibs=link_mibs,
    )
