"""Application-performance model: congestion → Gflop/s (Figures 14-16,
Table II).

A kernel iteration costs ``T_comp + T_comm``:

* ``T_comp`` = per-iteration flops / (cores × per-core rate). The rate
  default (0.9 Gflop/s) is a 2007-era Opteron doing real CFD work — it
  sets absolute scales only.
* ``T_comm`` = Σ over the iteration's communication phases of the
  slowest flow's completion time, with flow rates taken from the
  congestion simulator. No overlap is assumed (NPB 2.4's kernels mostly
  don't overlap either).

The routing comparison — the paper's actual result — depends only on the
``T_comm`` ratio between engines, i.e. purely on congestion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.nas import KernelSpec, get_kernel
from repro.apps.netgauge import DEIMOS_LINK_MIBS, core_allocation
from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.simulator.congestion import CongestionSimulator

#: effective per-core compute rate (Gflop/s), 2007-era dual-core Opteron
DEFAULT_CORE_GFLOPS = 0.9


@dataclass(frozen=True)
class KernelPrediction:
    """Predicted performance of one NAS kernel run."""

    kernel: str
    cores: int
    comp_seconds: float
    comm_seconds: float
    total_seconds: float
    gflops: float

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds if self.total_seconds else 0.0


def predict_kernel(
    tables: RoutingTables,
    kernel: str | KernelSpec,
    cores: int,
    seed=None,
    allocation: np.ndarray | None = None,
    per_core_gflops: float = DEFAULT_CORE_GFLOPS,
    link_mibs: float = DEIMOS_LINK_MIBS,
    sim: CongestionSimulator | None = None,
) -> KernelPrediction:
    """Model one kernel at one core count through one routing.

    Reuse ``allocation`` (and ``sim``) across engines so the comparison
    isolates the routing, as in the paper's fixed-allocation methodology.
    """
    spec = get_kernel(kernel) if isinstance(kernel, str) else kernel
    if not spec.valid_ranks(cores):
        raise SimulationError(f"kernel {spec.name} cannot run on {cores} ranks")
    fabric = tables.fabric
    if allocation is None:
        allocation = core_allocation(fabric, cores, seed=seed)
    participants = [int(t) for t in allocation[:cores]]
    if sim is None:
        sim = CongestionSimulator(tables)

    link_bytes = link_mibs * 2**20
    comm_iter = 0.0
    for phase in spec.phases(fabric, participants):
        result = sim.evaluate(phase.pattern)
        slowest_bw = result.min_bandwidth * link_bytes
        comm_iter += phase.bytes_per_flow / slowest_bw
    comp_iter = spec.flops_per_iteration / (cores * per_core_gflops * 1e9)

    comp = spec.iterations * comp_iter
    comm = spec.iterations * comm_iter
    total = comp + comm
    return KernelPrediction(
        kernel=spec.name,
        cores=cores,
        comp_seconds=comp,
        comm_seconds=comm,
        total_seconds=total,
        gflops=spec.total_flops / total / 1e9,
    )


def improvement_percent(baseline: KernelPrediction, contender: KernelPrediction) -> float:
    """Table II's metric: Gflop/s gain of ``contender`` over ``baseline``."""
    if baseline.kernel != contender.kernel or baseline.cores != contender.cores:
        raise SimulationError("predictions compare different configurations")
    return (contender.gflops / baseline.gflops - 1.0) * 100.0
