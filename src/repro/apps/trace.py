"""Trace-driven communication replay.

Bridges real applications and the congestion model: a *communication
trace* is a phase-ordered list of (source rank, destination rank, bytes)
records — the level of detail MPI profilers readily produce. Replaying a
trace against a routed fabric predicts per-phase and total communication
time, so different routing engines (or degraded fabrics) can be compared
for a *specific* application rather than a synthetic kernel.

The text format is one record per line::

    # phase src_rank dst_rank bytes
    0 0 4 1048576
    0 1 5 1048576
    1 4 0 524288

Phases execute back to back; within a phase all flows are concurrent and
a phase completes when its slowest flow does (the same model the NAS
kernels use). Ranks map to terminals through an allocation; co-located
ranks exchange through shared memory and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.apps.netgauge import DEIMOS_LINK_MIBS
from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.simulator.congestion import CongestionSimulator


@dataclass(frozen=True)
class TraceRecord:
    phase: int
    src_rank: int
    dst_rank: int
    nbytes: float


class CommTrace:
    """Ordered communication phases of one application run."""

    def __init__(self, records: list[TraceRecord]):
        for r in records:
            if r.phase < 0 or r.nbytes <= 0 or r.src_rank < 0 or r.dst_rank < 0:
                raise SimulationError(f"malformed trace record {r}")
            if r.src_rank == r.dst_rank:
                raise SimulationError(f"self-communication in trace: {r}")
        self.records = sorted(records, key=lambda r: r.phase)

    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        return (max(r.phase for r in self.records) + 1) if self.records else 0

    @property
    def num_ranks(self) -> int:
        if not self.records:
            return 0
        return 1 + max(max(r.src_rank, r.dst_rank) for r in self.records)

    @property
    def total_bytes(self) -> float:
        return float(sum(r.nbytes for r in self.records))

    def phases(self):
        """Yield (phase index, records) in order; empty phases skipped."""
        by_phase: dict[int, list[TraceRecord]] = {}
        for r in self.records:
            by_phase.setdefault(r.phase, []).append(r)
        for phase in sorted(by_phase):
            yield phase, by_phase[phase]

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | Path) -> "CommTrace":
        records = []
        for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise SimulationError(f"{path}:{lineno}: expected 4 fields, got {raw!r}")
            phase, src, dst = (int(parts[i]) for i in range(3))
            records.append(TraceRecord(phase, src, dst, float(parts[3])))
        if not records:
            raise SimulationError(f"{path}: empty trace")
        return cls(records)

    def save(self, path: str | Path) -> None:
        lines = ["# phase src_rank dst_rank bytes"]
        for r in self.records:
            lines.append(f"{r.phase} {r.src_rank} {r.dst_rank} {r.nbytes:g}")
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def from_kernel(cls, kernel, fabric, participants: list[int]) -> "CommTrace":
        """Flatten a NAS :class:`KernelSpec`'s single iteration into a
        trace (ranks are positions in ``participants``)."""
        index = {}
        for rank, term in enumerate(participants):
            index.setdefault(term, rank)
        records = []
        for phase_no, phase in enumerate(kernel.phases(fabric, participants)):
            for src, dst in phase.pattern:
                records.append(
                    TraceRecord(phase_no, index[src], index[dst], phase.bytes_per_flow)
                )
        return cls(records)


@dataclass(frozen=True)
class ReplayResult:
    """Predicted communication time of one trace on one routing."""

    phase_seconds: np.ndarray
    total_bytes: float

    @property
    def total_seconds(self) -> float:
        return float(self.phase_seconds.sum())

    @property
    def effective_bandwidth(self) -> float:
        """Aggregate bytes/s over the whole trace."""
        return self.total_bytes / self.total_seconds if self.total_seconds else 0.0


def replay_trace(
    tables: RoutingTables,
    trace: CommTrace,
    allocation,
    link_mibs: float = DEIMOS_LINK_MIBS,
    sim: CongestionSimulator | None = None,
) -> ReplayResult:
    """Replay ``trace`` with ranks mapped by ``allocation`` (rank ->
    terminal node id). Intra-terminal records are skipped (shared
    memory); a phase with only such records costs zero network time."""
    allocation = [int(t) for t in allocation]
    if trace.num_ranks > len(allocation):
        raise SimulationError(
            f"trace has {trace.num_ranks} ranks but allocation only "
            f"{len(allocation)} entries"
        )
    if sim is None:
        sim = CongestionSimulator(tables)
    link_bytes = link_mibs * 2**20
    times = []
    for _phase, records in trace.phases():
        flows = []
        nbytes = []
        for r in records:
            src, dst = allocation[r.src_rank], allocation[r.dst_rank]
            if src == dst:
                continue
            flows.append((src, dst))
            nbytes.append(r.nbytes)
        if not flows:
            times.append(0.0)
            continue
        result = sim.evaluate(flows)
        rates = result.flow_bandwidth * link_bytes
        times.append(float(np.max(np.asarray(nbytes) / rates)))
    return ReplayResult(phase_seconds=np.array(times), total_bytes=trace.total_bytes)
