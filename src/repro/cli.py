"""Command-line interface: ``repro-route`` / ``python -m repro``.

Subcommands mirror the OpenSM-era workflow on the fabric model:

* ``topo``       — generate a topology, print a summary, optionally save it;
* ``route``      — run a routing engine, print path/layer statistics;
* ``simulate``   — effective bisection bandwidth for one or more engines;
* ``vls``        — virtual-lane requirements (DFSSSP heuristics vs LASH);
* ``deadlock``   — flit-level deadlock experiment on a pattern;
* ``throughput`` — open-loop saturation sweep (offered vs delivered load);
* ``bisection``  — theoretical bisection width of the fabric;
* ``orcs``       — ORCS-style named pattern / metric evaluation;
* ``des``        — packet-level discrete-event scenario sweep: AI-collective
  workloads (AllReduce, all-to-all, TP+PP, mice probes) over any engine set,
  with FCT percentiles, queue-occupancy stats and optional mid-run fault
  injection (see ``docs/des.md``);
* ``chaos``      — fault-injection soak (degrade/repair/verify loop);
* ``serve``      — supervised service-mode soak (deadlines, backoff,
  last-known-good serving, checkpoint/restore; see ``docs/service.md``);
* ``fleet-soak`` — fleet chaos soak: shard N fabrics across fault-isolated
  worker processes, replay concurrent requests while SIGKILLing workers,
  and assert zero unserved requests with certified respawns
  (see ``docs/fleet.md``);
* ``checkpoint`` — inspect and verify a service checkpoint directory;
* ``certify``    — emit / validate deadlock-freedom certificates (per-layer
  topological orders over the CDG, checkable in O(V+E) by the
  dependency-free ``python -m repro.deadlock.checker``);
* ``stats``      — render a ``--metrics`` JSON dump as a table, a
  ``--trace`` JSONL file as a span tree (``--trace-tree``, optionally
  filtered to one ``--request`` id), or a flight-recorder dump
  (``--flight``);
* ``health``     — judge declarative SLOs against a metrics dump
  (exit 1 on violation; powers the CI health gate).

Fabrics come from generators (``--family``), saved JSON (``--fabric``) or
real ``ibnetdiscover`` dumps (``--ibnetdiscover``).

Observability: ``route``, ``simulate``, ``deadlock`` and ``throughput``
accept ``--trace FILE`` (JSON-lines span events) and ``--metrics FILE``
(metrics-registry dump after the run; ``-`` = stdout, ``*.json`` = JSON,
anything else Prometheus text). ``route`` and ``simulate`` also accept
``--json`` for machine-readable results.

Examples::

    repro-route topo --family random --switches 16 --links 32 \
        --terminals-per-switch 4 --seed 7 --out fabric.json
    repro-route simulate --fabric fabric.json --engines minhop,dfsssp
    repro-route deadlock --family ring --switches 5 --shift 2
    repro-route route --family ring --switches 5 --terminals-per-switch 2 \
        --engine dfsssp --trace trace.jsonl --metrics metrics.json
    repro-route chaos --family random --switches 12 --links 26 --events 200 \
        --chaos-seed 42 --out chaos.json
    repro-route des --scenario scenario.json --out report.json \
        --trace des-trace.jsonl --metrics des-metrics.json
    repro-route serve --family random --switches 12 --links 26 --events 200 \
        --chaos-seed 7 --checkpoint-dir ckpt --out service.json
    repro-route serve --restore --checkpoint-dir ckpt --out service.json
    repro-route checkpoint ckpt
    repro-route stats metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.exceptions import ReproError
from repro.network import load_fabric, save_fabric
from repro.network import topologies as topo
from repro.network.fabric import Fabric
from repro.obs import JsonlSink, get_registry, set_sink
from repro.parallel.kernel import KERNELS
from repro.routing import PAPER_ENGINES, extract_paths, make_engine
from repro.routing.base import LayeredRouting
from repro.deadlock import verify_deadlock_free
from repro.simulator import CongestionSimulator, FlitSimulator, shift_pattern
from repro.utils.atomicio import atomic_write_text
from repro.utils.reporting import Table


def _build_topo(args) -> Fabric:
    if getattr(args, "ibnetdiscover", None):
        from repro.network import load_ibnetdiscover

        return load_ibnetdiscover(args.ibnetdiscover)
    if getattr(args, "fabric", None):
        return load_fabric(args.fabric)
    family = args.family
    if family == "ring":
        return topo.ring(args.switches, args.terminals_per_switch)
    if family == "torus":
        dims = tuple(int(d) for d in args.dims.split("x"))
        return topo.torus(dims, args.terminals_per_switch)
    if family == "hypercube":
        return topo.hypercube(args.dimension, args.terminals_per_switch)
    if family == "ktree":
        return topo.kary_ntree(args.k, args.n)
    if family == "xgft":
        ms = tuple(int(m) for m in args.ms.split(","))
        ws = tuple(int(w) for w in args.ws.split(","))
        return topo.xgft(len(ms), ms, ws)
    if family == "kautz":
        return topo.kautz(args.b, args.n, args.endpoints)
    if family == "random":
        return topo.random_topology(
            args.switches, args.links, args.terminals_per_switch, seed=args.seed
        )
    if family == "dragonfly":
        return topo.dragonfly(args.a, args.p, args.h)
    if family in topo.CLUSTERS:
        return topo.cluster(family, scale=args.scale)
    raise ReproError(f"unknown topology family {family!r}")


def _add_topo_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--fabric", help="load fabric from JSON instead of generating")
    p.add_argument("--ibnetdiscover", help="load fabric from ibnetdiscover output")
    p.add_argument("--family", default="random", help="topology family or cluster name")
    p.add_argument("--switches", type=int, default=16)
    p.add_argument("--links", type=int, default=32)
    p.add_argument("--terminals-per-switch", type=int, default=2)
    p.add_argument("--dims", default="4x4", help="torus/mesh dims, e.g. 4x4x4")
    p.add_argument("--dimension", type=int, default=4, help="hypercube dimension")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--b", type=int, default=2)
    p.add_argument("--ms", default="4,4", help="XGFT child counts")
    p.add_argument("--ws", default="1,2", help="XGFT parent counts")
    p.add_argument("--endpoints", type=int, default=64, help="Kautz endpoint count")
    p.add_argument("--a", type=int, default=4, help="dragonfly group size")
    p.add_argument("--p", type=int, default=2, help="dragonfly terminals/switch")
    p.add_argument("--h", type=int, default=2, help="dragonfly global links/switch")
    p.add_argument("--scale", type=float, default=0.1, help="cluster lookalike scale")
    p.add_argument("--seed", type=int, default=0)


#: engines that understand the parallel-execution options
PARALLEL_ENGINES = ("sssp", "dfsssp")


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers", type=int, default=0,
        help="fan SSSP/DFSSSP destination columns over N worker processes "
        "(0 = serial; results are bit-identical either way)",
    )
    p.add_argument(
        "--kernel", choices=KERNELS, default="python",
        help="SSSP/DFSSSP shortest-path kernel (the vectorized 'numpy' "
        "kernel is bit-identical to the reference 'python' heap)",
    )
    p.add_argument(
        "--cdg", choices=("incremental", "sharded", "rebuild"),
        default="incremental",
        help="DFSSSP cycle-breaking engine (the vectorized 'incremental' "
        "CSR engine, the 'sharded' independent-SCC batcher and the "
        "'rebuild' reference are all bit-identical)",
    )


def _engine_opts(args, name: str) -> dict:
    """Parallel options for ``make_engine(name, ...)``.

    Only SSSP/DFSSSP accept ``workers``/``kernel``; other engines get an
    empty dict so multi-engine commands (``route --engines minhop,dfsssp
    --workers 4``) keep working.
    """
    if name not in PARALLEL_ENGINES:
        return {}
    opts: dict = {}
    if getattr(args, "workers", 0):
        opts["workers"] = args.workers
    if getattr(args, "kernel", "python") != "python":
        opts["kernel"] = args.kernel
    if name == "dfsssp" and getattr(args, "cdg", "incremental") != "incremental":
        opts["cdg"] = args.cdg
    return opts


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE",
        help="write span start/stop events as JSON lines ('-' = stdout)",
    )
    p.add_argument(
        "--metrics", metavar="FILE",
        help="dump the metrics registry after the run "
        "('-' = stdout as Prometheus text; '*.json' = JSON; else Prometheus text)",
    )


def _dump_metrics(target: str) -> None:
    reg = get_registry()
    if target == "-":
        sys.stdout.write(reg.render_prometheus())
    elif target.endswith(".json"):
        atomic_write_text(target, reg.render_json() + "\n")
    else:
        atomic_write_text(target, reg.render_prometheus())


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--flight-out", metavar="FILE",
        help="dump the flight recorder (last-events ring) here after the "
        "run and on SIGTERM — post-mortem context for kills",
    )
    p.add_argument(
        "--health-out", metavar="FILE",
        help="write a machine-readable SLO health report here after the run",
    )


def _write_telemetry_artifacts(args, mode: str):
    """Honour --flight-out / --health-out at the end of a soak.

    Returns the health report (or None) so callers can surface it.
    """
    from repro.obs import get_recorder
    from repro.obs.slo import evaluate_slos, slos_for

    report = None
    if getattr(args, "flight_out", None):
        get_recorder().dump(args.flight_out)
    if getattr(args, "health_out", None):
        report = evaluate_slos(slos_for(mode), get_registry().snapshot())
        report.save(args.health_out)
    return report


def cmd_topo(args) -> int:
    fabric = _build_topo(args)
    print(fabric)
    print(f"  switches:  {fabric.num_switches}")
    print(f"  terminals: {fabric.num_terminals}")
    print(f"  cables:    {fabric.num_channels // 2}")
    if args.out:
        save_fabric(fabric, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_route(args) -> int:
    fabric = _build_topo(args)
    table = Table(
        ["engine", "status", "deadlock-free", "layers", "mean hops", "max hops"],
        title=f"routing on {fabric}",
    )
    for name in args.engines.split(","):
        try:
            result = make_engine(name, **_engine_opts(args, name)).route(fabric)
            paths = extract_paths(result.tables)
            layered = result.layered or LayeredRouting.single_layer(result.tables)
            report = verify_deadlock_free(layered, paths)
            lengths = paths.lengths()
            table.add_row(
                [
                    name,
                    "ok",
                    report.deadlock_free,
                    result.stats.get("layers_needed", result.num_layers),
                    float(lengths.mean()),
                    int(lengths.max(initial=0)),
                ]
            )
        except ReproError as err:
            table.add_row([name, f"failed: {type(err).__name__}", None, None, None, None])
    print(table.to_json() if args.json else table.render())
    return 0


def cmd_simulate(args) -> int:
    fabric = _build_topo(args)
    table = Table(
        ["engine", "eBB", "min", "max"],
        title=f"effective bisection bandwidth, {args.patterns} patterns, {fabric}",
    )
    for name in args.engines.split(","):
        try:
            result = make_engine(name, **_engine_opts(args, name)).route(fabric)
            sim = CongestionSimulator(result.tables)
            ebb = sim.effective_bisection_bandwidth(args.patterns, seed=args.seed)
            table.add_row([name, ebb.ebb, ebb.minimum, ebb.maximum])
        except ReproError:
            table.add_row([name, None, None, None])
    print(table.to_json() if args.json else table.render())
    return 0


def cmd_stats(args) -> int:
    """Render a ``--metrics`` JSON dump and/or a routing-cache listing."""
    if not args.file and not args.cache_dir and not args.trace_tree and not args.flight:
        raise ReproError(
            "stats needs a metrics file, --cache-dir, --trace-tree or --flight"
        )
    if args.trace_tree:
        from repro.obs.export import build_trace_tree, read_trace, trace_request_ids

        records = read_trace(args.trace_tree)
        if args.request:
            roots = build_trace_tree(records, request_id=args.request)
            if not roots:
                raise ReproError(
                    f"{args.trace_tree}: no spans with request_id {args.request!r} "
                    f"(known: {', '.join(trace_request_ids(records)) or 'none'})"
                )
            print(f"request {args.request}:")
        else:
            roots = build_trace_tree(records)
        from repro.obs.export import render_trace_tree

        print(render_trace_tree(roots))
    if args.flight:
        with open(args.flight, encoding="utf-8") as fp:
            dump = json.load(fp)
        events = dump.get("events", [])
        print(
            f"flight recorder: {dump.get('recorded', len(events))} events recorded, "
            f"{dump.get('evicted', 0)} evicted, showing {len(events)}"
        )
        table = Table(["seq", "kind", "request", "detail"], title=args.flight)
        for event in events:
            detail = " ".join(
                f"{k}={v}" for k, v in event.items()
                if k not in ("seq", "ts", "mono", "kind", "request_id") and v is not None
            )
            table.add_row(
                [event.get("seq"), event.get("kind"), event.get("request_id") or "-", detail]
            )
        print(table.render())
    if args.file:
        if args.file == "-":
            data = json.load(sys.stdin)
        else:
            with open(args.file, encoding="utf-8") as fp:
                data = json.load(fp)
        entries = data.get("metrics")
        if entries is None:
            raise ReproError(f"{args.file}: not a metrics dump (no 'metrics' key)")
        table = Table(["metric", "type", "labels", "value"], title="metrics registry")
        for e in entries:
            labels = ",".join(f"{k}={v}" for k, v in sorted(e.get("labels", {}).items())) or "-"
            if e["type"] == "histogram":
                table.add_row([f"{e['name']}_count", e["type"], labels, e["count"]])
                table.add_row([f"{e['name']}_sum", e["type"], labels, float(e["sum"])])
                table.add_row([f"{e['name']}_mean", e["type"], labels, float(e["mean"])])
            else:
                table.add_row([e["name"], e["type"], labels, e["value"]])
        print(table.render())
    if args.cache_dir:
        from repro.routing.cache import RoutingCache

        cache = RoutingCache(args.cache_dir)
        table = Table(
            ["key", "engine", "fingerprint", "layers", "bytes"],
            title=f"routing cache {args.cache_dir}",
        )
        for meta in cache.entries():
            stats = meta.get("stats", {})
            table.add_row(
                [
                    meta.get("key", "?"),
                    meta.get("engine", "?"),
                    str(meta.get("fingerprint", ""))[:12],
                    stats.get("layers_used"),
                    meta.get("bytes", 0),
                ]
            )
        print(table.render())
    return 0


def cmd_health(args) -> int:
    """Judge declarative SLOs against a recorded metrics dump."""
    from repro.obs.slo import evaluate_slos, load_slos, slos_for

    if args.file == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.file, encoding="utf-8") as fp:
            data = json.load(fp)
    if data.get("metrics") is None:
        raise ReproError(f"{args.file}: not a metrics dump (no 'metrics' key)")
    slos = load_slos(args.slos) if args.slos else slos_for(args.mode)
    report = evaluate_slos(slos, data)
    if args.out:
        report.save(args.out)
    if args.json:
        print(report.to_json())
    else:
        table = Table(
            ["slo", "objective", "value", "target", "burn", "verdict"],
            title=f"health ({args.mode} SLOs) from {args.file}",
        )
        for r in report.results:
            verdict = "SKIP" if r.compliant is None else ("ok" if r.compliant else "VIOLATED")
            table.add_row(
                [
                    r.name,
                    r.objective,
                    round(r.value, 6) if r.value is not None else None,
                    r.threshold,
                    round(r.burn_rate, 3) if r.burn_rate is not None else None,
                    verdict,
                ]
            )
        print(table.render())
        print(
            f"healthy: {report.healthy} "
            f"({len(report.evaluated)} evaluated, {len(report.violations)} violated)"
        )
    return 0 if report.healthy else 1


def cmd_vls(args) -> int:
    from repro.core import DFSSSPEngine, HEURISTICS
    from repro.routing.lash import LASHEngine

    fabric = _build_topo(args)
    table = Table(["algorithm", "virtual layers"], title=f"VL requirements on {fabric}")
    for heuristic in HEURISTICS:
        try:
            result = DFSSSPEngine(max_layers=args.max_layers, heuristic=heuristic).route(fabric)
            table.add_row([f"dfsssp/{heuristic}", result.stats["layers_needed"]])
        except ReproError:
            table.add_row([f"dfsssp/{heuristic}", None])
    try:
        result = LASHEngine(max_layers=args.max_layers).route(fabric)
        table.add_row(["lash", result.stats["layers_needed"]])
    except ReproError:
        table.add_row(["lash", None])
    print(table.render())
    return 0


def cmd_throughput(args) -> int:
    from repro.simulator import FlitSimulator, permutation_pattern, saturation_sweep

    fabric = _build_topo(args)
    pattern = permutation_pattern(fabric, seed=args.seed)
    rates = [float(r) for r in args.rates.split(",")]
    table = Table(
        ["engine", "offered", "delivered", "latency [cyc]", "deadlocked"],
        title=f"open-loop throughput on {fabric}",
    )
    for name in args.engines.split(","):
        result = make_engine(name, **_engine_opts(args, name)).route(fabric)
        sim = FlitSimulator(
            result.tables,
            layered=result.layered,
            buffer_depth=args.buffers,
            packet_length=args.packet_length,
        )
        for r in saturation_sweep(
            sim, pattern, rates=rates, warmup=args.warmup, measure=args.measure, seed=args.seed
        ):
            table.add_row([name, r.offered_rate, r.delivered_rate, r.mean_latency, r.deadlocked])
    print(table.render())
    return 0


def cmd_orcs(args) -> int:
    from repro.simulator.orcs import run_orcs

    fabric = _build_topo(args)
    for name in args.engines.split(","):
        result = make_engine(name).route(fabric)
        orcs = run_orcs(
            result.tables,
            pattern=args.pattern,
            metric=args.metric,
            num_runs=args.runs,
            seed=args.seed,
        )
        print(f"--- {name} ---")
        print(orcs.report())
    return 0


def cmd_bisection(args) -> int:
    from repro.analysis import estimate_bisection

    fabric = _build_topo(args)
    est = estimate_bisection(fabric, restarts=args.restarts, seed=args.seed)
    kind = "exact" if est.exact else "heuristic upper bound"
    print(f"fabric            : {fabric}")
    print(f"bisection width   : {est.cut_capacity:g} link(s) ({kind})")
    print(f"terminal split    : {est.terminals_a} | {est.terminals_b}")
    print(f"per-pair bandwidth: {est.per_pair_bandwidth:.3f} of link speed")
    return 0


def cmd_des(args) -> int:
    from repro.des import run_scenario

    if args.scenario == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.scenario) as fh:
            raw = json.load(fh)
    scenarios = raw if isinstance(raw, list) else [raw]
    # CLI-pinned engine options win over per-scenario ones so a sweep can
    # run every scenario under one kernel/worker configuration.
    cli_opts: dict = {}
    if getattr(args, "workers", 0):
        cli_opts["workers"] = args.workers
    if getattr(args, "kernel", "python") != "python":
        cli_opts["kernel"] = args.kernel
    if getattr(args, "cdg", "incremental") != "incremental":
        cli_opts["cdg"] = args.cdg
    if cli_opts:
        scenarios = [
            {**spec, "engine_opts": {**spec.get("engine_opts", {}), **cli_opts}}
            for spec in scenarios
        ]
    reports = [run_scenario(spec) for spec in scenarios]
    payload = [r.to_dict() for r in reports]
    out_doc = payload[0] if not isinstance(raw, list) else payload
    if args.out:
        atomic_write_text(args.out, json.dumps(out_doc, indent=2) + "\n")
    if args.events_out:
        events = {
            r.scenario["name"]: {
                name: outcome.log
                for name, outcome in r.outcomes.items()
                if outcome.log is not None
            }
            for r in reports
        }
        atomic_write_text(args.events_out, json.dumps(events, indent=1) + "\n")
    if args.json:
        print(json.dumps(out_doc, indent=2))
    else:
        for report in reports:
            spec = report.scenario
            table = Table(
                ["engine", "status", "flows", "fct p50 [us]", "fct p99 [us]",
                 "Gbytes/s", "drops", "lost", "max queue", "layers"],
                title=f"des: {spec['name']} ({spec['workload']['kind']}, "
                f"{report.fabric_summary['terminals']} terminals)",
            )
            for name in spec["engines"]:
                res = report.results[name]
                if "error" in res:
                    table.add_row([name, "error", res["error"], "", "", "", "", "", "", ""])
                    continue
                fct = res["fct"]
                table.add_row([
                    name,
                    res["status"],
                    f"{res['flows_completed']}/{res['flows_released']}",
                    round(fct["p50"] * 1e6, 3) if fct["p50"] is not None else "-",
                    round(fct["p99"] * 1e6, 3) if fct["p99"] is not None else "-",
                    round(res["throughput_bytes_per_s"] / 1e9, 3),
                    res["dropped"],
                    res["lost"],
                    res["queues"]["max_occupancy"],
                    res["layers"],
                ])
            print(table.render())
            for name in spec["engines"]:
                for note in report.results[name].get("faults", []):
                    print(f"  fault[{name}]: {note}")
            if args.out:
                print(f"report saved to {args.out}")
    ok = all(
        any("error" not in res for res in report.results.values())
        for report in reports
    )
    return 0 if ok else 1


def cmd_chaos(args) -> int:
    from repro.resilience import ChaosRunner

    fabric = _build_topo(args)
    runner = ChaosRunner(
        make_engine(args.engine, **_engine_opts(args, args.engine)),
        verify=not args.no_verify,
    )
    report = runner.run(
        fabric,
        num_events=args.events,
        seed=args.chaos_seed,
        p_switch_down=args.p_switch_down,
        p_link_up=args.p_link_up,
    )
    summary = report.summary()
    if args.out:
        report.save(args.out)
    _write_telemetry_artifacts(args, mode="chaos")
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        table = Table(
            ["field", "value"],
            title=f"chaos soak: {args.engine} on {fabric}, seed {args.chaos_seed}",
        )
        for key in (
            "events_requested",
            "events_applied",
            "incremental_repairs",
            "full_reroutes",
            "escalations",
            "destinations_repaired",
            "destinations_examined",
        ):
            table.add_row([key, summary[key]])
        for kind, count in sorted(summary["events_by_kind"].items()):
            table.add_row([f"events[{kind}]", count])
        if summary["mean_repair_seconds"] is not None:
            table.add_row(["mean repair [s]", round(summary["mean_repair_seconds"], 6)])
        if summary["mean_full_reroute_seconds"] is not None:
            table.add_row(
                ["mean full reroute [s]", round(summary["mean_full_reroute_seconds"], 6)]
            )
        table.add_row(["survived", summary["survived"]])
        print(table.render())
        if args.out:
            print(f"report saved to {args.out}")
    return 0 if report.survived else 1


def cmd_serve(args) -> int:
    from repro.obs import get_recorder, install_signal_dump, record_event
    from repro.obs.slo import SLOEngine, slos_for
    from repro.resilience import run_service_soak
    from repro.service import BackoffPolicy, RoutingSupervisor, ServicePolicy

    if args.flight_out:
        # A SIGTERM mid-soak still leaves a post-mortem dump behind.
        install_signal_dump(args.flight_out)

    def _deadline(value: float) -> float | None:
        return None if value <= 0 else value

    inject = frozenset(
        int(x) for x in (args.inject_timeout_at or "").split(",") if x.strip()
    )
    soak_kwargs = {
        "seed": args.chaos_seed,
        "p_switch_down": args.p_switch_down,
        "p_link_up": args.p_link_up,
        "burst_max": args.burst_max,
    }
    if args.restore:
        if not args.checkpoint_dir:
            raise ReproError("serve --restore requires --checkpoint-dir")
        supervisor = RoutingSupervisor.restore(
            args.checkpoint_dir, cache_dir=args.cache_dir
        )
        # A restored soak must replay the original stream: the persisted
        # parameters win over whatever defaults the restart command used.
        persisted = supervisor.extra.get("soak", {})
        events = persisted.get("num_events", args.events)
        for key in ("seed", "p_switch_down", "p_link_up", "burst_max"):
            if key in persisted:
                soak_kwargs[key] = persisted[key]
    else:
        fabric = _build_topo(args)
        policy = ServicePolicy(
            repair_deadline_s=_deadline(args.repair_deadline),
            full_deadline_s=_deadline(args.full_deadline),
            backoff=BackoffPolicy(max_attempts=args.max_attempts),
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            fallback_engine=args.fallback or None,
            checkpoint_every=args.checkpoint_every,
            keep_checkpoints=args.keep_checkpoints,
        )
        supervisor = RoutingSupervisor(
            fabric,
            engine=args.engine,
            policy=policy,
            checkpoint_dir=args.checkpoint_dir,
            cache_dir=args.cache_dir,
            seed=args.seed,
            engine_opts=_engine_opts(args, args.engine),
        )
        events = args.events

    kill_fn = None
    if args.kill_after is not None:
        if not args.checkpoint_dir:
            raise ReproError("serve --kill-after requires --checkpoint-dir")

        def kill_fn() -> None:
            # Simulate SIGKILL: no cleanup, no atexit, no report. The
            # checkpoint written by the preceding batch is all that
            # survives — exactly what `serve --restore` must cope with.
            # The flight recorder dumps first: its last events are the
            # post-mortem explanation of this kill.
            record_event(
                "kill", reason="simulated SIGKILL (--kill-after)",
                events_submitted=supervisor.events_submitted,
            )
            if args.flight_out:
                get_recorder().dump(args.flight_out)
            sys.stderr.write(
                f"serve: simulating hard kill after "
                f"{supervisor.events_submitted} events\n"
            )
            sys.stderr.flush()
            os._exit(137)

    slo_engine = (
        SLOEngine(slos_for("service")) if (args.health_out or args.top) else None
    )

    def on_batch(record: dict) -> None:
        health = slo_engine.tick() if slo_engine is not None else None
        if args.top:
            from repro.obs.export import render_top

            out = render_top(
                served=supervisor.serving(),
                report=health,
                recorder=get_recorder(),
                batches=supervisor.batches,
                events=supervisor.events_submitted,
            )
            if sys.stdout.isatty():  # pragma: no cover - interactive only
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(out)
            sys.stdout.flush()

    report = run_service_soak(
        supervisor,
        events,
        inject_timeout_at=inject,
        kill_after=args.kill_after,
        kill_fn=kill_fn,
        on_batch=on_batch,
        **soak_kwargs,
    )
    summary = report.summary()
    if args.out:
        report.save(args.out)
    health = _write_telemetry_artifacts(args, mode="service")
    if health is not None and not health.healthy:
        summary["slo_violations"] = [r.name for r in health.violations]
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        table = Table(
            ["field", "value"],
            title=f"service soak: {summary['engine']} on {summary['fabric']}, "
            f"seed {summary['seed']}",
        )
        for key in (
            "events_requested",
            "events_submitted",
            "skipped_events",
            "batches",
            "ladder_attempts",
            "compute_timeouts",
            "stale_serves",
            "final_state",
            "final_version",
        ):
            table.add_row([key, summary[key]])
        for action, count in sorted(summary["batches_by_action"].items()):
            table.add_row([f"batches[{action}]", count])
        table.add_row(["survived", summary["survived"]])
        if summary["failure"]:
            table.add_row(["failure", summary["failure"]])
        print(table.render())
        if args.out:
            print(f"report saved to {args.out}")
    return 0 if report.survived else 1


def cmd_fleet_soak(args) -> int:
    """Fleet chaos soak: concurrent requests + worker SIGKILLs.

    Builds ``--fabrics`` fabrics from the topology arguments (the
    ``random`` family varies its seed per fabric, so the shards differ),
    shards them across ``--workers`` fault-isolated worker processes and
    replays ``--requests`` concurrent requests while SIGKILLing
    ``--kills`` workers mid-run. Exit 0 iff the run passed: zero
    unserved requests, every kill respawned, every respawned shard
    restored from checkpoint and certificate-verified, full recovery,
    and the fleet SLO set green.
    """
    from repro.fleet import FleetConfig, FleetManager, run_fleet_soak
    from repro.obs import install_signal_dump

    if args.flight_out:
        install_signal_dump(args.flight_out)
    fabrics = {}
    base_seed = args.seed
    try:
        for i in range(args.fabrics):
            args.seed = base_seed + i
            fabrics[f"fab-{i:02d}"] = _build_topo(args)
    finally:
        args.seed = base_seed
    root = args.root
    if not root:
        import tempfile

        root = tempfile.mkdtemp(prefix="repro-fleet-")
    config = FleetConfig(
        workers=args.workers,
        engine=args.engine,
        request_timeout_s=args.request_timeout,
        retries=args.retries,
        heartbeat_timeout_s=args.heartbeat_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        degraded_delay_s=args.degraded_delay,
    )
    with FleetManager(fabrics, root, config) as manager:
        report = run_fleet_soak(
            manager,
            requests=args.requests,
            kills=args.kills,
            seed=args.soak_seed,
            concurrency=args.concurrency,
            fault_ratio=args.fault_ratio,
            health_ratio=args.health_ratio,
            tenants=args.tenants,
        )
    summary = report.summary()
    if args.out:
        report.save(args.out)
    _write_telemetry_artifacts(args, mode="fleet")
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        table = Table(
            ["field", "value"],
            title=f"fleet soak: {len(fabrics)} fabrics / {args.workers} workers, "
            f"seed {args.soak_seed}",
        )
        for key in (
            "requests_sent", "served_ok", "served_degraded", "failed",
            "retries", "stale_serves", "faults_applied", "faults_deferred",
            "kills", "respawns", "respawned_shards_certified",
            "recovered", "throughput_rps",
        ):
            value = summary[key]
            if isinstance(value, float):
                value = round(value, 3)
            table.add_row([key, value])
        lat = summary.get("latency") or {}
        for key in ("p50_s", "p95_s", "p99_s"):
            if key in lat:
                table.add_row([f"latency[{key}]", round(lat[key], 6)])
        table.add_row(["slo healthy", report.slo.get("healthy")])
        table.add_row(["passed", summary["passed"]])
        if summary["failure"]:
            table.add_row(["failure", summary["failure"]])
        print(table.render())
        if args.out:
            print(f"report saved to {args.out}")
        print(f"fleet root: {root}")
    return 0 if report.passed else 1


def cmd_checkpoint(args) -> int:
    from repro.service import CheckpointStore

    store = CheckpointStore(args.dir)
    if args.version is None and store.latest_version() is None:
        raise ReproError(f"{args.dir}: no checkpoint found")
    ckpt = store.load(args.version)
    state = ckpt.state

    deadlock_free = None
    routable = True
    problem = None
    try:
        paths = extract_paths(ckpt.result.tables)
    except ReproError as err:
        routable = False
        problem = str(err)
    else:
        if ckpt.result.layered is not None:
            vr = verify_deadlock_free(ckpt.result.layered, paths)
            deadlock_free = vr.deadlock_free
            if not vr.deadlock_free:
                problem = f"cyclic layer CDG: layers {sorted(vr.cycles)}"
    ok = routable and deadlock_free is not False

    info = {
        "dir": str(store.root),
        "version": ckpt.version,
        "path": str(ckpt.path),
        "engine": state.get("engine"),
        "state": state.get("state"),
        "stale": state.get("stale"),
        "lkg_version": state.get("lkg_version"),
        "baseline": repr(ckpt.baseline),
        "serving": repr(ckpt.degraded.fabric),
        "dead_switches": len(state.get("dead_switches", [])),
        "dead_cables": len(state.get("dead_cables", [])),
        "uncommitted_events": len(state.get("uncommitted", [])),
        "events_submitted": state.get("events_submitted"),
        "layers_used": ckpt.result.layers_used,
        "routable": routable,
        "deadlock_free": deadlock_free,
        "ok": ok,
    }
    if problem:
        info["problem"] = problem
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        table = Table(["field", "value"], title=f"checkpoint {store._name(ckpt.version)}")
        for key, value in info.items():
            table.add_row([key, value])
        print(table.render())
    return 0 if ok else 1


def cmd_deadlock(args) -> int:
    fabric = _build_topo(args)
    pattern = shift_pattern(fabric, args.shift)
    for name in args.engines.split(","):
        result = make_engine(name, **_engine_opts(args, name)).route(fabric)
        sim = FlitSimulator(
            result.tables,
            layered=result.layered,
            buffer_depth=args.buffers,
            packet_length=args.packet_length,
        )
        outcome = sim.run(pattern, packets_per_flow=args.packets)
        print(
            f"{name:8s} -> {outcome.status:10s} cycles={outcome.cycles} "
            f"delivered={outcome.delivered} in-flight={outcome.in_flight}"
        )
        if outcome.deadlocked:
            print(f"         wait-for cycle: {outcome.waitfor_cycle}")
    return 0


def _certify_load_routing(args):
    """The (tables, layered) pair the ``certify`` subcommand operates on."""
    fabric = _build_topo(args)
    if getattr(args, "lft", None):
        from pathlib import Path

        from repro.network.opensm_export import import_lft, import_sl_assignment

        tables = import_lft(Path(args.lft).read_text(), fabric)
        if getattr(args, "sl", None):
            layered = import_sl_assignment(Path(args.sl).read_text(), tables)
        else:
            layered = LayeredRouting.single_layer(tables)
    elif getattr(args, "routing", None):
        from repro.routing.io import load_routing_state

        state = load_routing_state(args.routing, fabric)
        tables = state.tables
        layered = state.layered or LayeredRouting.single_layer(tables)
    else:
        result = make_engine(args.engine, **_engine_opts(args, args.engine)).route(fabric)
        tables = result.tables
        layered = result.layered or LayeredRouting.single_layer(tables)
    return tables, layered


def cmd_certify(args) -> int:
    """Emit or validate deadlock-freedom certificates.

    Emission: route (or import a saved routing / OpenSM LFT dump), derive
    the certificate, run it through the independent checker and print the
    verdict; ``--out`` persists the JSON. ``--check CERT`` validates an
    existing certificate instead — standalone, or bound against a routing
    when ``--routing``/``--lft`` names one. Exit 1 on any rejection, with
    the witness edge and minimal counterexample cycle printed.
    """
    from repro.deadlock import checker
    from repro.deadlock.certificate import (
        DeadlockFreedomCertificate,
        check_against_routing,
        emit_certificate,
    )
    from repro.exceptions import CertificateError

    if args.check:
        res = checker.check_file(args.check)
        mode = "standalone"
        bind = getattr(args, "lft", None) or getattr(args, "routing", None) or args.bind
        if res.ok and bind:
            tables, layered = _certify_load_routing(args)
            cert = DeadlockFreedomCertificate.load(args.check)
            res = check_against_routing(cert, layered, extract_paths(tables))
            mode = "bound to routing"
        if args.json:
            print(json.dumps({
                "ok": res.ok, "mode": mode, "reason": res.reason,
                "layer": res.layer,
                "witness_edge": list(res.witness_edge) if res.witness_edge else None,
                "counterexample": res.counterexample,
                "layers": res.layers, "nodes": res.nodes, "edges": res.edges,
            }, indent=2))
        else:
            print(f"{args.check} ({mode}): {res.summary()}")
        return 0 if res.ok else 1

    tables, layered = _certify_load_routing(args)
    paths = extract_paths(tables)
    try:
        cert = emit_certificate(layered, paths)
    except CertificateError as err:
        print(f"cannot certify: {err}", file=sys.stderr)
        if err.counterexample:
            chain = " -> ".join(str(c) for c in err.counterexample)
            print(f"counterexample cycle: {chain}", file=sys.stderr)
        return 1
    res = cert.check()  # independent re-check of our own emission
    if args.out:
        cert.save(args.out)
    info = {
        "engine": cert.engine,
        "fingerprint": cert.fingerprint,
        "layers": cert.num_layers,
        "cdg_nodes": cert.num_nodes,
        "dependency_edges": cert.num_edges,
        "paths": int(len(cert.path_layers)),
        "checker_verdict": res.summary(),
        "ok": res.ok,
    }
    if args.out:
        info["out"] = str(args.out)
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        table = Table(["field", "value"], title="deadlock-freedom certificate")
        for key, value in info.items():
            table.add_row([key, value])
        print(table.render())
    return 0 if res.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-route", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topo", help="generate / inspect a topology")
    _add_topo_args(p)
    p.add_argument("--out", help="save fabric JSON here")
    p.set_defaults(func=cmd_topo)

    p = sub.add_parser("route", help="run routing engines, show path stats")
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engines", "--engine", default=",".join(PAPER_ENGINES))
    p.add_argument("--json", action="store_true", help="machine-readable JSON output")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("simulate", help="effective bisection bandwidth")
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engines", "--engine", default="minhop,dfsssp")
    p.add_argument("--patterns", type=int, default=50)
    p.add_argument("--json", action="store_true", help="machine-readable JSON output")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("vls", help="virtual-lane requirements")
    _add_topo_args(p)
    p.add_argument("--max-layers", type=int, default=16)
    p.set_defaults(func=cmd_vls)

    p = sub.add_parser("throughput", help="open-loop saturation sweep")
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engines", "--engine", default="dfsssp")
    p.add_argument("--rates", default="0.1,0.3,0.6,0.9")
    p.add_argument("--buffers", type=int, default=2)
    p.add_argument("--packet-length", type=int, default=1, dest="packet_length")
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--measure", type=int, default=500)
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser("orcs", help="ORCS-style pattern/metric evaluation")
    _add_topo_args(p)
    p.add_argument("--engines", default="dfsssp")
    p.add_argument("--pattern", default="bisect")
    p.add_argument("--metric", default="avg_bandwidth")
    p.add_argument("--runs", type=int, default=50)
    p.set_defaults(func=cmd_orcs)

    p = sub.add_parser("bisection", help="theoretical bisection estimate")
    _add_topo_args(p)
    p.add_argument("--restarts", type=int, default=4)
    p.set_defaults(func=cmd_bisection)

    p = sub.add_parser("deadlock", help="flit-level deadlock experiment")
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engines", "--engine", default="sssp,dfsssp")
    p.add_argument("--shift", type=int, default=2)
    p.add_argument("--buffers", type=int, default=1)
    p.add_argument("--packets", type=int, default=8)
    p.add_argument("--packet-length", type=int, default=1, dest="packet_length")
    p.set_defaults(func=cmd_deadlock)

    p = sub.add_parser(
        "des",
        help="packet-level DES scenario sweep (FCT percentiles, queue "
        "occupancy, faults mid-collective; see docs/des.md)",
    )
    p.add_argument(
        "--scenario", required=True, metavar="FILE",
        help="scenario JSON: one dict or a list of dicts ('-' = stdin)",
    )
    p.add_argument("--out", metavar="FILE", help="write the JSON report here")
    p.add_argument(
        "--events-out", metavar="FILE",
        help="write recorded event logs here (needs \"record_events\": true)",
    )
    p.add_argument("--json", action="store_true", help="print the JSON report")
    _add_obs_args(p)
    _add_parallel_args(p)
    p.set_defaults(func=cmd_des)

    p = sub.add_parser("chaos", help="fault-injection soak (degrade/repair/verify)")
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engine", default="dfsssp", help="engine under test")
    p.add_argument("--events", type=int, default=50, help="fault events to inject")
    p.add_argument("--chaos-seed", type=int, default=0, help="fault-stream RNG seed")
    p.add_argument("--p-switch-down", type=float, default=0.15, dest="p_switch_down")
    p.add_argument("--p-link-up", type=float, default=0.2, dest="p_link_up")
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip per-event reachability / deadlock-freedom verification",
    )
    p.add_argument("--out", help="write the full report (summary + events) as JSON")
    p.add_argument("--json", action="store_true", help="print the summary as JSON")
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="supervised service-mode soak (deadlines, backoff, checkpoint/restore)",
    )
    _add_topo_args(p)
    _add_obs_args(p)
    _add_parallel_args(p)
    p.add_argument("--engine", default="dfsssp", help="primary routing engine")
    p.add_argument("--events", type=int, default=50, help="fault events to inject")
    p.add_argument("--chaos-seed", type=int, default=0, help="fault-stream RNG seed")
    p.add_argument("--p-switch-down", type=float, default=0.15, dest="p_switch_down")
    p.add_argument("--p-link-up", type=float, default=0.2, dest="p_link_up")
    p.add_argument(
        "--burst-max", type=int, default=1,
        help="submit up to N events per batch (exercises coalescing)",
    )
    p.add_argument(
        "--repair-deadline", type=float, default=5.0,
        help="incremental-repair budget in seconds (<= 0 disables the deadline)",
    )
    p.add_argument(
        "--full-deadline", type=float, default=30.0,
        help="full-reroute budget in seconds (<= 0 disables the deadline)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per escalation rung before moving on",
    )
    p.add_argument("--breaker-threshold", type=int, default=3)
    p.add_argument("--breaker-cooldown", type=float, default=30.0)
    p.add_argument(
        "--fallback", default="updown",
        help="last-resort engine ('' disables the fallback rung)",
    )
    p.add_argument("--checkpoint-dir", help="persist checkpoints here (enables restore)")
    p.add_argument(
        "--cache-dir",
        help="fingerprint-keyed routing cache (warm-starts full reroutes)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="checkpoint after every N accepted batches",
    )
    p.add_argument("--keep-checkpoints", type=int, default=3)
    p.add_argument(
        "--inject-timeout-at", metavar="I,J,...",
        help="event indices where the repair deadline is forced to zero",
    )
    p.add_argument(
        "--kill-after", type=int, metavar="N",
        help="simulate SIGKILL (exit 137) once N events are submitted",
    )
    p.add_argument(
        "--restore", action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir "
        "(replays the persisted soak parameters)",
    )
    p.add_argument("--out", help="write the full report (summary + batches) as JSON")
    p.add_argument("--json", action="store_true", help="print the summary as JSON")
    _add_telemetry_args(p)
    p.add_argument(
        "--top", action="store_true",
        help="redraw a top-style live health view after every batch "
        "(supervisor state, SLO table, flight-recorder tail)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet-soak",
        help="fleet chaos soak (sharded workers, SIGKILLs, degradation)",
    )
    _add_topo_args(p)
    _add_obs_args(p)
    p.add_argument(
        "--fabrics", type=int, default=4,
        help="number of fabrics to shard (random family varies seed per fabric)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="fault-isolated worker processes hosting the shards",
    )
    p.add_argument("--engine", default="dfsssp", help="routing engine per shard")
    p.add_argument("--requests", type=int, default=1000, help="requests to replay")
    p.add_argument(
        "--kills", type=int, default=2,
        help="workers to SIGKILL at evenly spaced points mid-run",
    )
    p.add_argument("--soak-seed", type=int, default=0, help="request-schedule seed")
    p.add_argument("--concurrency", type=int, default=8, help="client threads")
    p.add_argument("--fault-ratio", type=float, default=0.10, dest="fault_ratio")
    p.add_argument("--health-ratio", type=float, default=0.05, dest="health_ratio")
    p.add_argument("--tenants", type=int, default=4, help="tenant ids to rotate")
    p.add_argument(
        "--root",
        help="fleet state dir (checkpoints/cache/flight dumps); default temp dir",
    )
    p.add_argument(
        "--request-timeout", type=float, default=30.0, dest="request_timeout",
        help="per-request deadline in seconds",
    )
    p.add_argument("--retries", type=int, default=2, help="retries after the first attempt")
    p.add_argument("--heartbeat-timeout", type=float, default=2.0, dest="heartbeat_timeout")
    p.add_argument("--breaker-threshold", type=int, default=3)
    p.add_argument("--breaker-cooldown", type=float, default=1.0)
    p.add_argument(
        "--degraded-delay", type=float, default=0.1, dest="degraded_delay",
        help="backpressure pacing per degraded serve in seconds",
    )
    p.add_argument("--out", help="write the full soak report as JSON")
    p.add_argument("--json", action="store_true", help="print the summary as JSON")
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_fleet_soak)

    p = sub.add_parser("checkpoint", help="inspect / verify a service checkpoint")
    p.add_argument("dir", help="checkpoint directory (as passed to serve)")
    p.add_argument(
        "--version", type=int,
        help="inspect this checkpoint version instead of CURRENT",
    )
    p.add_argument("--json", action="store_true", help="machine-readable JSON output")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "certify",
        help="emit / validate deadlock-freedom certificates",
    )
    _add_topo_args(p)
    p.add_argument(
        "--engine", default="dfsssp", choices=sorted(PAPER_ENGINES),
        help="engine to route with when no routing source is given",
    )
    _add_parallel_args(p)
    p.add_argument(
        "--routing", metavar="NPZ",
        help="certify a saved routing state instead of routing fresh",
    )
    p.add_argument(
        "--lft", metavar="FILE",
        help="certify an imported OpenSM-style LFT dump (see opensm_export)",
    )
    p.add_argument(
        "--sl", metavar="FILE",
        help="SL assignment dump accompanying --lft (default: single layer)",
    )
    p.add_argument(
        "--check", metavar="CERT",
        help="validate an existing certificate instead of emitting one; "
        "combine with --routing/--lft to also re-bind it to that routing",
    )
    p.add_argument(
        "--bind", action="store_true",
        help="with --check and no --routing/--lft: route the described "
        "topology with --engine and bind the certificate against that",
    )
    p.add_argument("--out", help="write the emitted certificate JSON here")
    p.add_argument("--json", action="store_true", help="machine-readable JSON output")
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser(
        "stats", help="render metrics dumps, trace trees and flight dumps"
    )
    p.add_argument("file", nargs="?", help="metrics JSON file ('-' = stdin)")
    p.add_argument(
        "--cache-dir",
        help="also list the routing-cache entries under this directory",
    )
    p.add_argument(
        "--trace-tree", metavar="FILE",
        help="render a --trace JSONL file as an indented span tree",
    )
    p.add_argument(
        "--request", metavar="ID",
        help="restrict --trace-tree to one request id's causal tree",
    )
    p.add_argument(
        "--flight", metavar="FILE",
        help="render a flight-recorder dump (--flight-out) as a table",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "health", help="judge declarative SLOs against a metrics dump"
    )
    p.add_argument("file", help="metrics JSON dump ('-' = stdin)")
    p.add_argument(
        "--mode", choices=("service", "chaos", "fleet"), default="service",
        help="which default SLO set to evaluate",
    )
    p.add_argument(
        "--slos", metavar="FILE",
        help="custom SLO definitions (JSON list) instead of the defaults",
    )
    p.add_argument("--out", help="write the machine-readable health report here")
    p.add_argument("--json", action="store_true", help="print the report as JSON")
    p.set_defaults(func=cmd_health)

    args = parser.parse_args(argv)
    sink = prev_sink = None
    try:
        if getattr(args, "trace", None):
            sink = JsonlSink(sys.stdout if args.trace == "-" else args.trace)
            prev_sink = set_sink(sink)
        rc = args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. `| head`); suppress the exit-flush noise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            set_sink(prev_sink)
            sink.close()
    if getattr(args, "metrics", None):
        try:
            _dump_metrics(args.metrics)
        except OSError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
