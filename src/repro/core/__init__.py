"""The paper's primary contribution: SSSP routing, DFSSSP layer
assignment, the APP formalism, its exact solver, and the Theorem 1
reduction."""

from repro.core.sssp import SSSPEngine
from repro.core.dfsssp import DFSSSPEngine
from repro.core.layers import (
    DEFAULT_MAX_LAYERS,
    LayerAssignment,
    assign_layers_offline,
    assign_layers_online,
)
from repro.core.heuristics import (
    HEURISTICS,
    first_edge,
    get_heuristic,
    strongest_edge,
    weakest_edge,
)
from repro.core.multipath import (
    ConcatenatedPaths,
    MultipathCongestionSimulator,
    MultipathDFSSSPEngine,
    MultipathRouting,
)
from repro.core.app import APPInstance, APPPath, nondeterministic_verify
from repro.core.app_exact import has_k_cover, minimum_cover
from repro.core.app_reduction import (
    chromatic_number,
    coloring_to_app,
    coloring_to_cover,
    cover_to_coloring,
    is_proper_coloring,
)

__all__ = [
    "ConcatenatedPaths",
    "MultipathCongestionSimulator",
    "MultipathDFSSSPEngine",
    "MultipathRouting",
    "SSSPEngine",
    "DFSSSPEngine",
    "DEFAULT_MAX_LAYERS",
    "LayerAssignment",
    "assign_layers_offline",
    "assign_layers_online",
    "HEURISTICS",
    "first_edge",
    "get_heuristic",
    "strongest_edge",
    "weakest_edge",
    "APPInstance",
    "APPPath",
    "nondeterministic_verify",
    "has_k_cover",
    "minimum_cover",
    "chromatic_number",
    "coloring_to_app",
    "coloring_to_cover",
    "cover_to_coloring",
    "is_proper_coloring",
]
