"""The Acyclic Path Partitioning (APP) problem — §III-A formalism.

The paper models virtual-layer assignment abstractly: given a *generator*
``P`` (a set of paths over channel labels — the nodes of a channel
dependency graph) and an integer ``k``, is there a partition of ``P``
into ``k`` non-empty classes whose induced graphs are all acyclic?

This module provides the formal objects (paths, instances, covers) and a
validator for candidate covers; :mod:`repro.core.app_exact` solves small
instances exactly, and :mod:`repro.core.app_reduction` implements the
Theorem 1 reduction from graph k-colorability.

Labels are arbitrary hashable objects, so the same machinery serves both
the abstract NP-completeness experiments and concrete CDG paths (channel
ids).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class APPPath:
    """A path ``c_0 c_1 ... c_n`` with pairwise-distinct labels."""

    labels: tuple[Hashable, ...]

    def __post_init__(self):
        if len(set(self.labels)) != len(self.labels):
            raise ValueError(f"path labels must be distinct, got {self.labels}")
        if not self.labels:
            raise ValueError("a path needs at least one label")

    @property
    def nodes(self) -> frozenset:
        return frozenset(self.labels)

    @property
    def edges(self) -> tuple[tuple[Hashable, Hashable], ...]:
        return tuple(
            (self.labels[i], self.labels[i + 1]) for i in range(len(self.labels) - 1)
        )

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class APPInstance:
    """A generator ``P`` (the decision problem's ``k`` is a call argument)."""

    paths: list[APPPath] = field(default_factory=list)

    @classmethod
    def from_sequences(cls, seqs: Iterable[Sequence[Hashable]]) -> "APPInstance":
        return cls([APPPath(tuple(s)) for s in seqs])

    def induced_edges(self, subset: Iterable[int]) -> set[tuple[Hashable, Hashable]]:
        """Edge set of the induced graph ``G[{p_i : i in subset}]``."""
        out: set[tuple[Hashable, Hashable]] = set()
        for i in subset:
            out.update(self.paths[i].edges)
        return out

    def subset_acyclic(self, subset: Iterable[int]) -> bool:
        """Is the induced graph of the given path indices acyclic?"""
        return _edges_acyclic(self.induced_edges(subset))

    def is_cover(self, partition: Sequence[Iterable[int]]) -> bool:
        """Validate the paper's four cover conditions:

        i. every class non-empty, ii. classes cover all paths,
        iii. classes pairwise disjoint, iv. every induced graph acyclic.
        """
        seen: set[int] = set()
        for part in partition:
            part = list(part)
            if not part:  # (i)
                return False
            if seen.intersection(part):  # (iii)
                return False
            seen.update(part)
            if not self.subset_acyclic(part):  # (iv)
                return False
        return seen == set(range(len(self.paths)))  # (ii)

    def __len__(self) -> int:
        return len(self.paths)


def _edges_acyclic(edges: set[tuple[Hashable, Hashable]]) -> bool:
    """Kahn's algorithm on an edge set."""
    succ: dict[Hashable, list[Hashable]] = {}
    indeg: dict[Hashable, int] = {}
    for a, b in edges:
        succ.setdefault(a, []).append(b)
        indeg[b] = indeg.get(b, 0) + 1
        indeg.setdefault(a, 0)
    ready = [n for n, d in indeg.items() if d == 0]
    removed = 0
    while ready:
        n = ready.pop()
        removed += 1
        for m in succ.get(n, ()):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
    return removed == len(indeg)


def nondeterministic_verify(instance: APPInstance, assignment: Sequence[int], k: int) -> bool:
    """The paper's NP-membership certificate check: given a truth
    assignment ``g: P -> {0..k-1}``, validate the partition in polynomial
    time (one cycle search per class)."""
    if len(assignment) != len(instance.paths):
        return False
    if any(not (0 <= g < k) for g in assignment):
        return False
    classes: list[list[int]] = [[] for _ in range(k)]
    for i, g in enumerate(assignment):
        classes[g].append(i)
    # Drop empty classes: a valid g with fewer used classes still witnesses
    # "k classes suffice" (pad by splitting is always possible? no —
    # condition (i) requires non-empty classes, so require exactly the
    # used classes to be a cover for some k' <= k).
    used = [c for c in classes if c]
    return bool(used) and instance.is_cover(used)
