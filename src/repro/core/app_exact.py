"""Exact solver for small APP instances.

Backtracking over path→class assignments with two standard prunings:

* symmetry breaking — path ``i`` may only open class ``max_used + 1``;
* incremental acyclicity — a partial assignment is abandoned as soon as
  one class's induced graph is cyclic (induced graphs only grow).

Exponential, of course (the problem is NP-complete — Theorem 1); intended
for instances of ≲ 15 paths. Used to certify heuristic layer counts and
to test the k-colorability reduction in both directions.
"""

from __future__ import annotations

from repro.core.app import APPInstance


def has_k_cover(instance: APPInstance, k: int) -> bool:
    """Decide the APP problem ⟨P, k⟩ (partition into exactly ``k``
    non-empty classes with acyclic induced graphs)."""
    n = len(instance.paths)
    if n == 0 or k <= 0 or k > n:
        return False
    if k == n:
        return True  # singletons: each path alone is acyclic
    return _search(instance, k)


def minimum_cover(instance: APPInstance) -> tuple[int, list[list[int]]]:
    """Smallest ``k`` admitting a cover, with a witness partition.

    Every single path is acyclic, so ``k = |P|`` always works and the
    search terminates.
    """
    n = len(instance.paths)
    if n == 0:
        raise ValueError("empty generator has no cover (classes must be non-empty)")
    for k in range(1, n + 1):
        witness = _search_witness(instance, k)
        if witness is not None:
            return k, witness
    raise AssertionError("unreachable: singleton partition is always a cover")


def _search(instance: APPInstance, k: int) -> bool:
    return _search_witness(instance, k) is not None


def _search_witness(instance: APPInstance, k: int) -> list[list[int]] | None:
    n = len(instance.paths)
    if k > n:
        return None
    assignment: list[int] = [-1] * n
    classes: list[list[int]] = [[] for _ in range(k)]

    def feasible(i: int, cls: int) -> bool:
        return instance.subset_acyclic(classes[cls] + [i])

    def backtrack(i: int, used: int) -> bool:
        if i == n:
            return used == k
        # Prune: remaining paths must be able to fill all k classes.
        if used + (n - i) < k:
            return False
        for cls in range(min(used + 1, k)):
            if not feasible(i, cls):
                continue
            assignment[i] = cls
            classes[cls].append(i)
            if backtrack(i + 1, max(used, cls + 1)):
                return True
            classes[cls].pop()
            assignment[i] = -1
        return False

    if backtrack(0, 0):
        return [list(c) for c in classes]
    return None
