"""Theorem 1: graph k-colorability ≤p acyclic path partitioning.

The reduction builds, for every graph node ``v``, one path ``p_v``:

* a private start label ``('n', v)``;
* for every incident edge ``e = {v, w}`` (in a fixed order), the two
  shared labels ``('e', v, e)`` then ``('e', w, e)``.

For an edge ``{v, w}``, ``p_v`` traverses ``('e', v, e) → ('e', w, e)``
while ``p_w`` traverses ``('e', w, e) → ('e', v, e)`` — together a
2-cycle, so adjacent nodes' paths can never share a class. Non-adjacent
nodes' paths are label-disjoint, so any independent set's paths induce a
disjoint union of simple paths (acyclic). Hence k-covers of the instance
correspond exactly to k-colorings of the graph, in both directions; this
module also implements both witness translations so tests can verify the
equivalence constructively on small graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.core.app import APPInstance, APPPath

Edge = tuple[Hashable, Hashable]


def _normalize(edges: Iterable[Edge]) -> tuple[list[Hashable], list[tuple[Hashable, Hashable]]]:
    nodes: set[Hashable] = set()
    norm: set[tuple[Hashable, Hashable]] = set()
    for a, b in edges:
        if a == b:
            raise ValueError(f"self-loop {a!r} makes the graph uncolorable")
        nodes.update((a, b))
        norm.add((a, b) if repr(a) <= repr(b) else (b, a))
    return sorted(nodes, key=repr), sorted(norm, key=repr)


def coloring_to_app(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> tuple[APPInstance, list[Hashable]]:
    """Transform a graph into an APP instance (polynomial, Theorem 1).

    Returns the instance and the node order: path ``i`` of the instance
    is ``p_{node_order[i]}``. Isolated nodes get single-label paths
    (``p_v = ⟨v⟩`` in the paper).
    """
    extra_nodes, edge_list = _normalize(edges)
    all_nodes = sorted(set(nodes) | set(extra_nodes), key=repr)
    incident: dict[Hashable, list[tuple[Hashable, Hashable]]] = {v: [] for v in all_nodes}
    for e in edge_list:
        a, b = e
        incident[a].append(e)
        incident[b].append(e)
    paths = []
    for v in all_nodes:
        labels: list[Hashable] = [("n", v)]
        for e in incident[v]:
            w = e[1] if e[0] == v else e[0]
            labels.append(("e", v, e))
            labels.append(("e", w, e))
        paths.append(APPPath(tuple(labels)))
    return APPInstance(paths), all_nodes


def cover_to_coloring(
    node_order: list[Hashable], partition: list[list[int]]
) -> dict[Hashable, int]:
    """Translate an APP cover back into a coloring (the "⇐" direction)."""
    coloring: dict[Hashable, int] = {}
    for color, part in enumerate(partition):
        for i in part:
            coloring[node_order[i]] = color
    return coloring


def coloring_to_cover(
    node_order: list[Hashable], coloring: dict[Hashable, int]
) -> list[list[int]]:
    """Translate a coloring into an APP partition (the "⇒" direction)."""
    index = {v: i for i, v in enumerate(node_order)}
    k = max(coloring.values()) + 1 if coloring else 0
    parts: list[list[int]] = [[] for _ in range(k)]
    for v, color in coloring.items():
        parts[color].append(index[v])
    return [p for p in parts if p]


def is_proper_coloring(edges: Iterable[Edge], coloring: dict[Hashable, int]) -> bool:
    return all(coloring[a] != coloring[b] for a, b in edges)


def chromatic_number(nodes: Iterable[Hashable], edges: Iterable[Edge]) -> int:
    """Brute-force chromatic number for tiny graphs (test oracle)."""
    nodes = sorted(set(nodes) | {v for e in edges for v in e}, key=repr)
    adj: dict[Hashable, set[Hashable]] = {v: set() for v in nodes}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    n = len(nodes)
    if n == 0:
        return 0

    def colorable(k: int) -> bool:
        colors: dict[Hashable, int] = {}

        def backtrack(i: int) -> bool:
            if i == n:
                return True
            v = nodes[i]
            used = {colors[w] for w in adj[v] if w in colors}
            max_color = min(k, max(colors.values(), default=-1) + 2)
            for c in range(max_color):  # symmetry: at most one fresh color
                if c in used:
                    continue
                colors[v] = c
                if backtrack(i + 1):
                    return True
                del colors[v]
            return False

        return backtrack(0)

    for k in range(1, n + 1):
        if colorable(k):
            return k
    raise AssertionError("unreachable: n colors always suffice")
