"""DFSSSP — deadlock-free single-source-shortest-path routing (§IV).

The engine chains the paper's two algorithms:

1. :class:`~repro.core.sssp.SSSPEngine` produces globally balanced,
   hop-minimal forwarding tables (Algorithm 1);
2. :func:`~repro.core.layers.assign_layers_offline` breaks every channel
   dependency cycle by relocating paths to higher virtual layers
   (Algorithm 2), using the *weakest-edge* heuristic by default.

The result keeps SSSP's paths byte-for-byte — virtual layers only choose
buffers, never routes — so DFSSSP inherits SSSP's bandwidth while adding
deadlock-freedom. That is the paper's central claim and our tests verify
both halves (identical tables; acyclic per-layer CDGs).
"""

from __future__ import annotations

from repro.core.layers import (
    DEFAULT_MAX_LAYERS,
    assign_layers_offline,
    assign_layers_online,
)
from repro.core.sssp import SSSPEngine
from repro.network.fabric import Fabric
from repro.obs import COUNT_BUCKETS, get_registry, span
from repro.routing.base import LayeredRouting, RoutingEngine, RoutingResult
from repro.routing.paths import extract_paths
from repro.service.budget import check_budget


class DFSSSPEngine(RoutingEngine):
    """Deadlock-free SSSP routing.

    Parameters
    ----------
    max_layers:
        Available virtual lanes (8 on the paper's hardware, 16 per spec).
    heuristic:
        Cycle-edge choice: ``"weakest"`` (default, best), ``"strongest"``
        or ``"first"`` — see :mod:`repro.core.heuristics`.
    mode:
        ``"offline"`` (the paper's fast contribution) or ``"online"``
        (the LASH-style baseline kept for the §IV runtime comparison).
    cdg:
        Cycle-breaking engine for offline mode: ``"incremental"``
        (default — the vectorized CSR engine of
        :mod:`repro.deadlock.incremental`), ``"sharded"`` (batches
        eviction across independent SCC shards per layer, optionally
        fanning them out over ``workers`` processes — see
        :mod:`repro.deadlock.sharded`) or ``"rebuild"`` (the dict-backed
        reference). All produce bit-identical layer assignments; the
        benchmark suite gates the incremental engine at ≥3× the
        rebuild's speed.
    balance:
        Spread paths over unused layers after cycle breaking (Algorithm
        2's final step).
    dest_order / seed / count_switch_sources / workers / kernel / batch:
        Forwarded to :class:`SSSPEngine` — in particular ``workers=N``
        fans the SSSP phase out over a process pool and ``kernel="numpy"``
        selects the vectorized Dijkstra, both bit-identical to the serial
        reference (the layer assignment consumes identical tables, so the
        layered result is identical too).
    """

    name = "dfsssp"
    supports_incremental_reroute = True

    def __init__(
        self,
        max_layers: int = DEFAULT_MAX_LAYERS,
        heuristic: str = "weakest",
        mode: str = "offline",
        cdg: str = "incremental",
        balance: bool = True,
        dest_order: str = "index",
        seed=None,
        count_switch_sources: bool = False,
        workers: int = 0,
        kernel: str = "python",
        batch: int | None = None,
        shm: bool = True,
    ):
        if mode not in ("offline", "online"):
            raise ValueError(f"mode must be 'offline' or 'online', got {mode!r}")
        if cdg not in ("incremental", "sharded", "rebuild"):
            raise ValueError(
                f"cdg must be 'incremental', 'sharded' or 'rebuild', got {cdg!r}"
            )
        self.max_layers = max_layers
        self.heuristic = heuristic
        self.mode = mode
        self.cdg = cdg
        self.balance = balance
        self._sssp = SSSPEngine(
            dest_order=dest_order,
            seed=seed,
            count_switch_sources=count_switch_sources,
            workers=workers,
            kernel=kernel,
            batch=batch,
            shm=shm,
        )

    def reroute(self, prior, degraded) -> RoutingResult:
        """Incrementally repair ``prior`` on the degraded fabric.

        Re-runs Dijkstra only for the destinations whose forwarding
        entries traverse dead channels, splices the repaired columns into
        the tables, then re-inserts the repaired paths into the layer
        CDGs — escalating a path to another layer only when keeping its
        old layer would re-introduce a cycle. Falls back to a full DFSSSP
        run when repair is impossible (link-up, foreign degradation) or
        when the repaired paths exhaust the virtual-layer budget.
        """
        from repro.exceptions import InsufficientLayersError, RepairError
        from repro.resilience.repair import count_fallback, repair_routing

        if prior is None or prior.layered is None:
            return self.route(degraded.fabric)
        try:
            return repair_routing(
                prior,
                degraded,
                engine_name=self.name,
                count_switch_sources=self._sssp.count_switch_sources,
            )
        except (RepairError, InsufficientLayersError) as err:
            count_fallback(self.name, reason=type(err).__name__)
            return self.route(degraded.fabric)

    def _route(self, fabric: Fabric) -> RoutingResult:
        with span("dfsssp.sssp", engine=self.name) as sp_sssp:
            tables, total_weight, weights = self._sssp._run(fabric)
            tables.engine = self.name  # routes are SSSP's, the engine is ours
        t_sssp = sp_sssp.duration

        with span("dfsssp.layers", mode=self.mode, heuristic=self.heuristic) as sp_layers:
            check_budget()  # phase boundary: SSSP done, layering not started
            paths = extract_paths(tables)
            # OpenSM's DFSSSP layers CA-to-CA paths: only paths whose source
            # switch hosts terminals ever carry traffic, and layering the
            # spine-originated suffixes separately would inflate lane counts.
            active = paths.active_pids()
            if self.mode == "offline":
                if self.cdg == "incremental":
                    # Imported here: repro.deadlock.incremental depends on
                    # this package for LayerAssignment.
                    from repro.deadlock.incremental import assign_layers_incremental

                    assign = assign_layers_incremental
                elif self.cdg == "sharded":
                    from functools import partial

                    from repro.deadlock.sharded import assign_layers_sharded

                    assign = partial(
                        assign_layers_sharded, workers=self._sssp.workers
                    )
                else:
                    assign = assign_layers_offline
                assignment = assign(
                    paths,
                    max_layers=self.max_layers,
                    heuristic=self.heuristic,
                    balance=self.balance,
                    pids=active,
                )
            else:
                assignment = assign_layers_online(
                    paths, max_layers=self.max_layers, balance=self.balance, pids=active
                )
        t_layers = sp_layers.duration

        layered = LayeredRouting(tables, assignment.path_layers, self.max_layers)

        reg = get_registry()
        reg.gauge(
            "dfsssp_layers_needed", "virtual layers holding paths before balancing"
        ).set(assignment.layers_needed)
        reg.gauge("dfsssp_layers_used", "virtual layers holding paths after balancing").set(
            layered.layers_used
        )
        occupancy = reg.histogram(
            "dfsssp_layer_occupancy", "paths per (non-empty) virtual layer",
            buckets=COUNT_BUCKETS,
        )
        for n in layered.layer_histogram():
            if n:
                occupancy.observe(int(n))
        return RoutingResult(
            tables=tables,
            layered=layered,
            deadlock_free=True,
            channel_weights=weights,
            stats={
                "engine": self.name,
                "mode": self.mode,
                "cdg": self.cdg if self.mode == "offline" else None,
                "heuristic": self.heuristic if self.mode == "offline" else None,
                "layers_needed": assignment.layers_needed,
                "layers_used": layered.layers_used,
                "cycles_broken": assignment.cycles_broken,
                "paths_moved": assignment.paths_moved,
                "total_balancing_weight": total_weight,
                "time_sssp_s": t_sssp,
                "time_layers_s": t_layers,
            },
        )
