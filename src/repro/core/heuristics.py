"""Cycle-breaking edge-selection heuristics (§IV).

When Algorithm 2 finds a cycle in a layer's CDG it must pick one edge of
the cycle; all paths inducing that edge move to the next layer. The
minimum-layer version of this choice is the NP-complete APP problem, so
the paper evaluates three heuristics:

* ``weakest``  — edge induced by the *fewest* paths (move as little as
  possible to the next layer). Empirically the best: 3–5 layers on the
  paper's random topologies.
* ``strongest`` — edge induced by the *most* paths (hope to break many
  undiscovered cycles at once). Empirically the worst: 4–16 layers.
* ``first``     — the first edge of the discovered cycle (the paper's
  "pseudo-random" baseline): 4–8 layers.

Ties between equal-weight edges resolve to the lowest ``(c1, c2)``
channel-id pair — never to traversal order — so any two cycle-breaking
engines fed the same cycle make the same choice. The rebuild-based and
incremental engines rely on this for their bit-identical-assignment
contract (``repro.deadlock.incremental``).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.deadlock.cdg import ChannelDependencyGraph

Edge = tuple[int, int]
Heuristic = Callable[[ChannelDependencyGraph, list[Edge]], Edge]


def weakest_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """Edge with the fewest inducing paths (ties: lowest (c1, c2) ids)."""
    return min(cycle, key=lambda e: (cdg.edge_weight(*e), e))


def strongest_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """Edge with the most inducing paths (ties: lowest (c1, c2) ids)."""
    return min(cycle, key=lambda e: (-cdg.edge_weight(*e), e))


def first_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """The first edge of the discovered cycle (pseudo-random choice: it
    depends on DFS traversal order, not on path counts)."""
    return cycle[0]


HEURISTICS: dict[str, Heuristic] = {
    "weakest": weakest_edge,
    "strongest": strongest_edge,
    "first": first_edge,
}


def get_heuristic(name: str) -> Heuristic:
    try:
        return HEURISTICS[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
        ) from None
