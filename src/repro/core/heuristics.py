"""Cycle-breaking edge-selection heuristics (§IV).

When Algorithm 2 finds a cycle in a layer's CDG it must pick one edge of
the cycle; all paths inducing that edge move to the next layer. The
minimum-layer version of this choice is the NP-complete APP problem, so
the paper evaluates three heuristics:

* ``weakest``  — edge induced by the *fewest* paths (move as little as
  possible to the next layer). Empirically the best: 3–5 layers on the
  paper's random topologies.
* ``strongest`` — edge induced by the *most* paths (hope to break many
  undiscovered cycles at once). Empirically the worst: 4–16 layers.
* ``first``     — the first edge of the discovered cycle (the paper's
  "pseudo-random" baseline): 4–8 layers.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.deadlock.cdg import ChannelDependencyGraph

Edge = tuple[int, int]
Heuristic = Callable[[ChannelDependencyGraph, list[Edge]], Edge]


def weakest_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """Edge with the fewest inducing paths (ties: first in the cycle)."""
    best, best_w = cycle[0], cdg.edge_weight(*cycle[0])
    for e in cycle[1:]:
        w = cdg.edge_weight(*e)
        if w < best_w:
            best, best_w = e, w
    return best


def strongest_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """Edge with the most inducing paths (ties: first in the cycle)."""
    best, best_w = cycle[0], cdg.edge_weight(*cycle[0])
    for e in cycle[1:]:
        w = cdg.edge_weight(*e)
        if w > best_w:
            best, best_w = e, w
    return best


def first_edge(cdg: ChannelDependencyGraph, cycle: list[Edge]) -> Edge:
    """The first edge of the discovered cycle (pseudo-random choice: it
    depends on DFS traversal order, not on path counts)."""
    return cycle[0]


HEURISTICS: dict[str, Heuristic] = {
    "weakest": weakest_edge,
    "strongest": strongest_edge,
    "first": first_edge,
}


def get_heuristic(name: str) -> Heuristic:
    try:
        return HEURISTICS[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
        ) from None
