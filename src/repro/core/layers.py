"""Virtual-layer assignment: the offline and online variants of the
paper's Algorithm 2, plus the final layer-balancing step.

Both variants take a :class:`~repro.routing.paths.PathSet` (any routing's
paths, though DFSSSP feeds it SSSP paths) and return

* ``path_layers`` — layer index per path id,
* ``layers_needed`` — layers containing paths *before* balancing (the
  number reported in Figures 9/10), and
* diagnostic counters.

Offline (the paper's contribution): build the complete CDG of layer 0,
repeatedly find a cycle, move all paths inducing one chosen edge to the
next layer, and recurse per layer. Cycle selection is *canonical* —
Tarjan SCC condensation picks the component containing the smallest
channel id and a minimum-successor-first walk inside it yields the
witness cycle — so the rebuild-based implementation here and the
vectorized engine in :mod:`repro.deadlock.incremental` produce
bit-identical assignments (the latter is what :class:`DFSSSPEngine`
runs by default; this one is the differential/benchmark reference).
Online (the LASH-inspired baseline): insert each path into the lowest
layer that stays acyclic — one cycle check per path, which is the
O(|N|² · (|C|+|E|)) cost §IV calls impractical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.heuristics import get_heuristic
from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import drain_cycles, tarjan_sccs
from repro.exceptions import InsufficientLayersError
from repro.obs import get_hooks, get_registry, span
from repro.routing.paths import PathSet
from repro.service.budget import check_budget

#: InfiniBand hardware limit the paper works against (spec allows 16).
DEFAULT_MAX_LAYERS = 8


@dataclass
class LayerAssignment:
    """Result of a layer-assignment run."""

    path_layers: np.ndarray
    layers_needed: int  # non-empty layers before balancing
    num_layers: int  # layers available (= max_layers)
    cycles_broken: int
    paths_moved: int
    balanced: bool

    def histogram(self) -> np.ndarray:
        return np.bincount(self.path_layers, minlength=self.num_layers)


def assign_layers_offline(
    paths: PathSet,
    max_layers: int = DEFAULT_MAX_LAYERS,
    heuristic: str = "weakest",
    balance: bool = True,
    pids=None,
) -> LayerAssignment:
    """Offline Algorithm 2.

    ``pids`` selects the paths to layer (default: all). DFSSSP passes the
    traffic-carrying subset (:meth:`PathSet.active_pids`) — OpenSM's
    CA-to-CA granularity; paths outside the subset stay on layer 0 and
    never constrain cycle breaking.

    Raises :class:`InsufficientLayersError` if cycles remain in the last
    layer — "no deadlock-free assignment possible" with this budget.
    """
    if max_layers < 1:
        raise ValueError(f"max_layers must be >= 1, got {max_layers}")
    pick = get_heuristic(heuristic)
    fabric = paths.fabric
    path_layers = np.zeros(paths.num_paths, dtype=np.int16)
    if pids is None:
        pids = range(paths.num_paths)
    pids = [int(p) for p in pids]

    reg = get_registry()
    hooks = get_hooks()
    m_cycles = reg.counter(
        "dfsssp_cycles_broken", "CDG cycles broken during offline layer assignment"
    )
    m_moved = reg.counter("dfsssp_paths_moved", "paths relocated to a higher virtual layer")
    m_evicted = reg.counter(
        "dfsssp_edges_evicted", "cycle edges evicted from a layer's CDG",
        heuristic=str(heuristic),
    )

    cdgs = [ChannelDependencyGraph(fabric)]
    for pid in pids:
        cdgs[0].add_path(pid, paths.path(pid))

    cycles_broken = 0
    paths_moved = 0
    layer = 0
    with span("layers.assign_offline", heuristic=str(heuristic), max_layers=max_layers,
              cdg="rebuild"):
        while layer < len(cdgs):
            cdg = cdgs[layer]
            with span("layers.layer", layer=layer) as sp:
                # Condense once per layer, then drain each component in
                # canonical (smallest-channel-first) order. Draining a
                # membership visits every cycle it will ever contain —
                # deletions cannot create cycles or merge components —
                # so the remainder needs no re-search. The incremental
                # engine runs the identical drain over CSR arrays; this
                # dict-backed loop is the foil its benchmark measures
                # against (full rebuild of every structure per layer).
                sccs = tarjan_sccs(cdg.nodes(), cdg.successors)
                for membership in sorted(sccs, key=min):
                    for cycle in drain_cycles(membership, cdg.successors):
                        check_budget()  # cooperative deadline (repro.service)
                        if layer + 1 >= max_layers:
                            raise InsufficientLayersError(
                                f"cycles remain after filling all {max_layers} layers",
                                layers_available=max_layers,
                                layers_needed_at_least=max_layers + 1,
                            )
                        if layer + 1 >= len(cdgs):
                            cdgs.append(ChannelDependencyGraph(fabric))
                        edge = pick(cdg, cycle)
                        movers = sorted(cdg.pids_of_edge(*edge))
                        assert movers, "cycle edge without inducing paths"
                        nxt = cdgs[layer + 1]
                        for pid in movers:
                            chans = paths.path(pid)
                            cdg.remove_path(pid, chans)
                            nxt.add_path(pid, chans)
                            path_layers[pid] = layer + 1
                        cycles_broken += 1
                        paths_moved += len(movers)
                        m_cycles.inc()
                        m_evicted.inc()
                        m_moved.inc(len(movers))
                        hooks.cycle_broken(
                            layer=layer,
                            edge=edge,
                            paths_moved=len(movers),
                            heuristic=str(heuristic),
                        )
                sp.set_attr("paths", cdg.num_paths)
                sp.set_attr("edges", cdg.num_edges)
            hooks.layer_closed(layer=layer, paths=cdg.num_paths, edges=cdg.num_edges)
            layer += 1

    layers_needed = _compact(path_layers)
    if balance and layers_needed < max_layers:
        _balance_layers(path_layers, layers_needed, max_layers, pids=np.asarray(pids))
    return LayerAssignment(
        path_layers=path_layers,
        layers_needed=layers_needed,
        num_layers=max_layers,
        cycles_broken=cycles_broken,
        paths_moved=paths_moved,
        balanced=balance,
    )


def _compact(path_layers: np.ndarray) -> int:
    """Renumber layers densely (a middle layer can end up empty when all
    of its paths moved onward); returns the number of layers in use."""
    used = np.unique(path_layers)
    remap = np.zeros(int(used.max()) + 1 if len(used) else 1, dtype=np.int16)
    remap[used] = np.arange(len(used), dtype=np.int16)
    path_layers[:] = remap[path_layers]
    return len(used)


def assign_layers_online(
    paths: PathSet,
    max_layers: int = DEFAULT_MAX_LAYERS,
    balance: bool = False,
    pids=None,
) -> LayerAssignment:
    """Online variant: lowest acyclic layer per path, LASH-style.

    Functionally equivalent to the offline algorithm (both produce *some*
    acyclic cover) but much slower on large fabrics; kept for the §IV
    offline-vs-online comparison and as a cross-check in tests.
    """
    if max_layers < 1:
        raise ValueError(f"max_layers must be >= 1, got {max_layers}")
    fabric = paths.fabric
    path_layers = np.zeros(paths.num_paths, dtype=np.int16)
    if pids is None:
        pids = range(paths.num_paths)
    pids = [int(p) for p in pids]
    m_checks = get_registry().counter(
        "layers_online_cycle_checks", "per-path acyclicity probes of the online variant"
    )
    cdgs = [ChannelDependencyGraph(fabric)]
    with span("layers.assign_online", max_layers=max_layers):
        for pid in pids:
            check_budget()  # cooperative deadline (repro.service)
            chans = paths.path(pid)
            placed = False
            for layer, cdg in enumerate(cdgs):
                m_checks.inc()
                if cdg.try_add_path(pid, chans):
                    path_layers[pid] = layer
                    placed = True
                    break
            if not placed:
                if len(cdgs) >= max_layers:
                    raise InsufficientLayersError(
                        f"path {pid} fits no layer and all {max_layers} layers are in use",
                        layers_available=max_layers,
                        layers_needed_at_least=max_layers + 1,
                    )
                cdgs.append(ChannelDependencyGraph(fabric))
                ok = cdgs[-1].try_add_path(pid, chans)
                assert ok, "a single path cannot be cyclic on its own"
                path_layers[pid] = len(cdgs) - 1

    layers_needed = _compact(path_layers)
    if balance and layers_needed < max_layers:
        _balance_layers(path_layers, layers_needed, max_layers, pids=np.asarray(pids))
    return LayerAssignment(
        path_layers=path_layers,
        layers_needed=layers_needed,
        num_layers=max_layers,
        cycles_broken=0,
        paths_moved=0,
        balanced=balance,
    )


def _balance_layers(
    path_layers: np.ndarray, layers_needed: int, max_layers: int, pids: np.ndarray | None = None
) -> None:
    """Spread paths over unused layers (Algorithm 2's final step).

    Any subset of an acyclic layer is acyclic, so we repeatedly split the
    currently heaviest layer in half into the next empty layer — no
    additional cycle searches required, exactly as the paper notes.
    Only ``pids`` (the traffic-carrying paths) participate.
    """
    view = path_layers if pids is None else path_layers[pids]
    used = layers_needed
    while used < max_layers:
        hist = np.bincount(view, minlength=max_layers)
        heaviest = int(hist.argmax())
        if hist[heaviest] < 2:
            break  # nothing left worth splitting
        members = np.flatnonzero(view == heaviest)
        movers = members[len(members) // 2 :]
        view[movers] = used
        used += 1
    if pids is not None:
        path_layers[pids] = view
