"""LMC multipathing — multiple balanced paths per destination.

InfiniBand's LID Mask Control gives every channel adapter ``2**lmc``
consecutive LIDs; the subnet manager routes each LID independently, so a
source can spread its connections over up to ``2**lmc`` distinct paths.
OpenSM's (DF)SSSP implementation — the paper's production code — treats
every LID as a separate destination of the balancing loop, which is
exactly what we reproduce:

* one Dijkstra per (terminal, lid-offset) pair against the *shared*
  cumulative edge weights, so the per-offset trees diverge and the
  "planes" complement each other;
* a single virtual-lane assignment over the union of all planes' paths
  (deadlock-freedom must hold across planes: a packet on plane 1 shares
  physical buffers with plane 0's packets of the same VL).

The congestion simulator picks a plane per flow deterministically
(``(src_idx + dst_idx) mod K``), modelling MPI's usual round-robin use of
path records.
"""

from __future__ import annotations

import numpy as np

from repro.core.layers import DEFAULT_MAX_LAYERS, assign_layers_offline
from repro.core.sssp import _dijkstra_to_dest
from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import find_any_cycle
from repro.exceptions import RoutingError, SimulationError
from repro.network.fabric import Fabric
from repro.network.validate import check_routable
from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.congestion import EbbResult
from repro.simulator.patterns import Pattern, bisection_pattern, validate_pattern
from repro.utils.prng import spawn_rngs


class ConcatenatedPaths:
    """Present several planes' PathSets as one path collection.

    Path ids are ``plane * plane_size + pid`` so the layer-assignment
    machinery (which only needs ``num_paths`` and ``path(pid)``) works
    unchanged over the union.
    """

    def __init__(self, planes: list[PathSet]):
        if not planes:
            raise RoutingError("need at least one plane")
        self.planes = planes
        self.plane_size = planes[0].num_paths
        if any(p.num_paths != self.plane_size for p in planes):
            raise RoutingError("planes must have identical path counts")
        self.fabric = planes[0].fabric

    @property
    def num_paths(self) -> int:
        return self.plane_size * len(self.planes)

    def path(self, pid: int) -> np.ndarray:
        plane, inner = divmod(pid, self.plane_size)
        return self.planes[plane].path(inner)

    def active_pids(self) -> np.ndarray:
        """Traffic-carrying paths across all planes (same leaf mask)."""
        base = self.planes[0].active_pids()
        return np.concatenate(
            [base + k * self.plane_size for k in range(len(self.planes))]
        )


class MultipathRouting:
    """Result of multipath DFSSSP: one forwarding plane per LID offset
    plus a virtual-lane assignment covering all planes."""

    def __init__(
        self,
        fabric: Fabric,
        planes: list[RoutingTables],
        path_sets: list[PathSet],
        path_layers: np.ndarray,
        num_layers: int,
        stats: dict,
    ):
        self.fabric = fabric
        self.planes = planes
        self.path_sets = path_sets
        self.path_layers = path_layers
        self.num_layers = num_layers
        self.stats = stats

    @property
    def num_planes(self) -> int:
        return len(self.planes)

    def plane_for(self, src_terminal: int, dst_terminal: int) -> int:
        """Deterministic plane selection per flow (round-robin over the
        pair index, as MPI stacks spread connections over LIDs)."""
        fab = self.fabric
        s = int(fab.term_index[src_terminal])
        d = int(fab.term_index[dst_terminal])
        if s < 0 or d < 0:
            raise RoutingError("plane_for expects terminal node ids")
        return (s + d) % self.num_planes

    def combined_paths(self) -> ConcatenatedPaths:
        return ConcatenatedPaths(self.path_sets)

    def verify_deadlock_free(self) -> bool:
        """Acyclicity of every layer's CDG over the union of planes
        (traffic-carrying paths only — flows start at terminals)."""
        combined = self.combined_paths()
        cdgs = [ChannelDependencyGraph(self.fabric) for _ in range(self.num_layers)]
        for pid in combined.active_pids():
            pid = int(pid)
            cdgs[int(self.path_layers[pid])].add_path(pid, combined.path(pid))
        return all(find_any_cycle(c) is None for c in cdgs)


class MultipathDFSSSPEngine:
    """DFSSSP with LMC > 0: ``2**lmc`` balanced planes, jointly layered."""

    name = "dfsssp_lmc"

    def __init__(
        self,
        lmc: int = 1,
        max_layers: int = DEFAULT_MAX_LAYERS,
        heuristic: str = "weakest",
        balance: bool = True,
    ):
        if not (0 <= lmc <= 3):
            raise ValueError(f"lmc must be in [0, 3], got {lmc}")
        self.lmc = lmc
        self.num_planes = 1 << lmc
        self.max_layers = max_layers
        self.heuristic = heuristic
        self.balance = balance

    def route(self, fabric: Fabric) -> MultipathRouting:
        check_routable(fabric)
        T = fabric.num_terminals
        K = self.num_planes
        w0 = (T * K) ** 2 + 1
        weights = np.full(fabric.num_channels, w0, dtype=np.int64)
        plane_tables = [
            np.full((fabric.num_nodes, T), -1, dtype=np.int32) for _ in range(K)
        ]
        is_term = fabric.kinds == 1

        # OpenSM routes LIDs in order: offset-major interleaving makes the
        # planes diverge destination by destination.
        from repro.core.sssp import SSSPEngine

        updater = SSSPEngine()
        chan_src = fabric.channels.src
        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            for plane in range(K):
                dist, parent = _dijkstra_to_dest(fabric, dest, weights)
                plane_tables[plane][:, t_idx] = parent
                updater._update_weights(
                    fabric, dest, dist, parent, weights, is_term, chan_src
                )

        tables = [
            RoutingTables(fabric, plane_tables[k], engine=f"{self.name}[{k}]")
            for k in range(K)
        ]
        path_sets = [extract_paths(t) for t in tables]
        combined = ConcatenatedPaths(path_sets)
        assignment = assign_layers_offline(
            combined,
            max_layers=self.max_layers,
            heuristic=self.heuristic,
            balance=self.balance,
            pids=combined.active_pids(),
        )
        return MultipathRouting(
            fabric=fabric,
            planes=tables,
            path_sets=path_sets,
            path_layers=assignment.path_layers,
            num_layers=self.max_layers,
            stats={
                "engine": self.name,
                "lmc": self.lmc,
                "planes": K,
                "layers_needed": assignment.layers_needed,
                "cycles_broken": assignment.cycles_broken,
            },
        )


class MultipathCongestionSimulator:
    """ORCS-style congestion counting over multiple planes.

    ``mode`` selects how a flow uses the planes:

    * ``"stripe"`` (default, the MPI-over-LMC behaviour): every flow
      splits into K subflows of weight 1/K, one per plane. The effective
      flow bandwidth is ``1 / max weighted congestion`` over the union of
      its subflow channels (subflows finish independently; the slowest
      one determines completion).
    * ``"select"``: each flow takes exactly one plane, round-robin over
      the pair index (single-path connections spread over LIDs).
    """

    def __init__(self, routing: MultipathRouting, mode: str = "stripe"):
        if mode not in ("stripe", "select"):
            raise SimulationError(f"mode must be 'stripe' or 'select', got {mode!r}")
        self.routing = routing
        self.mode = mode
        self.fabric = routing.fabric
        self._inv_capacity = 1.0 / self.fabric.channels.capacity

    def _plane_flow(self, plane: int, src: int, dst: int) -> np.ndarray:
        fab = self.fabric
        tables = self.routing.planes[plane]
        paths = self.routing.path_sets[plane]
        t_idx = int(fab.term_index[dst])
        inject = int(tables.next_channel[src, t_idx])
        if inject < 0:
            raise SimulationError(f"no route from {src} to {dst}")
        first = int(fab.channels.dst[inject])
        rest = paths.path(t_idx * fab.num_switches + int(fab.switch_index[first]))
        out = np.empty(len(rest) + 1, dtype=np.int64)
        out[0] = inject
        out[1:] = rest
        return out

    def _flow(self, src: int, dst: int) -> np.ndarray:
        """All channels a flow occupies (one plane or the union)."""
        if self.mode == "select":
            return self._plane_flow(self.routing.plane_for(src, dst), src, dst)
        parts = [
            self._plane_flow(k, src, dst) for k in range(self.routing.num_planes)
        ]
        return np.concatenate(parts)

    def evaluate(self, pattern: Pattern):
        validate_pattern(self.fabric, pattern)
        if not pattern:
            raise SimulationError("empty pattern")
        flows = [self._flow(s, d) for s, d in pattern]
        lengths = np.array([len(f) for f in flows], dtype=np.int64)
        offsets = np.zeros(len(flows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = np.concatenate(flows)
        weight = 1.0 / self.routing.num_planes if self.mode == "stripe" else 1.0
        load = np.bincount(flat, minlength=self.fabric.num_channels) * weight
        sharing = load * self._inv_capacity
        per_flow_max = np.maximum.reduceat(sharing[flat], offsets[:-1])
        return 1.0 / per_flow_max

    def effective_bisection_bandwidth(self, num_patterns: int = 100, seed=None) -> EbbResult:
        rngs = spawn_rngs(seed, num_patterns)
        means = np.empty(num_patterns)
        flows = 0
        for i, rng in enumerate(rngs):
            pattern = bisection_pattern(self.fabric, seed=rng)
            bw = self.evaluate(pattern)
            means[i] = float(bw.mean())
            flows = len(pattern)
        return EbbResult(per_pattern_mean=means, num_flows=flows, num_patterns=num_patterns)
