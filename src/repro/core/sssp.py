"""Single-source-shortest-path routing — the paper's Algorithm 1.

SSSP routing balances routes *globally*: it runs one weighted Dijkstra
per destination and, after each run, increases every channel's weight by
the number of terminal-to-destination paths crossing it. Later
destinations therefore avoid channels that earlier destinations loaded —
unlike MinHop, whose balancing is per-switch-local.

Two fidelity details from §II:

* **Minimal paths.** Edge weights start at ``W0 = num_terminals**2 + 1``.
  The total weight ever *added* by balancing is at most the number of
  CA-to-CA paths (< W0), so a detour (≥ one extra channel, ≥ W0 extra
  cost) can never beat a hop-minimal path. Tests assert zero minimality
  violations.
* **Multigraph awareness.** Parallel cables are distinct channels with
  individual weights, so trunks (Deimos' 30-cable bundles) get balanced
  route-by-route.

The per-destination weight update uses subtree counting: processing the
shortest-path tree in decreasing-distance order accumulates, for every
channel, how many terminal sources route across it — O(V) per
destination instead of the naive O(T · diameter).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.network.fabric import Fabric
from repro.obs import DURATION_BUCKETS, get_hooks, get_registry, span
from repro.routing.base import RoutingEngine, RoutingResult, RoutingTables
from repro.service.budget import check_budget
from repro.utils.prng import make_rng, stable_fabric_seed

#: per-destination shortest-path kernels (see :mod:`repro.parallel.kernel`).
KERNELS = ("python", "numpy", "native")


class SSSPEngine(RoutingEngine):
    """Algorithm 1. Not deadlock-free — see :class:`DFSSSPEngine`.

    Parameters
    ----------
    dest_order:
        ``"index"`` (deterministic, default) or ``"random"`` — the order
        in which destinations are routed influences balancing slightly
        (the paper notes the source order defines the routes).
    seed:
        RNG seed for ``dest_order="random"``. ``None`` derives a stable
        seed from the fabric (:func:`~repro.utils.prng.stable_fabric_seed`)
        so results stay reproducible across processes and restarts.
    count_switch_sources:
        Whether switches count as path sources in the weight update. The
        paper's OpenSM implementation balances CA-to-CA routes only
        (default False).
    workers:
        0 (default) routes serially in-process. ``N >= 1`` fans the
        per-destination columns out over an ``N``-process pool
        (:mod:`repro.parallel.executor`); the result is bit-identical to
        the serial run.
    kernel:
        ``"python"`` (reference heap Dijkstra, default), ``"numpy"``
        (vectorized masked-argmin kernel) or ``"native"`` (numba-jit CSR
        kernel, degrading to ``"python"`` with a warning when numba is
        absent). All are bit-identical; see :mod:`repro.parallel.kernel`
        and :mod:`repro.parallel.native`.
    batch:
        Hop columns per parallel batch (default ``4 * workers``). Only
        used when ``workers >= 1``; batching affects scheduling and span
        granularity, never results.
    shm:
        Parallel transport (``workers >= 1`` only): True (default) maps
        the fabric and the result columns into shared memory, False
        ships them through pickling. Bit-identical either way; see
        :mod:`repro.parallel.shm`.
    """

    name = "sssp"
    supports_incremental_reroute = True

    def __init__(
        self,
        dest_order: str = "index",
        seed=None,
        count_switch_sources: bool = False,
        workers: int = 0,
        kernel: str = "python",
        batch: int | None = None,
        shm: bool = True,
    ):
        if dest_order not in ("index", "random"):
            raise ValueError(f"dest_order must be 'index' or 'random', got {dest_order!r}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if batch is not None and batch < 1:
            raise ValueError(f"batch must be >= 1 or None, got {batch}")
        self.dest_order = dest_order
        self.seed = seed
        self.count_switch_sources = count_switch_sources
        self.workers = workers
        self.kernel = kernel
        self.batch = batch
        self.shm = shm

    # ------------------------------------------------------------------
    def _route(self, fabric: Fabric) -> RoutingResult:
        tables, total_weight, weights = self._run(fabric)
        return RoutingResult(
            tables=tables,
            layered=None,
            deadlock_free=False,
            stats={"engine": self.name, "total_balancing_weight": total_weight},
            channel_weights=weights,
        )

    def reroute(self, prior, degraded) -> RoutingResult:
        """Incrementally repair ``prior`` on the degraded fabric.

        Only the destinations whose forwarding entries traverse dead
        channels are re-routed (with the surviving balancing weights);
        everything else is spliced over. Falls back to a full reroute when
        the degradation does not derive from the routed fabric.
        """
        from repro.exceptions import RepairError
        from repro.resilience.repair import count_fallback, repair_routing

        if prior is None:
            return self.route(degraded.fabric)
        try:
            return repair_routing(
                prior,
                degraded,
                engine_name=self.name,
                count_switch_sources=self.count_switch_sources,
            )
        except RepairError as err:
            count_fallback(self.name, reason=type(err).__name__)
            return self.route(degraded.fabric)

    def resolved_seed(self, fabric: Fabric):
        """The RNG seed a route on ``fabric`` will actually use.

        An explicit ``seed`` wins; otherwise (``seed=None``) the seed is
        derived deterministically from the fabric so that ``dest_order=
        "random"`` stays bit-reproducible across processes — the parallel
        executor, checkpoint replay and the differential tests rely on it.
        """
        return self.seed if self.seed is not None else stable_fabric_seed(fabric)

    def _dest_order(self, fabric: Fabric) -> np.ndarray:
        order = np.arange(fabric.num_terminals)
        if self.dest_order == "random":
            make_rng(self.resolved_seed(fabric)).shuffle(order)
        return order

    def _run(self, fabric: Fabric) -> tuple[RoutingTables, int, np.ndarray]:
        T = fabric.num_terminals
        w0 = T * T + 1
        order = self._dest_order(fabric)

        if self.workers:
            from repro.parallel.executor import run_parallel_sssp

            next_channel, weights = run_parallel_sssp(
                fabric,
                order,
                workers=self.workers,
                kernel=self.kernel,
                batch=self.batch,
                count_switch_sources=self.count_switch_sources,
                engine_name=self.name,
                use_shm=self.shm,
            )
            total = int(weights.sum() - w0 * fabric.num_channels)
            return RoutingTables(fabric, next_channel, engine=self.name), total, weights

        weights = np.full(fabric.num_channels, w0, dtype=np.int64)
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        from repro.parallel.kernel import resolve_kernel

        dijkstra = resolve_kernel(self.kernel)

        reg = get_registry()
        m_sources = reg.counter(
            "sssp_sources_routed", "destination terminals routed (one Dijkstra each)"
        )
        m_updates = reg.counter(
            "sssp_edge_weight_updates", "per-channel weight increments applied after Dijkstras"
        )
        m_dijkstra = reg.histogram(
            "sssp_dijkstra_seconds", "wall time per single-destination Dijkstra",
            buckets=DURATION_BUCKETS,
        )
        hooks = get_hooks()

        chan_src = fabric.channels.src
        is_term = fabric.kinds == 1  # NodeKind.TERMINAL
        with span("sssp.run", engine=self.name, destinations=int(T)):
            for t_idx in order:
                check_budget()  # cooperative deadline (repro.service)
                dest = int(fabric.terminals[t_idx])
                with span("sssp.dijkstra", dest=dest) as sp:
                    dist, parent = dijkstra(fabric, dest, weights)
                    next_channel[:, t_idx] = parent
                    self._update_weights(
                        fabric, dest, dist, parent, weights, is_term, chan_src
                    )
                # One `weights[c] += ...` happened per node with a parent
                # channel; counted vectorised to keep the hot loop clean.
                updates = int(np.count_nonzero(parent >= 0))
                m_sources.inc()
                m_updates.inc(updates)
                m_dijkstra.observe(sp.duration)
                hooks.iteration(
                    engine=self.name,
                    iteration=int(t_idx),
                    dest=dest,
                    weight_updates=updates,
                    dijkstra_seconds=sp.duration,
                )

        total = int(weights.sum() - w0 * fabric.num_channels)
        return RoutingTables(fabric, next_channel, engine=self.name), total, weights

    # ------------------------------------------------------------------
    def _update_weights(self, fabric, dest, dist, parent, weights, is_term, chan_src) -> None:
        if self.kernel == "numpy":
            # Same kernel family as the Dijkstra: stays vectorized.
            update = update_weights_for_dest_fast
        elif self.kernel == "native":
            from repro.parallel import native

            update = (
                update_weights_for_dest_native
                if native.numba_available()
                else update_weights_for_dest  # degraded to "python" wholesale
            )
        else:
            update = update_weights_for_dest
        update(
            fabric, dest, dist, parent, weights, is_term,
            count_switch_sources=self.count_switch_sources,
        )


def update_weights_for_dest(
    fabric: Fabric,
    dest: int,
    dist: np.ndarray,
    parent: np.ndarray,
    weights: np.ndarray,
    is_term: np.ndarray,
    count_switch_sources: bool = False,
) -> None:
    """Add, to each channel, the number of (terminal) sources whose path
    to ``dest`` crosses it (subtree counting)."""
    if count_switch_sources:
        cnt = np.ones(fabric.num_nodes, dtype=np.int64)
    else:
        cnt = is_term.astype(np.int64).copy()
    cnt[dest] = 0
    finite = np.flatnonzero(dist < np.iinfo(np.int64).max)
    order = finite[np.argsort(dist[finite])[::-1]]  # farthest first
    for v in order:
        c = parent[v]
        if c < 0:
            continue
        weights[c] += cnt[v]
        # The parent channel c = (v -> u); all of v's sources continue
        # through u's parent channel next.
        u = fabric.channels.dst[c]
        cnt[u] += cnt[v]


def update_weights_for_dest_fast(
    fabric: Fabric,
    dest: int,
    dist: np.ndarray,
    parent: np.ndarray,
    weights: np.ndarray,
    is_term: np.ndarray,
    count_switch_sources: bool = False,
) -> None:
    """Vectorized :func:`update_weights_for_dest` — exact, not approximate.

    The reference walks nodes farthest-first; exactness only needs a
    *topological* order of the shortest-path tree (the increments are
    integer adds, which commute, and each node's count must be final
    before its parent consumes it). This version levels the tree by
    parent-pointer depth and applies one whole level per numpy operation,
    deepest level first. Within a level the parent channels are distinct
    (one per source node), so the fancy-indexed ``+=`` on ``weights`` is
    exact; the node counts funnel through ``np.add.at``. Bit-identical to
    the reference on every input — the differential suite asserts it.
    """
    n = fabric.num_nodes
    chan_dst = fabric.channels.dst
    if count_switch_sources:
        cnt = np.ones(n, dtype=np.int64)
    else:
        cnt = is_term.astype(np.int64)
    cnt[dest] = 0
    have = np.flatnonzero(parent >= 0)  # nodes that route via a parent channel
    if not len(have):
        return
    pchan = parent[have].astype(np.int64)
    pnode = chan_dst[pchan]
    # Depth of every routing node in the parent-pointer tree. Parent
    # chains end at `dest`, whose depth is 0; one pass resolves one level.
    pos = np.full(n, -1, dtype=np.int64)
    pos[have] = np.arange(len(have))
    pidx = pos[pnode]  # index of the parent within `have`; -1 => parent is dest
    depth = np.where(pidx < 0, 1, -1).astype(np.int64)
    todo = np.flatnonzero(depth < 0)
    while len(todo):
        pd = depth[pidx[todo]]
        ready = pd > 0
        if not ready.any():  # pragma: no cover - impossible for tree parents
            raise ValueError("parent pointers contain a cycle")
        depth[todo[ready]] = pd[ready] + 1
        todo = todo[~ready]
    # Deepest level first: every child's count is final before the parent
    # level reads it, the same invariant the farthest-first loop keeps.
    for d in range(int(depth.max()), 0, -1):
        sel = np.flatnonzero(depth == d)
        contrib = cnt[have[sel]]
        weights[pchan[sel]] += contrib  # pchan unique per source node
        np.add.at(cnt, pnode[sel], contrib)


def update_weights_for_dest_native(
    fabric: Fabric,
    dest: int,
    dist: np.ndarray,
    parent: np.ndarray,
    weights: np.ndarray,
    is_term: np.ndarray,
    count_switch_sources: bool = False,
) -> None:
    """Jitted :func:`update_weights_for_dest` (numba path only).

    Runs the reference farthest-first loop in machine code; the caller
    (:meth:`SSSPEngine._update_weights`) already fell back to the
    reference when numba is absent.
    """
    from repro.parallel import native

    impl = native.load_native()
    if impl is None:  # pragma: no cover - callers gate on numba_available
        update_weights_for_dest(
            fabric, dest, dist, parent, weights, is_term,
            count_switch_sources=count_switch_sources,
        )
        return
    if count_switch_sources:
        cnt = np.ones(fabric.num_nodes, dtype=np.int64)
    else:
        cnt = is_term.astype(np.int64)
    cnt[dest] = 0
    finite = np.flatnonzero(dist < np.iinfo(np.int64).max)
    order = finite[np.argsort(dist[finite])[::-1]]  # farthest first
    impl.update_weights_csr(
        dest, dist, parent, weights, cnt, fabric.channels.dst, order
    )


def dijkstra_to_dest(fabric: Fabric, dest: int, weights: np.ndarray):
    """Weighted shortest paths from every node *to* ``dest``.

    Returns ``(dist, parent)`` where ``parent[v]`` is the first channel of
    ``v``'s path toward ``dest`` (-1 for ``dest`` itself / unreachable).
    Ties break on (distance, node id, channel id) for determinism.
    """
    INF = np.iinfo(np.int64).max
    dist = np.full(fabric.num_nodes, INF, dtype=np.int64)
    parent = np.full(fabric.num_nodes, -1, dtype=np.int32)
    dist[dest] = 0
    heap: list[tuple[int, int]] = [(0, dest)]
    chan_dst = fabric.channels.dst
    reverse = fabric.channels.reverse
    settled = np.zeros(fabric.num_nodes, dtype=bool)
    polls = 0
    while heap:
        polls += 1
        if not polls & 0x3FF:  # poll the compute budget every 1024 pops
            check_budget()
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if u != dest and not fabric.is_switch(u):
            continue  # terminals never forward traffic for others
        # Relax predecessors v of u: forward channel c = (v -> u) is the
        # reverse of each outgoing channel (u -> v).
        for c_out in fabric.out_channels(u):
            c = int(reverse[c_out])
            v = int(chan_dst[c_out])
            if settled[v]:
                continue
            nd = d + int(weights[c])
            if nd < dist[v] or (nd == dist[v] and c < parent[v]):
                dist[v] = nd
                parent[v] = c
                heapq.heappush(heap, (nd, v))
    return dist, parent


_dijkstra_to_dest = dijkstra_to_dest  # backwards-compatible private alias
