"""Channel dependency graphs, cycle search and deadlock-freedom checks."""

from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import CycleSearch, find_any_cycle, is_acyclic
from repro.deadlock.verify import (
    VerificationReport,
    build_layer_cdgs,
    verify_deadlock_free,
    verify_with_networkx,
)

__all__ = [
    "ChannelDependencyGraph",
    "CycleSearch",
    "find_any_cycle",
    "is_acyclic",
    "VerificationReport",
    "build_layer_cdgs",
    "verify_deadlock_free",
    "verify_with_networkx",
]
