"""Channel dependency graphs, cycle search and deadlock-freedom checks.

Everything here resolves lazily (PEP 562). Two reasons:

* :mod:`repro.deadlock.incremental` imports the heuristics/layers
  machinery from :mod:`repro.core`, which itself imports
  :mod:`repro.deadlock.cdg` — lazy loading keeps package initialisation
  acyclic;
* ``python -m repro.deadlock.checker`` must run with *zero* imports of
  numpy / :mod:`repro.core` / :mod:`repro.deadlock.cdg` — the standalone
  certificate checker is only independent evidence if importing its
  package cannot drag the machinery it checks into the process.
"""

_LAZY = {
    "ChannelDependencyGraph": "repro.deadlock.cdg",
    "CycleSearch": "repro.deadlock.cycles",
    "drain_cycles": "repro.deadlock.cycles",
    "find_any_cycle": "repro.deadlock.cycles",
    "is_acyclic": "repro.deadlock.cycles",
    "tarjan_sccs": "repro.deadlock.cycles",
    "VerificationReport": "repro.deadlock.verify",
    "build_layer_cdgs": "repro.deadlock.verify",
    "verify_deadlock_free": "repro.deadlock.verify",
    "verify_with_networkx": "repro.deadlock.verify",
    "LayerCDG": "repro.deadlock.incremental",
    "assign_layers_incremental": "repro.deadlock.incremental",
    "DeadlockFreedomCertificate": "repro.deadlock.certificate",
    "emit_certificate": "repro.deadlock.certificate",
    "check_against_routing": "repro.deadlock.certificate",
    "report_from_check": "repro.deadlock.certificate",
    "CheckResult": "repro.deadlock.checker",
    "check_certificate": "repro.deadlock.checker",
    "find_minimal_cycle": "repro.deadlock.checker",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ChannelDependencyGraph",
    "CheckResult",
    "CycleSearch",
    "DeadlockFreedomCertificate",
    "LayerCDG",
    "VerificationReport",
    "assign_layers_incremental",
    "build_layer_cdgs",
    "check_against_routing",
    "check_certificate",
    "drain_cycles",
    "emit_certificate",
    "find_any_cycle",
    "find_minimal_cycle",
    "is_acyclic",
    "report_from_check",
    "tarjan_sccs",
    "verify_deadlock_free",
    "verify_with_networkx",
]
