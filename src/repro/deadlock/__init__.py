"""Channel dependency graphs, cycle search and deadlock-freedom checks."""

from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import (
    CycleSearch,
    drain_cycles,
    find_any_cycle,
    is_acyclic,
    tarjan_sccs,
)
from repro.deadlock.verify import (
    VerificationReport,
    build_layer_cdgs,
    verify_deadlock_free,
    verify_with_networkx,
)

# repro.deadlock.incremental imports the heuristics/layers machinery from
# repro.core, which itself imports repro.deadlock.cdg — so the incremental
# engine loads lazily to keep package initialisation acyclic.
_LAZY = {
    "LayerCDG": "repro.deadlock.incremental",
    "assign_layers_incremental": "repro.deadlock.incremental",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)

__all__ = [
    "ChannelDependencyGraph",
    "CycleSearch",
    "LayerCDG",
    "assign_layers_incremental",
    "drain_cycles",
    "find_any_cycle",
    "is_acyclic",
    "tarjan_sccs",
    "VerificationReport",
    "build_layer_cdgs",
    "verify_deadlock_free",
    "verify_with_networkx",
]
