"""Channel dependency graphs (Dally & Seitz) with path bookkeeping.

The CDG of a routing has one node per *switch-to-switch* channel and an
edge ``(c1, c2)`` whenever some routed path uses ``c2`` immediately after
``c1``. Terminal (injection/ejection) channels can never lie on a CDG
cycle — an injection channel has no predecessor and an ejection channel
no successor — so they are excluded, as in the OpenSM implementation.

For the paper's offline Algorithm 2 every edge additionally carries the
set of path ids inducing it; breaking a cycle means picking one edge and
relocating exactly those paths to the next layer. This is the memory
cost the paper quantifies (≈340 MB at 4096 nodes in C).
"""

from __future__ import annotations

import numpy as np

from repro.network.fabric import Fabric
from repro.obs import get_registry


class ChannelDependencyGraph:
    """One virtual layer's CDG with per-edge inducing-path sets."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self._is_sw = fabric.is_switch_channel
        # succ[c1][c2] = set of pids inducing the edge (c1, c2)
        self.succ: dict[int, dict[int, set[int]]] = {}
        self.num_paths = 0
        reg = get_registry()
        self._m_added = reg.counter("cdg_paths_added", "paths registered in CDG layers")
        self._m_removed = reg.counter("cdg_paths_removed", "paths removed from CDG layers")

    # ------------------------------------------------------------------
    @staticmethod
    def _switch_pairs(chans: np.ndarray, is_sw: np.ndarray):
        """Consecutive (c1, c2) pairs where both are switch channels."""
        for i in range(len(chans) - 1):
            c1, c2 = int(chans[i]), int(chans[i + 1])
            if is_sw[c1] and is_sw[c2]:
                yield c1, c2

    def add_path(self, pid: int, chans: np.ndarray) -> None:
        """Register ``pid`` (its channel sequence) in this layer."""
        for c1, c2 in self._switch_pairs(chans, self._is_sw):
            row = self.succ.setdefault(c1, {})
            pids = row.get(c2)
            if pids is None:
                row[c2] = {pid}
            else:
                pids.add(pid)
        self.num_paths += 1
        self._m_added.inc()

    def remove_path(self, pid: int, chans: np.ndarray) -> None:
        """Remove ``pid``'s contribution; edges with no inducing path left
        disappear (they can no longer cause deadlock)."""
        for c1, c2 in self._switch_pairs(chans, self._is_sw):
            row = self.succ.get(c1)
            if row is None:
                continue
            pids = row.get(c2)
            if pids is None:
                continue
            pids.discard(pid)
            if not pids:
                del row[c2]
                if not row:
                    del self.succ[c1]
        self.num_paths -= 1
        self._m_removed.inc()

    # ------------------------------------------------------------------
    def pids_of_edge(self, c1: int, c2: int) -> set[int]:
        return self.succ.get(c1, {}).get(c2, set())

    def edge_weight(self, c1: int, c2: int) -> int:
        """Number of paths inducing edge (c1, c2) — the heuristics' key."""
        return len(self.pids_of_edge(c1, c2))

    def has_edge(self, c1: int, c2: int) -> bool:
        return c2 in self.succ.get(c1, {})

    @property
    def num_edges(self) -> int:
        return sum(len(row) for row in self.succ.values())

    def nodes(self) -> set[int]:
        out = set(self.succ)
        for row in self.succ.values():
            out.update(row)
        return out

    def successors(self, c: int):
        return self.succ.get(c, {}).keys()

    # ------------------------------------------------------------------
    def try_add_path(self, pid: int, chans: np.ndarray) -> bool:
        """Online (LASH-style) insertion: add the path unless it closes a
        cycle in this layer; returns False (and leaves the layer
        unchanged) if it would."""
        pairs = list(self._switch_pairs(chans, self._is_sw))
        added: list[tuple[int, int]] = []
        for c1, c2 in pairs:
            row = self.succ.setdefault(c1, {})
            pids = row.get(c2)
            if pids is None:
                row[c2] = {pid}
                added.append((c1, c2))
            elif pid not in pids:
                pids.add(pid)
                added.append((c1, c2))
        if not pairs:
            self.num_paths += 1
            self._m_added.inc()
            return True
        if self._cycle_reachable_from(c for c, _ in pairs):
            for c1, c2 in added:
                row = self.succ[c1]
                row[c2].discard(pid)
                if not row[c2]:
                    del row[c2]
                    if not row:
                        del self.succ[c1]
            return False
        self.num_paths += 1
        self._m_added.inc()
        return True

    def _cycle_reachable_from(self, starts) -> bool:
        """Iterative DFS cycle detection restricted to the region reachable
        from ``starts`` (any cycle created by a new chain passes through a
        chain node, so this is complete for ``try_add_path``)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[int, int] = {}
        for start in starts:
            if color.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[int, list[int]]] = [(start, list(self.successors(start)))]
            color[start] = GRAY
            while stack:
                node, todo = stack[-1]
                if todo:
                    nxt = todo.pop()
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        return True
                    if c == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, list(self.successors(nxt))))
                else:
                    color[node] = BLACK
                    stack.pop()
        return False
