"""Deadlock-freedom certificates: emission, binding checks, persistence.

A :class:`DeadlockFreedomCertificate` is a self-contained, versioned JSON
witness of the Dally–Seitz condition for one routing: per virtual layer,
the channel-dependency edges the routing induces plus a topological order
over their endpoints, together with the full path→layer assignment. The
witness makes deadlock freedom *checkable in O(V+E)* by the deliberately
independent, stdlib-only :mod:`repro.deadlock.checker` — no re-run of
Algorithm 2, no shared CDG code (Mendlovic & Matias 2025 use exactly this
framing: acyclicity certificates are verifiable independently of how the
routes were computed).

Two levels of trust:

* :func:`repro.deadlock.checker.check_certificate` — *structural*: the
  certificate is well-formed and every certified layer really is acyclic
  under its own edge list. Needs nothing but the JSON.
* :func:`check_against_routing` — *binding*: the certificate describes
  **this** routing. Re-derives each layer's dependency edges from the
  live :class:`~repro.routing.paths.PathSet`, compares them to the
  certified edges, and matches fingerprint and path→layer assignment.
  A certificate whose layers are individually acyclic but whose paths
  were silently remapped fails here.

The cache (:mod:`repro.routing.cache`) and the supervisor
(:mod:`repro.service.supervisor`) run the binding check before serving a
warm-started or restored routing.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.deadlock.checker import FORMAT, KIND, CheckResult, check_certificate
from repro.exceptions import CertificateError
from repro.routing.base import LayeredRouting
from repro.routing.io import fabric_fingerprint
from repro.routing.paths import PathSet
from repro.utils.atomicio import atomic_write_text


@dataclass
class LayerWitness:
    """One layer's certified CDG: edge list plus a topological order."""

    topo_order: np.ndarray  # (V,) int64, node = channel id
    edges: np.ndarray  # (E, 2) int64, lexicographically sorted


@dataclass
class DeadlockFreedomCertificate:
    """Versioned, serialisable witness that a routing is deadlock-free."""

    engine: str
    fingerprint: str | None
    num_layers: int
    path_layers: np.ndarray  # (num_paths,) int32, -1 = traffic-free path
    layers: list[LayerWitness]

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "kind": KIND,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "num_layers": int(self.num_layers),
            "num_paths": int(len(self.path_layers)),
            "path_layers": [int(v) for v in self.path_layers],
            "layers": [
                {
                    "topo_order": [int(c) for c in lw.topo_order],
                    "edges": [[int(a), int(b)] for a, b in lw.edges],
                }
                for lw in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeadlockFreedomCertificate":
        try:
            layers = [
                LayerWitness(
                    topo_order=np.asarray(lw["topo_order"], dtype=np.int64),
                    edges=np.asarray(lw["edges"], dtype=np.int64).reshape(-1, 2),
                )
                for lw in payload["layers"]
            ]
            return cls(
                engine=str(payload.get("engine", "?")),
                fingerprint=payload.get("fingerprint"),
                num_layers=int(payload["num_layers"]),
                path_layers=np.asarray(payload["path_layers"], dtype=np.int32),
                layers=layers,
            )
        except (KeyError, TypeError, ValueError) as err:
            raise CertificateError(f"malformed certificate payload: {err}") from err

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        atomic_write_text(path, self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DeadlockFreedomCertificate":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as err:
            raise CertificateError(f"cannot read certificate {path}: {err}") from err
        return cls.from_dict(payload)

    # -- checking -------------------------------------------------------
    def check(self) -> CheckResult:
        """Structural check via the independent stdlib checker."""
        return check_certificate(self.to_dict())

    @property
    def num_edges(self) -> int:
        return int(sum(len(lw.edges) for lw in self.layers))

    @property
    def num_nodes(self) -> int:
        return int(sum(len(lw.topo_order) for lw in self.layers))


# ----------------------------------------------------------------------
def _layer_edges(paths: PathSet, pids: np.ndarray) -> np.ndarray:
    """Unique switch-to-switch dependency edges of the given paths.

    Vectorised like :class:`repro.deadlock.incremental.LayerCDG` (but kept
    local: certificates must not depend on the engine-side CDG code):
    consecutive channel pairs of every path, filtered to switch-to-switch
    hops, packed into 64-bit keys and uniqued. Returns (E, 2) int64
    sorted lexicographically.
    """
    if len(pids) == 0:
        return np.zeros((0, 2), dtype=np.int64)
    starts = paths.offsets[pids]
    lens = paths.offsets[pids + 1] - starts
    pair_counts = np.maximum(lens - 1, 0)
    total = int(pair_counts.sum())
    if total == 0:
        return np.zeros((0, 2), dtype=np.int64)
    rep = np.repeat(np.arange(len(pids)), pair_counts)
    first = np.cumsum(pair_counts) - pair_counts
    pos = starts[rep] + (np.arange(total) - first[rep])
    c1 = paths.chans[pos].astype(np.int64)
    c2 = paths.chans[pos + 1].astype(np.int64)
    is_sw = paths.fabric.is_switch_channel
    keep = is_sw[c1] & is_sw[c2]
    keys = np.unique((c1[keep] << 32) | c2[keep])
    return np.stack([keys >> 32, keys & 0xFFFFFFFF], axis=1)


def _topological_order(edges: np.ndarray) -> tuple[np.ndarray | None, list[int] | None]:
    """Deterministic (smallest-id-first) Kahn order over the edge nodes.

    Returns ``(order, None)``, or ``(None, cycle)`` with a minimal
    counterexample when the edge set is cyclic.
    """
    nodes = np.unique(edges)
    succ: dict[int, list[int]] = {}
    indeg = dict.fromkeys(nodes.tolist(), 0)
    for a, b in edges.tolist():
        succ.setdefault(a, []).append(b)
        indeg[b] += 1
    heap = [n for n, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        n = heapq.heappop(heap)
        order.append(n)
        for w in succ.get(n, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, w)
    if len(order) < len(nodes):
        from repro.deadlock.checker import find_minimal_cycle

        return None, find_minimal_cycle([tuple(e) for e in edges.tolist()])
    return np.asarray(order, dtype=np.int64), None


def emit_certificate(
    layered: LayeredRouting,
    paths: PathSet,
    *,
    engine: str | None = None,
    fingerprint: str | None = None,
) -> DeadlockFreedomCertificate:
    """Derive a certificate from a layered routing.

    Only traffic-carrying paths (source switch hosts a terminal) induce
    buffer dependencies; all other paths are recorded as layer -1 so the
    binding check knows they were deliberately excluded. Raises
    :class:`CertificateError` carrying a real witness cycle when a layer's
    CDG is cyclic — there is no certificate for an unsafe routing.
    """
    active = paths.active_mask()
    path_layers = np.where(active, layered.path_layers.astype(np.int32), np.int32(-1))
    layers: list[LayerWitness] = []
    for layer in range(layered.num_layers):
        pids = np.flatnonzero(path_layers == layer)
        edges = _layer_edges(paths, pids)
        order, cycle = _topological_order(edges)
        if cycle is not None:
            chain = " -> ".join(str(c) for c in cycle)
            raise CertificateError(
                f"layer {layer} CDG is cyclic, routing cannot be certified "
                f"(counterexample cycle {chain})",
                layer=layer,
                counterexample=cycle,
            )
        layers.append(LayerWitness(topo_order=order, edges=edges))
    if fingerprint is None:
        fingerprint = fabric_fingerprint(paths.fabric)
    return DeadlockFreedomCertificate(
        engine=engine or layered.tables.engine,
        fingerprint=fingerprint,
        num_layers=layered.num_layers,
        path_layers=path_layers,
        layers=layers,
    )


def check_against_routing(
    cert: DeadlockFreedomCertificate, layered: LayeredRouting, paths: PathSet
) -> CheckResult:
    """Full two-level check: structure + binding to a concrete routing.

    Level 1 delegates to the independent checker (well-formed, every
    layer acyclic). Level 2 binds the certificate to *this* routing:
    fingerprint, layer count, path→layer assignment on traffic-carrying
    paths, and per-layer equality between the certified edges and the
    edges re-derived from the live path set.
    """
    res = check_certificate(cert.to_dict())
    if not res.ok:
        return res

    def fail(reason: str, layer: int | None = None) -> CheckResult:
        return CheckResult(False, reason=reason, layer=layer)

    live_fp = fabric_fingerprint(paths.fabric)
    if cert.fingerprint is not None and cert.fingerprint != live_fp:
        return fail(
            f"certificate was issued for a different fabric "
            f"(fingerprint {cert.fingerprint[:12]}.. != {live_fp[:12]}..)"
        )
    if cert.num_layers != layered.num_layers:
        return fail(
            f"certificate has {cert.num_layers} layers, routing has "
            f"{layered.num_layers}"
        )
    if len(cert.path_layers) != paths.num_paths:
        return fail(
            f"certificate covers {len(cert.path_layers)} paths, routing has "
            f"{paths.num_paths}"
        )
    active = paths.active_mask()
    if not np.array_equal(
        cert.path_layers[active], layered.path_layers[active].astype(np.int32)
    ):
        bad = int(np.flatnonzero(
            active & (cert.path_layers != layered.path_layers.astype(np.int32))
        )[0])
        return fail(
            f"path -> layer assignment does not match the routing (first "
            f"divergence at pid {bad}: certificate says "
            f"{int(cert.path_layers[bad])}, routing says "
            f"{int(layered.path_layers[bad])})"
        )
    for layer in range(cert.num_layers):
        pids = np.flatnonzero(active & (layered.path_layers == layer))
        derived = _layer_edges(paths, pids)
        claimed = cert.layers[layer].edges
        if derived.shape != claimed.shape or not np.array_equal(derived, claimed):
            return fail(
                f"certified dependency edges do not match the routing "
                f"({len(claimed)} certified vs {len(derived)} derived)",
                layer=layer,
            )
    return res


def report_from_check(cert: DeadlockFreedomCertificate, result: CheckResult):
    """Bridge a certificate check into a :class:`VerificationReport`.

    Lets the supervisor's rejection path speak the same language whether
    it verified by full CDG rebuild or by certificate: ``failure_summary``
    then includes the certificate's minimal counterexample.
    """
    from repro.deadlock.verify import VerificationReport

    cycles: dict[int, list[tuple[int, int]]] = {}
    if result.counterexample and result.layer is not None:
        ce = result.counterexample
        cycles[result.layer] = [
            (int(ce[i]), int(ce[i + 1])) for i in range(len(ce) - 1)
        ]
    hist = np.bincount(
        cert.path_layers[cert.path_layers >= 0], minlength=cert.num_layers
    )
    return VerificationReport(
        deadlock_free=result.ok,
        num_layers=cert.num_layers,
        cycles=cycles,
        edges_per_layer=[len(lw.edges) for lw in cert.layers],
        paths_per_layer=[int(v) for v in hist],
        method="certificate",
        failure_reason=result.reason,
        certificate_counterexample=(
            tuple(result.counterexample) if result.counterexample else None
        ),
    )
