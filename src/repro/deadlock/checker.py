"""Standalone deadlock-freedom certificate checker (stdlib only).

Deliberately tiny and dependency-free — no numpy, no ``repro.core`` or
``repro.deadlock.cdg`` imports — so a bug in the routing engines cannot
vouch for itself. A certificate claims "here is a topological order
witnessing that every layer's channel-dependency graph is acyclic"
(Dally & Seitz); checking it is O(V+E): position-map each order, confirm
every edge goes strictly forward. Rejections name the violating edge
and, when the certified edge set genuinely contains a cycle, a *minimal
counterexample* (shortest simple cycle through one violating dependency).

Run standalone (exit 0 iff every certificate is accepted)::

    python -m repro.deadlock.checker cert.json [more.json ...]
"""

from __future__ import annotations

import json
import sys
from collections import deque
from dataclasses import dataclass

FORMAT = 1  # certificate schema version this checker understands
KIND = "deadlock-freedom-certificate"


@dataclass
class CheckResult:
    """Outcome of one certificate check."""

    ok: bool
    reason: str | None = None
    layer: int | None = None
    witness_edge: tuple[int, int] | None = None
    counterexample: list[int] | None = None
    layers: int = 0
    nodes: int = 0
    edges: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return (
                f"certificate OK: {self.layers} layer(s), {self.nodes} CDG node(s), "
                f"{self.edges} dependency edge(s), every layer topologically ordered"
            )
        where = f" in layer {self.layer}" if self.layer is not None else ""
        parts = [f"certificate REJECTED{where}: {self.reason}"]
        if self.witness_edge is not None:
            parts.append(f"witness edge {self.witness_edge[0]} -> {self.witness_edge[1]}")
        if self.counterexample:
            chain = " -> ".join(str(c) for c in self.counterexample)
            parts.append(f"counterexample cycle {chain}")
        return "; ".join(parts)


def _fail(reason, layer=None, edge=None, cycle=None) -> CheckResult:
    return CheckResult(False, reason=reason, layer=layer, witness_edge=edge, counterexample=cycle)


def find_minimal_cycle(edges) -> list[int] | None:
    """A shortest simple cycle of ``edges`` as ``[c, ..., c]``, or ``None``.

    Kahn peel strips the acyclic fringe in O(V+E); a predecessor walk in
    the cyclic core (every surviving node kept an in-core predecessor)
    finds a cycle edge; one BFS minimises the cycle through it.
    """
    succ: dict[int, list[int]] = {}
    indeg: dict[int, int] = {}
    for c1, c2 in edges:
        succ.setdefault(c1, []).append(c2)
        indeg[c2] = indeg.get(c2, 0) + 1
        indeg.setdefault(c1, 0)
    queue, gone = [n for n, d in indeg.items() if d == 0], set()
    while queue:
        n = queue.pop()
        gone.add(n)
        for w in succ.get(n, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    core = set(indeg) - gone
    if not core:
        return None
    pred: dict[int, int] = {}  # one in-core predecessor per core node
    for c1, c2 in edges:
        if c1 in core and c2 in core:
            pred.setdefault(c2, c1)
    seen: set[int] = set()
    last, n = None, min(core)
    while n not in seen:  # predecessor chain must revisit a node: cycle edge found
        seen.add(n)
        last, n = n, pred[n]
    u, v = n, last  # edge u -> v lies on a cycle (pred[v] is u)
    prev: dict[int, int | None] = {v: None}  # BFS: shortest v -> u path in the core
    dq = deque([v])
    while dq:
        n = dq.popleft()
        if n == u:
            break
        for w in sorted(succ.get(n, ())):
            if w in core and w not in prev:
                prev[w] = n
                dq.append(w)
    chain = [u]
    while prev[chain[-1]] is not None:
        chain.append(prev[chain[-1]])
    chain.reverse()  # v ... u; the edge (u, v) closes the cycle
    return chain + [v]


def check_certificate(cert) -> CheckResult:
    """Validate one certificate dict in O(V+E); see the module docstring."""
    if not isinstance(cert, dict):
        return _fail("certificate is not a JSON object")
    if cert.get("kind") != KIND:
        return _fail(f"kind is {cert.get('kind')!r}, expected {KIND!r}")
    if cert.get("format") != FORMAT:
        return _fail(f"unsupported certificate format {cert.get('format')!r}")
    num_layers = cert.get("num_layers")
    if not isinstance(num_layers, int) or num_layers < 1:
        return _fail(f"num_layers must be a positive integer, got {num_layers!r}")
    layers = cert.get("layers")
    if not isinstance(layers, list) or len(layers) != num_layers:
        got = len(layers) if isinstance(layers, list) else type(layers).__name__
        return _fail(f"certificate carries {got} layer witness(es), expected {num_layers}")
    path_layers = cert.get("path_layers")
    if not isinstance(path_layers, list):
        return _fail("path_layers missing or not a list")
    if cert.get("num_paths", len(path_layers)) != len(path_layers):
        return _fail(f"path_layers has {len(path_layers)} entries, num_paths says "
                     f"{cert.get('num_paths')}")
    for i, layer in enumerate(path_layers):
        if not isinstance(layer, int) or not -1 <= layer < num_layers:
            return _fail(f"path_layers[{i}] = {layer!r} outside [-1, {num_layers})")
    total_nodes = total_edges = 0
    for li, witness in enumerate(layers):
        if not isinstance(witness, dict):
            return _fail("layer witness is not an object", layer=li)
        topo, edges = witness.get("topo_order"), witness.get("edges")
        if not isinstance(topo, list) or not isinstance(edges, list):
            return _fail("layer witness needs 'topo_order' and 'edges' lists", layer=li)
        pos: dict[int, int] = {}
        for i, c in enumerate(topo):
            if not isinstance(c, int):
                return _fail(f"topo_order[{i}] = {c!r} is not a channel id", layer=li)
            if c in pos:
                return _fail(f"channel {c} appears twice in the topological order", layer=li)
            pos[c] = i
        pairs: list[tuple[int, int]] = []
        for e in edges:
            if not (isinstance(e, list) and len(e) == 2 and all(isinstance(c, int) for c in e)):
                return _fail(f"malformed dependency edge {e!r}", layer=li)
            if e[0] == e[1]:
                return _fail(f"self-dependency on channel {e[0]}", layer=li,
                             edge=(e[0], e[1]), cycle=[e[0], e[0]])
            pairs.append((e[0], e[1]))
        for c1, c2 in pairs:
            p1, p2 = pos.get(c1), pos.get(c2)
            if p1 is None or p2 is None:
                missing = c1 if p1 is None else c2
                return _fail(f"edge ({c1}, {c2}) references channel {missing} absent "
                             "from the topological order", layer=li, edge=(c1, c2),
                             cycle=find_minimal_cycle(pairs))
            if p1 >= p2:
                return _fail(f"edge ({c1}, {c2}) goes backwards in the claimed topological "
                             f"order (position {p1} >= {p2})", layer=li, edge=(c1, c2),
                             cycle=find_minimal_cycle(pairs))
        total_nodes += len(pos)
        total_edges += len(pairs)
    return CheckResult(True, layers=num_layers, nodes=total_nodes, edges=total_edges)


def check_file(path) -> CheckResult:
    try:
        with open(path, encoding="utf-8") as fp:
            return check_certificate(json.load(fp))
    except (OSError, ValueError) as err:
        return _fail(f"unreadable certificate: {err}")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.deadlock.checker CERT.json [MORE.json ...]")
        return 0 if argv else 2
    rc = 0
    for path in argv:
        result = check_file(path)
        print(f"{path}: {result.summary()}")
        rc = rc if result.ok else 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
