"""Cycle search over channel dependency graphs.

:class:`CycleSearch` implements the offline Algorithm 2's inner loop: it
finds one cycle at a time and *keeps its progress* across calls. Nodes
proven cycle-free ("black") stay settled after paths are removed — edge
removal can never create a cycle — which is how the offline algorithm
gets away with essentially one complete traversal per layer (the paper's
key speed argument versus the online variant).
"""

from __future__ import annotations

import time

from repro.deadlock.cdg import ChannelDependencyGraph
from repro.obs import COUNT_BUCKETS, DURATION_BUCKETS, get_registry

_WHITE, _GRAY, _BLACK = 0, 1, 2


class CycleSearch:
    """Resumable cycle finder on a (mutating) CDG.

    Usage::

        search = CycleSearch(cdg)
        while (cycle := search.find_cycle()) is not None:
            ...  # remove some paths, i.e. delete edges
    """

    def __init__(self, cdg: ChannelDependencyGraph):
        self.cdg = cdg
        self._black: set[int] = set()
        reg = get_registry()
        reg.histogram(
            "cdg_edges", "CDG edge count at cycle-search start", buckets=COUNT_BUCKETS
        ).observe(cdg.num_edges)
        reg.histogram(
            "cdg_nodes", "CDG node (channel) count at cycle-search start",
            buckets=COUNT_BUCKETS,
        ).observe(len(cdg.nodes()))
        self._m_time = reg.histogram(
            "cdg_cycle_search_seconds", "wall time per find_cycle call",
            buckets=DURATION_BUCKETS,
        )
        self._m_found = reg.counter("cdg_cycles_found", "cycles returned by find_cycle")

    def find_cycle(self) -> list[tuple[int, int]] | None:
        """Return one cycle as a list of edges ``[(c1,c2), (c2,c3), ...,
        (ck,c1)]``, or None if the CDG is (now) acyclic.

        Safe to call again after the caller removed edges; previously
        settled cycle-free nodes are not re-explored.
        """
        t0 = time.perf_counter()
        cycle = self._find_cycle()
        self._m_time.observe(time.perf_counter() - t0)
        if cycle is not None:
            self._m_found.inc()
        return cycle

    def _find_cycle(self) -> list[tuple[int, int]] | None:
        color: dict[int, int] = {}
        for start in list(self.cdg.succ):
            if start in self._black or color.get(start, _WHITE) != _WHITE:
                continue
            cycle = self._dfs(start, color)
            if cycle is not None:
                return cycle
        return None

    def _dfs(self, start: int, color: dict[int, int]) -> list[tuple[int, int]] | None:
        succ = self.cdg.successors
        stack: list[tuple[int, list[int]]] = [(start, list(succ(start)))]
        color[start] = _GRAY
        path: list[int] = [start]
        while stack:
            node, todo = stack[-1]
            if todo:
                nxt = todo.pop()
                if nxt in self._black:
                    continue
                c = color.get(nxt, _WHITE)
                if c == _GRAY:
                    # Found a back edge: the cycle is the gray path from
                    # nxt to node, closed by (node, nxt).
                    i = path.index(nxt)
                    nodes = path[i:]
                    edges = [(nodes[k], nodes[k + 1]) for k in range(len(nodes) - 1)]
                    edges.append((node, nxt))
                    return edges
                if c == _WHITE:
                    color[nxt] = _GRAY
                    stack.append((nxt, list(succ(nxt))))
                    path.append(nxt)
                # BLACK within this call: skip.
            else:
                color[node] = _BLACK
                self._black.add(node)
                stack.pop()
                path.pop()
        return None


def find_any_cycle(cdg: ChannelDependencyGraph) -> list[tuple[int, int]] | None:
    """One-shot cycle search (fresh state)."""
    return CycleSearch(cdg).find_cycle()


def is_acyclic(cdg: ChannelDependencyGraph) -> bool:
    return find_any_cycle(cdg) is None
