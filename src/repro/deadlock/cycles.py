"""Cycle search over channel dependency graphs.

:class:`CycleSearch` implements the offline Algorithm 2's inner loop: it
finds one cycle at a time and *keeps its progress* across calls. Nodes
proven cycle-free ("black") stay settled after paths are removed — edge
removal can never create a cycle — which is how the offline algorithm
gets away with essentially one complete traversal per layer (the paper's
key speed argument versus the online variant).
"""

from __future__ import annotations

import time

from repro.deadlock.cdg import ChannelDependencyGraph
from repro.obs import COUNT_BUCKETS, DURATION_BUCKETS, get_registry

_WHITE, _GRAY, _BLACK = 0, 1, 2


class CycleSearch:
    """Resumable cycle finder on a (mutating) CDG.

    Usage::

        search = CycleSearch(cdg)
        while (cycle := search.find_cycle()) is not None:
            ...  # remove some paths, i.e. delete edges
    """

    def __init__(self, cdg: ChannelDependencyGraph):
        self.cdg = cdg
        self._black: set[int] = set()
        reg = get_registry()
        reg.histogram(
            "cdg_edges", "CDG edge count at cycle-search start", buckets=COUNT_BUCKETS
        ).observe(cdg.num_edges)
        reg.histogram(
            "cdg_nodes", "CDG node (channel) count at cycle-search start",
            buckets=COUNT_BUCKETS,
        ).observe(len(cdg.nodes()))
        self._m_time = reg.histogram(
            "cdg_cycle_search_seconds", "wall time per find_cycle call",
            buckets=DURATION_BUCKETS,
        )
        self._m_found = reg.counter("cdg_cycles_found", "cycles returned by find_cycle")

    def find_cycle(self) -> list[tuple[int, int]] | None:
        """Return one cycle as a list of edges ``[(c1,c2), (c2,c3), ...,
        (ck,c1)]``, or None if the CDG is (now) acyclic.

        Safe to call again after the caller removed edges; previously
        settled cycle-free nodes are not re-explored.
        """
        t0 = time.perf_counter()
        cycle = self._find_cycle()
        self._m_time.observe(time.perf_counter() - t0)
        if cycle is not None:
            self._m_found.inc()
        return cycle

    def _find_cycle(self) -> list[tuple[int, int]] | None:
        color: dict[int, int] = {}
        for start in list(self.cdg.succ):
            if start in self._black or color.get(start, _WHITE) != _WHITE:
                continue
            cycle = self._dfs(start, color)
            if cycle is not None:
                return cycle
        return None

    def _dfs(self, start: int, color: dict[int, int]) -> list[tuple[int, int]] | None:
        succ = self.cdg.successors
        stack: list[tuple[int, list[int]]] = [(start, list(succ(start)))]
        color[start] = _GRAY
        path: list[int] = [start]
        while stack:
            node, todo = stack[-1]
            if todo:
                nxt = todo.pop()
                if nxt in self._black:
                    continue
                c = color.get(nxt, _WHITE)
                if c == _GRAY:
                    # Found a back edge: the cycle is the gray path from
                    # nxt to node, closed by (node, nxt).
                    i = path.index(nxt)
                    nodes = path[i:]
                    edges = [(nodes[k], nodes[k + 1]) for k in range(len(nodes) - 1)]
                    edges.append((node, nxt))
                    return edges
                if c == _WHITE:
                    color[nxt] = _GRAY
                    stack.append((nxt, list(succ(nxt))))
                    path.append(nxt)
                # BLACK within this call: skip.
            else:
                color[node] = _BLACK
                self._black.add(node)
                stack.pop()
                path.pop()
        return None


def find_any_cycle(cdg: ChannelDependencyGraph) -> list[tuple[int, int]] | None:
    """One-shot cycle search (fresh state)."""
    return CycleSearch(cdg).find_cycle()


def is_acyclic(cdg: ChannelDependencyGraph) -> bool:
    return find_any_cycle(cdg) is None


# ----------------------------------------------------------------------
# Canonical SCC-based cycle selection (shared by the rebuild-based and
# the incremental cycle-breaking engines).
#
# The offline Algorithm 2 only needs *some* cycle each iteration, but two
# engines can only produce bit-identical layer assignments if they agree
# on which one. SCCs are a property of the graph — not of any traversal
# order — so both engines run Tarjan once per layer, order the
# non-trivial components by smallest channel id, and then *drain* each
# component with the deterministic min-successor walk below. Every
# choice is a pure function of the current edge set, never of dict or
# traversal order.
# ----------------------------------------------------------------------


def tarjan_sccs(nodes, successors) -> list[set[int]]:
    """Strongly connected components of the subgraph induced by ``nodes``.

    ``successors(v)`` yields v's successors (they are filtered against
    ``nodes``); the traversal is iterative, so recursion depth never
    limits fabric size. Only *non-trivial* components (≥ 2 nodes) are
    returned — a CDG has no self-loops (a path cannot use the same
    channel twice in a row), so singletons are always cycle-free.
    """
    members = set(nodes)
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[set[int]] = []
    counter = 0

    for root in members:
        if root in index:
            continue
        # Each frame: (node, iterator over remaining successors).
        work: list[tuple[int, list[int]]] = [
            (root, [w for w in successors(root) if w in members])
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, todo = work[-1]
            if todo:
                w = todo.pop()
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, [x for x in successors(w) if x in members]))
                elif w in on_stack:
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[v] < lowlink[parent]:
                        lowlink[parent] = lowlink[v]
                if lowlink[v] == index[v]:
                    comp: set[int] = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.add(w)
                        if w == v:
                            break
                    if len(comp) >= 2:
                        sccs.append(comp)
    return sccs


def drain_cycles(members, successors):
    """Yield every cycle inside one SCC's membership, deterministically.

    ``members`` is a non-trivial SCC of the layer's CDG at the last
    condensation; ``successors(v)`` must reflect the *current* (shrinking)
    edge set. After each yielded cycle the caller evicts one of its edges
    (all paths inducing it leave the layer), which is the only mutation
    allowed between yields.

    The walk starts at the smallest member channel and repeatedly steps
    to the smallest in-member successor. A revisit closes the canonical
    cycle; a node with no in-member successor is *stranded* — it cannot
    lie on any cycle within the membership now, and edge deletion keeps
    it that way, so it is removed permanently and the walk backtracks.
    After a yield the walk restarts from the smallest member (evictions
    may delete edges anywhere in the graph).

    Every decision is a function of (membership set, current edge set),
    so two engines that evict identically observe identical cycles —
    the bit-identical contract between the rebuild-based reference and
    :mod:`repro.deadlock.incremental`. When the generator is exhausted
    the subgraph induced by the original membership is acyclic; since
    every cycle of the full graph lives inside a single condensation
    component and later mutations only delete edges, draining each
    component once leaves the whole layer acyclic with no re-search.
    """
    members = set(members)
    while len(members) >= 2:  # no self-loops in a CDG, so <2 is acyclic
        start = min(members)
        pos = {start: 0}
        walk = [start]
        while walk:
            v = walk[-1]
            nxt = None
            for w in successors(v):
                if w in members and (nxt is None or w < nxt):
                    nxt = w
            if nxt is None:
                members.discard(v)
                del pos[v]
                walk.pop()
                continue
            j = pos.get(nxt)
            if j is not None:
                nodes = walk[j:]
                edges = [(nodes[k], nodes[k + 1]) for k in range(len(nodes) - 1)]
                edges.append((v, nxt))
                yield edges
                break  # restart from min(members): edges changed
            pos[nxt] = len(walk)
            walk.append(nxt)
