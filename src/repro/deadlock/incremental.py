"""Incremental CDG engine: vectorized cycle-breaking for Algorithm 2.

The offline layer assignment spends its time in two places: building the
channel dependency graph of every layer (one dict operation per
consecutive channel pair of every path) and re-searching for cycles
after every edge eviction. This module removes both costs:

* **CSR build.** Each layer's CDG is materialised in one vectorized pass
  over the :class:`~repro.routing.paths.PathSet`'s flat arrays: all
  consecutive (c1, c2) switch-channel pairs of the layer's paths are
  extracted with NumPy indexing, deduplicated into a sorted edge table
  (``edge_key = c1 << 32 | c2``), and two inverted CSR indexes are built
  alongside — edge → inducing path ids and path id → induced edges.
* **Delta eviction.** Moving the paths of one edge to the next layer
  only *removes* edges from the current layer: weights are decremented
  with one ``bincount`` over the movers' edge occurrences and edges
  reaching weight zero flip an ``alive`` mask. Nothing is rebuilt; the
  next layer's CDG is vector-built once when processing reaches it.
* **SCC certification, once per layer.** A vectorized Kahn peel strips
  everything that cannot lie on a cycle in O(V+E); Tarjan condensation
  runs only on the surviving core, and each non-trivial component is
  then *drained* of cycles (:func:`repro.deadlock.cycles.drain_cycles`)
  without ever re-condensing — edge deletion cannot create cycles or
  merge components, so one condensation per layer certifies the
  remainder for good.

Cycle selection is canonical: components are processed in ascending
smallest-channel-id order, the drain walk steps minimum-successor-first,
and the heuristics break weight ties toward the lowest ``(c1, c2)``
pair. Every choice is a pure function of the current edge set, which the
rebuild-based reference (:func:`repro.core.layers.assign_layers_offline`)
maintains as dict-of-dict structures and this engine maintains as array
deltas — hence the two produce **bit-identical** layer assignments.
``tests/deadlock/test_incremental.py`` proves it differentially and
``debug=True`` cross-checks the delta-applied arrays against a full dict
rebuild after every eviction.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristics import get_heuristic
from repro.core.layers import (
    DEFAULT_MAX_LAYERS,
    LayerAssignment,
    _balance_layers,
    _compact,
)
from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import tarjan_sccs
from repro.exceptions import InsufficientLayersError, ReproError
from repro.obs import COUNT_BUCKETS, get_hooks, get_registry, span
from repro.routing.paths import PathSet
from repro.service.budget import check_budget

_KEY_SHIFT = 32
_KEY_MASK = (1 << _KEY_SHIFT) - 1


class LayerCDG:
    """One layer's CDG as sorted CSR arrays with inverted path indexes.

    Edges are stored sorted by packed key ``(c1 << 32) | c2``, so the
    adjacency of a channel is a contiguous edge-id range (successors come
    out in ascending channel-id order — exactly the drain walk's order)
    and edge lookup is a binary search. ``alive`` masks deleted edges and
    ``active`` masks paths that have moved to a higher layer; neither
    array ever grows, matching the eviction loop's remove-only life. The
    hot walk path uses plain-Python mirrors (``_dst`` list, ``_alive``
    bytearray, ``_adj`` range dict) — per-element NumPy indexing would
    dominate the drain otherwise.
    """

    def __init__(self, paths: PathSet, pids: np.ndarray):
        self.paths = paths
        self.pids = np.asarray(pids, dtype=np.int64)
        if len(self.pids) and np.any(np.diff(self.pids) <= 0):
            raise ReproError("LayerCDG requires strictly increasing pids")
        is_sw = paths.fabric.is_switch_channel

        starts = paths.offsets[self.pids]
        lens = paths.offsets[self.pids + 1] - starts
        pair_counts = np.maximum(lens - 1, 0)
        total = int(pair_counts.sum())

        if total:
            rep = np.repeat(np.arange(len(self.pids)), pair_counts)
            first = np.cumsum(pair_counts) - pair_counts
            pos = starts[rep] + (np.arange(total) - first[rep])
            c1 = paths.chans[pos].astype(np.int64)
            c2 = paths.chans[pos + 1].astype(np.int64)
            keep = is_sw[c1] & is_sw[c2]
            key = (c1[keep] << _KEY_SHIFT) | c2[keep]
            row = rep[keep]
        else:
            key = np.zeros(0, dtype=np.int64)
            row = np.zeros(0, dtype=np.int64)

        # Sort occurrences by (edge, path) and drop duplicates so weights
        # count *distinct* inducing paths, like the dict CDG's sets (a
        # loop-free path cannot repeat a pair, but stay defensive).
        order = np.lexsort((row, key))
        key, row = key[order], row[order]
        if len(key):
            dup = np.zeros(len(key), dtype=bool)
            dup[1:] = (key[1:] == key[:-1]) & (row[1:] == row[:-1])
            key, row = key[~dup], row[~dup]

        # Edge table (sorted by key) + edge -> path-rows CSR. ``key`` is
        # already sorted, so run boundaries replace a second np.unique sort.
        if len(key):
            head = np.empty(len(key), dtype=bool)
            head[0] = True
            np.not_equal(key[1:], key[:-1], out=head[1:])
            run_starts = np.flatnonzero(head)
            self.edge_key = key[run_starts]
            counts = np.diff(np.append(run_starts, len(key)))
        else:
            self.edge_key = key
            counts = np.zeros(0, dtype=np.int64)
        self.weight = counts.astype(np.int64)
        self.alive = np.ones(len(self.edge_key), dtype=bool)
        self.edge_src = (self.edge_key >> _KEY_SHIFT).astype(np.int64)
        self.edge_dst = (self.edge_key & _KEY_MASK).astype(np.int64)
        self.e_off = np.zeros(len(self.edge_key) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.e_off[1:])
        self.e_rows = row  # grouped by edge, ascending path row inside

        # Path row -> edge ids CSR (occurrences back in path-major order).
        eid = np.repeat(np.arange(len(self.edge_key)), counts)
        back = np.argsort(row, kind="stable")
        self.p_off = np.zeros(len(self.pids) + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=len(self.pids)), out=self.p_off[1:])
        self.p_eids = eid[back]

        # Hot-path mirrors, all edge-table sized (paths-sized data stays
        # in NumPy and is sliced per eviction): edge ids of channel c
        # are the contiguous range _adj[c]; weights, liveness and lookup
        # are plain Python — the walk and the heuristics touch single
        # elements, where NumPy's per-call overhead would dominate.
        self._active = bytearray(b"\x01" * len(self.pids))
        self._dst: list[int] = self.edge_dst.tolist()
        self._weight: list[int] = self.weight.tolist()
        self._alive = bytearray(b"\x01" * len(self.edge_key))
        self._eidx: dict[int, int] = {
            k: i for i, k in enumerate(self.edge_key.tolist())
        }
        self._adj: dict[int, tuple[int, int]] = {}
        if len(self.edge_src):
            bounds = np.flatnonzero(np.diff(self.edge_src)) + 1
            lows = np.concatenate(([0], bounds))
            highs = np.concatenate((bounds, [len(self.edge_src)]))
            for c, lo, hi in zip(
                self.edge_src[lows].tolist(), lows.tolist(), highs.tolist()
            ):
                self._adj[c] = (lo, hi)
        self._num_nodes: int | None = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(np.count_nonzero(self.alive))

    @property
    def num_paths(self) -> int:
        return sum(self._active)

    def _eid(self, c1: int, c2: int) -> int:
        return self._eidx.get((int(c1) << _KEY_SHIFT) | int(c2), -1)

    def edge_weight(self, c1: int, c2: int) -> int:
        """Distinct inducing paths of edge (c1, c2) — the heuristics' key."""
        i = self._eidx.get((c1 << _KEY_SHIFT) | c2, -1)
        return self._weight[i] if i >= 0 and self._alive[i] else 0

    def pids_of_edge(self, c1: int, c2: int) -> list[int]:
        """Active inducing path ids of (c1, c2), ascending."""
        i = self._eid(c1, c2)
        if i < 0:
            return []
        active = self._active
        rows = self.e_rows[self.e_off[i] : self.e_off[i + 1]]
        return [int(p) for p, r in zip(self.pids[rows], rows) if active[r]]

    def successors(self, c: int) -> list[int]:
        """Alive successors of channel ``c``, ascending."""
        lo, hi = self._adj.get(c, (0, 0))
        alive, dst = self._alive, self._dst
        return [dst[e] for e in range(lo, hi) if alive[e]]

    def drain_cycles(self, membership):
        """CSR-specialised :func:`repro.deadlock.cycles.drain_cycles`.

        Computes the exact same cycle sequence as the shared generator
        (the differential suite proves it), with three delta-aware
        shortcuts the dict engine cannot take:

        * destinations are stored ascending per channel, so the first
          alive in-member destination *is* the minimum successor — the
          scan early-exits instead of building a successor list;
        * the membership minimum never decreases (members only shrink),
          so a pointer into the sorted membership replaces per-restart
          ``min()`` scans;
        * an eviction only deletes edges, so the canonical walk replays
          identically up to the first node whose chosen edge died. The
          caller reports the newly dead edge ids via ``send()`` and the
          walk resumes from the cached prefix instead of re-tracing
          from the start.
        """
        adj, alive, dst = self._adj, self._alive, self._dst
        members = set(membership)
        ordered = sorted(members)
        low = 0
        pos: dict[int, int] = {}
        eid_at: dict[int, int] = {}  # chosen edge id -> index of its source in walk
        walk: list[int] = []
        chosen: list[int] = []  # chosen[k] = edge id walk[k] -> walk[k+1]
        while len(members) >= 2:  # no self-loops in a CDG
            if not walk:
                while ordered[low] not in members:
                    low += 1
                start = ordered[low]
                pos = {start: 0}
                eid_at = {}
                walk = [start]
                chosen = []
            v = walk[-1]
            lo, hi = adj.get(v, (0, 0))
            nxt = e_nxt = None
            for e in range(lo, hi):
                if alive[e] and dst[e] in members:
                    nxt = dst[e]
                    e_nxt = e
                    break
            if nxt is None:
                members.discard(v)
                del pos[v]
                walk.pop()
                if chosen:
                    del eid_at[chosen.pop()]
                continue
            j = pos.get(nxt)
            if j is None:
                pos[nxt] = len(walk)
                eid_at[e_nxt] = len(walk) - 1
                chosen.append(e_nxt)
                walk.append(nxt)
                continue
            nodes = walk[j:]
            edges = [(nodes[k], nodes[k + 1]) for k in range(len(nodes) - 1)]
            edges.append((v, nxt))
            newly_dead = yield edges
            # Resume: cut the walk at the earliest node whose chosen
            # edge died (the closing edge was never appended, so the
            # final node re-chooses automatically). Everything before
            # the cut would replay identically from a fresh restart.
            cut = len(walk) - 1
            for e in newly_dead:
                k = eid_at.get(e)
                if k is not None and k < cut:
                    cut = k
            for node in walk[cut + 1 :]:
                del pos[node]
            for e in chosen[cut:]:
                del eid_at[e]
            del walk[cut + 1 :]
            del chosen[cut:]

    def nodes(self) -> np.ndarray:
        """Channels with at least one alive incident edge."""
        return np.unique(
            np.concatenate([self.edge_src[self.alive], self.edge_dst[self.alive]])
        )

    # ------------------------------------------------------------------
    def evict_edge(self, c1: int, c2: int) -> tuple[list[int], list[int]]:
        """Delta-apply: move every active path inducing (c1, c2) out.

        Decrements every edge the movers induce and kills edges that
        reach weight zero. Returns ``(mover_pids, newly_dead_edge_ids)``,
        both ascending. A typical eviction moves a handful of paths
        touching a few dozen edges, so the whole delta runs on the
        Python mirrors (``_weight``/``_alive``/``_active`` are
        authoritative after build); the NumPy ``alive`` column stays in
        sync for the vectorized readers (:meth:`nodes`,
        :meth:`certify_core`).
        """
        i = self._eid(c1, c2)
        active = self._active
        all_rows = self.e_rows[self.e_off[i] : self.e_off[i + 1]]
        rows = [r for r in all_rows.tolist() if active[r]]
        newly_dead: list[int] = []
        w, alive = self._weight, self._alive
        p_off, p_eids = self.p_off, self.p_eids
        for r in rows:
            active[r] = 0
            for e in p_eids[p_off[r] : p_off[r + 1]].tolist():
                w[e] -= 1
                if not w[e] and alive[e]:
                    alive[e] = 0
                    newly_dead.append(e)
        if newly_dead:
            self.alive[newly_dead] = False
        movers = self.pids[rows].tolist() if rows else []
        return movers, newly_dead

    # ------------------------------------------------------------------
    def certify_core(self) -> np.ndarray:
        """Vectorized Kahn peel: nodes that can still lie on a cycle.

        Repeatedly strips zero-in-degree nodes with whole-array
        operations; an empty result certifies the layer acyclic in
        O(V+E) total work, with Tarjan needed only on the survivors.
        """
        src = self.edge_src[self.alive]
        dst = self.edge_dst[self.alive]
        if not len(src):
            self._num_nodes = 0
            return np.zeros(0, dtype=np.int64)
        nodes = np.unique(np.concatenate([src, dst]))
        self._num_nodes = len(nodes)
        a1 = np.searchsorted(nodes, src)
        a2 = np.searchsorted(nodes, dst)
        indeg = np.bincount(a2, minlength=len(nodes))
        edge_up = np.ones(len(a1), dtype=bool)
        gone = np.zeros(len(nodes), dtype=bool)
        while True:
            zero = ~gone & (indeg == 0)
            if not zero.any():
                break
            gone[zero] = True
            drop = edge_up & zero[a1]
            if drop.any():
                indeg -= np.bincount(a2[drop], minlength=len(nodes))
                edge_up[drop] = False
        return nodes[~gone]


def _crosscheck(cdg: LayerCDG) -> None:
    """Debug mode: rebuild the layer as a dict CDG and compare."""
    ref = ChannelDependencyGraph(cdg.paths.fabric)
    for pid, live in zip(cdg.pids.tolist(), cdg._active):
        if live:
            ref.add_path(pid, cdg.paths.path(pid))
    want = {
        (c1, c2): len(pids)
        for c1, row in ref.succ.items()
        for c2, pids in row.items()
    }
    got = {
        (int(c1), int(c2)): w
        for c1, c2, w, a in zip(
            cdg.edge_src.tolist(), cdg.edge_dst.tolist(), cdg._weight, cdg._alive
        )
        if a
    }
    if got != want:
        extra = sorted(set(got) - set(want))[:5]
        missing = sorted(set(want) - set(got))[:5]
        drift = sorted(e for e in set(got) & set(want) if got[e] != want[e])[:5]
        raise ReproError(
            "incremental CDG diverged from full rebuild: "
            f"extra={extra} missing={missing} weight-drift={drift}"
        )
    for c1, c2 in list(want)[:64]:
        ref_pids = sorted(ref.pids_of_edge(c1, c2))
        if list(cdg.pids_of_edge(c1, c2)) != ref_pids:
            raise ReproError(
                f"incremental inverted index diverged on edge ({c1}, {c2})"
            )


def _fast_heuristic(name: str, cdg: LayerCDG):
    """Bind a heuristic to one layer's mirrors.

    Computes exactly what :mod:`repro.core.heuristics` computes —
    minimum (weight, edge) / (-weight, edge) / first — but reads the
    weight through the layer's dict index instead of a per-edge method
    call; the heuristic runs once per cycle edge per eviction, which is
    hot enough to matter.
    """
    if name == "first":
        return lambda cycle: cycle[0]
    eidx, w = cdg._eidx, cdg._weight
    if name == "weakest":

        def pick(cycle):
            best = None
            bw = 0
            for e in cycle:
                we = w[eidx[(e[0] << _KEY_SHIFT) | e[1]]]
                if best is None or we < bw or (we == bw and e < best):
                    best, bw = e, we
            return best

    else:  # strongest (get_heuristic already rejected unknown names)

        def pick(cycle):
            best = None
            bw = 0
            for e in cycle:
                we = w[eidx[(e[0] << _KEY_SHIFT) | e[1]]]
                if best is None or we > bw or (we == bw and e < best):
                    best, bw = e, we
            return best

    return pick


def assign_layers_incremental(
    paths: PathSet,
    max_layers: int = DEFAULT_MAX_LAYERS,
    heuristic: str = "weakest",
    balance: bool = True,
    pids=None,
    debug: bool = False,
) -> LayerAssignment:
    """Offline Algorithm 2 on the incremental CDG engine.

    Bit-identical to :func:`repro.core.layers.assign_layers_offline`
    (the rebuild-based reference) for every heuristic — same
    ``path_layers``, ``layers_needed``, ``cycles_broken`` and
    ``paths_moved``. ``debug=True`` cross-checks the delta-applied
    arrays against a full dict rebuild after every eviction.
    """
    if max_layers < 1:
        raise ValueError(f"max_layers must be >= 1, got {max_layers}")
    get_heuristic(heuristic)  # validate the name; fast paths below
    path_layers = np.zeros(paths.num_paths, dtype=np.int16)
    if pids is None:
        pids = np.arange(paths.num_paths, dtype=np.int64)
    elif not isinstance(pids, np.ndarray):
        pids = np.fromiter(pids, dtype=np.int64)
    pids = np.unique(pids.astype(np.int64, copy=False))

    reg = get_registry()
    hooks = get_hooks()
    m_cycles = reg.counter(
        "dfsssp_cycles_broken", "CDG cycles broken during offline layer assignment"
    )
    m_moved = reg.counter("dfsssp_paths_moved", "paths relocated to a higher virtual layer")
    m_evicted = reg.counter(
        "dfsssp_edges_evicted", "cycle edges evicted from a layer's CDG",
        heuristic=str(heuristic),
    )
    m_delta = reg.counter(
        "cdg_incremental_edges_removed",
        "CDG edges deleted by delta eviction (incremental engine)",
    )
    m_drained = reg.counter(
        "cdg_incremental_sccs_drained",
        "non-trivial SCCs drained of cycles (incremental engine)",
    )
    h_edges = reg.histogram(
        "cdg_edges", "CDG edge count at cycle-search start", buckets=COUNT_BUCKETS
    )
    h_nodes = reg.histogram(
        "cdg_nodes", "CDG node (channel) count at cycle-search start",
        buckets=COUNT_BUCKETS,
    )

    cycles_broken = 0
    paths_moved = 0
    layer = 0
    members = pids  # pids assigned to the current layer
    with span("layers.assign_offline", heuristic=str(heuristic), max_layers=max_layers,
              cdg="incremental"):
        while len(members):
            with span("layers.layer", layer=layer) as sp:
                with span("cdg.build", layer=layer, paths=len(members)):
                    cdg = LayerCDG(paths, members)
                h_edges.observe(cdg.num_edges)

                with span("cdg.certify", layer=layer):
                    core = cdg.certify_core()
                    sccs = tarjan_sccs(core.tolist(), cdg.successors) if len(core) else []
                h_nodes.observe(cdg._num_nodes)  # counted during the peel

                pick = _fast_heuristic(heuristic, cdg)
                moved_out: list[int] = []
                for membership in sorted(sccs, key=min):
                    m_drained.inc()
                    drain = cdg.drain_cycles(membership)
                    cycle = next(drain, None)
                    while cycle is not None:
                        check_budget()  # cooperative deadline (repro.service)
                        if layer + 1 >= max_layers:
                            raise InsufficientLayersError(
                                f"cycles remain after filling all {max_layers} layers",
                                layers_available=max_layers,
                                layers_needed_at_least=max_layers + 1,
                            )
                        edge = pick(cycle)
                        movers, newly_dead = cdg.evict_edge(*edge)
                        assert movers, "cycle edge without inducing paths"
                        moved_out.extend(movers)

                        cycles_broken += 1
                        paths_moved += len(movers)
                        m_cycles.inc()
                        m_evicted.inc()
                        m_moved.inc(len(movers))
                        m_delta.inc(len(newly_dead))
                        hooks.cycle_broken(
                            layer=layer,
                            edge=(int(edge[0]), int(edge[1])),
                            paths_moved=len(movers),
                            heuristic=str(heuristic),
                        )
                        if debug:
                            _crosscheck(cdg)
                        try:
                            # The walk resumes from its cached prefix,
                            # cut at the first edge the eviction killed.
                            cycle = drain.send(newly_dead)
                        except StopIteration:
                            cycle = None

                sp.set_attr("paths", cdg.num_paths)
                sp.set_attr("edges", cdg.num_edges)
            hooks.layer_closed(layer=layer, paths=cdg.num_paths, edges=cdg.num_edges)
            if moved_out:
                members = np.sort(np.asarray(moved_out, dtype=np.int64))
                path_layers[members] = layer + 1
            else:
                members = np.zeros(0, np.int64)
            layer += 1

    layers_needed = _compact(path_layers)
    if balance and layers_needed < max_layers:
        _balance_layers(path_layers, layers_needed, max_layers, pids=pids)
    return LayerAssignment(
        path_layers=path_layers,
        layers_needed=layers_needed,
        num_layers=max_layers,
        cycles_broken=cycles_broken,
        paths_moved=paths_moved,
        balanced=balance,
    )
