"""Sharded CDG engine: Algorithm 2 eviction batched across independent SCCs.

The incremental engine (:mod:`repro.deadlock.incremental`) already makes
every per-layer step vectorized or delta-applied, but it still drains the
layer's strongly connected components strictly one after another. On
interconnect-scale fabrics a layer routinely condenses into *many*
non-trivial SCCs, and most of them share nothing: an eviction only
mutates state reachable from the paths it moves, so two components whose
inducing-path sets are disjoint can be drained in any order — or at the
same time — without observing each other.

This module makes that independence explicit and exploits it:

* **Sharding.** After the per-layer condensation, SCCs are merged into
  *shards* with a union–find over shared inducing paths: one occurrence
  scan over the layer's intra-SCC edges links every component touching a
  common path row. By construction, evicting any intra-shard edge moves
  only that shard's paths and therefore decrements only edges induced by
  them — never another shard's intra-SCC edges (their inducing paths are
  disjoint) — and the heuristics only read intra-cycle edge weights, so
  shards are mutually invisible.
* **Restricted replays.** Each shard is drained against a CDG built from
  just its own path rows. Intra-shard edges have identical weights there
  (all their inducing paths are in the shard), adjacency scans skip
  out-of-membership destinations regardless of liveness, and the drain
  walk, heuristic picks and evictions therefore replay the incremental
  engine's sequence for that shard *exactly*.
* **Optional process fan-out** (``workers >= 1``). Shards are
  embarrassingly parallel, so they can be dispatched to a fork pool —
  each worker builds its shard's restricted CDG and returns
  ``(movers, cycles broken)``; compute budgets are snapshotted into the
  tasks and re-armed worker-side like the SSSP executor does. With
  ``workers=0`` everything runs inline on the full layer CDG (then the
  restricted build is skipped — the full CDG *is* the restriction).

Bit-identity: per shard the eviction sequence equals the serial one, and
the engine only ever publishes order-insensitive aggregates — the union
of movers is sorted before becoming the next layer's membership, and
``cycles_broken``/``paths_moved`` are sums — so ``path_layers``,
``layers_needed``, ``cycles_broken`` and ``paths_moved`` all match
:func:`repro.deadlock.incremental.assign_layers_incremental` and the
rebuild reference exactly (``tests/deadlock/test_sharded.py`` proves it
across topology families, heuristics and worker counts). A layer
overflow (`InsufficientLayersError`) is equally deterministic: whichever
shard still holds a cycle when ``layer + 1 == max_layers`` raises the
same exception the serial engine would.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristics import get_heuristic
from repro.core.layers import (
    DEFAULT_MAX_LAYERS,
    LayerAssignment,
    _balance_layers,
    _compact,
)
from repro.deadlock.cycles import tarjan_sccs
from repro.deadlock.incremental import LayerCDG, _crosscheck, _fast_heuristic
from repro.exceptions import InsufficientLayersError
from repro.obs import COUNT_BUCKETS, get_hooks, get_registry, span
from repro.routing.paths import PathSet
from repro.service.budget import check_budget, compute_budget


def _shard_sccs(cdg: LayerCDG, sccs: list[set[int]]):
    """Partition ``sccs`` into shards with disjoint inducing-path sets.

    Returns ``[(sccs_of_shard, pid_rows_of_shard), ...]`` where the
    shard's SCCs keep the serial engine's ascending-min order and
    ``pid_rows`` indexes ``cdg.pids`` (sorted, unique: every path row
    inducing at least one intra-shard edge). Shards are ordered by their
    first SCC's minimum channel, i.e. the order the serial engine would
    first touch them.
    """
    n_ch = int(max(cdg.edge_src.max(), cdg.edge_dst.max())) + 1
    scc_of = np.full(n_ch, -1, dtype=np.int64)
    for si, comp in enumerate(sccs):
        scc_of[list(comp)] = si

    s_src = scc_of[cdg.edge_src]
    intra = cdg.alive & (s_src >= 0) & (s_src == scc_of[cdg.edge_dst])
    eids = np.flatnonzero(intra)
    counts = cdg.e_off[eids + 1] - cdg.e_off[eids]
    total = int(counts.sum())
    first = np.cumsum(counts) - counts
    rep = np.repeat(np.arange(len(eids)), counts)
    occ = np.repeat(cdg.e_off[eids], counts) + (np.arange(total) - first[rep])
    rows = cdg.e_rows[occ]  # inducing path row per intra-edge occurrence
    occ_scc = s_src[eids][rep]

    # Union-find over SCC ids: occurrences of the same path row link
    # every SCC that row induces an intra edge in.
    parent = list(range(len(sccs)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    order = np.argsort(rows, kind="stable")
    rows_s = rows[order]
    scc_s = occ_scc[order]
    run_start = 0
    for i in range(1, total + 1):
        if i == total or rows_s[i] != rows_s[run_start]:
            root = find(int(scc_s[run_start]))
            for j in range(run_start + 1, i):
                other = find(int(scc_s[j]))
                if other != root:
                    parent[other] = root
            run_start = i

    shard_sccs: dict[int, list[set[int]]] = {}
    for si in range(len(sccs)):
        shard_sccs.setdefault(find(si), []).append(sccs[si])
    shard_rows: dict[int, list[np.ndarray]] = {r: [] for r in shard_sccs}
    roots = np.fromiter((find(int(s)) for s in scc_s), dtype=np.int64, count=total)
    for root in shard_rows:
        shard_rows[root] = np.unique(rows_s[roots == root])

    shards = [
        (comps, shard_rows[root]) for root, comps in shard_sccs.items()
    ]
    shards.sort(key=lambda s: min(min(c) for c in s[0]))
    for comps, _ in shards:
        comps.sort(key=min)
    return shards


def _drain_shard(
    cdg: LayerCDG,
    comps: list[set[int]],
    heuristic: str,
    layer: int,
    max_layers: int,
    debug: bool = False,
    on_cycle=None,
):
    """Drain one shard's SCCs in serial order on ``cdg``.

    ``cdg`` is either the full layer CDG (inline mode) or the shard's
    restricted CDG (worker mode) — the eviction sequence is identical
    (module docstring). Returns ``(mover_pids, cycles_broken)``; raises
    :class:`InsufficientLayersError` exactly when the serial engine
    would.
    """
    pick = _fast_heuristic(heuristic, cdg)
    moved: list[int] = []
    cycles_broken = 0
    for membership in comps:
        drain = cdg.drain_cycles(membership)
        cycle = next(drain, None)
        while cycle is not None:
            check_budget()  # cooperative deadline (repro.service)
            if layer + 1 >= max_layers:
                raise InsufficientLayersError(
                    f"cycles remain after filling all {max_layers} layers",
                    layers_available=max_layers,
                    layers_needed_at_least=max_layers + 1,
                )
            edge = pick(cycle)
            movers, newly_dead = cdg.evict_edge(*edge)
            assert movers, "cycle edge without inducing paths"
            moved.extend(movers)
            cycles_broken += 1
            if on_cycle is not None:
                on_cycle(edge, movers, newly_dead)
            if debug:
                _crosscheck(cdg)
            try:
                cycle = drain.send(newly_dead)
            except StopIteration:
                cycle = None
    return moved, cycles_broken


# ----------------------------------------------------------------------
# process fan-out
# ----------------------------------------------------------------------
_shard_ctx: dict = {}


def _init_shard_worker(paths: PathSet, heuristic: str, max_layers: int) -> None:
    _shard_ctx["paths"] = paths
    _shard_ctx["heuristic"] = heuristic
    _shard_ctx["max_layers"] = max_layers


def _drain_shard_task(comps, rows, layer: int, budget_s, budget_label: str):
    """Worker: restricted-CDG drain of one shard, under a deadline.

    Ships results (or the overflow/timeout) as plain data, like the SSSP
    executor's tasks.
    """
    from repro.exceptions import ComputeTimeoutError

    paths = _shard_ctx["paths"]

    def run():
        shard_pids = LayerCDG(paths, np.asarray(rows, dtype=np.int64))
        return _drain_shard(
            shard_pids,
            [set(c) for c in comps],
            _shard_ctx["heuristic"],
            layer,
            _shard_ctx["max_layers"],
        )

    try:
        if budget_s is not None:
            with compute_budget(budget_s, label=budget_label):
                moved, cycles = run()
        else:
            moved, cycles = run()
        return ("ok", (moved, cycles))
    except InsufficientLayersError as err:
        return ("insufficient", (err.layers_available, err.layers_needed_at_least))
    except ComputeTimeoutError as err:
        return ("timeout", (str(err), err.label, err.limit_s, err.elapsed_s))


def assign_layers_sharded(
    paths: PathSet,
    max_layers: int = DEFAULT_MAX_LAYERS,
    heuristic: str = "weakest",
    balance: bool = True,
    pids=None,
    debug: bool = False,
    workers: int = 0,
) -> LayerAssignment:
    """Offline Algorithm 2, draining independent SCC shards per layer.

    Bit-identical to :func:`~repro.deadlock.incremental
    .assign_layers_incremental` (and hence the rebuild reference) for
    every heuristic and ``workers`` value; ``workers >= 1`` fans shard
    drains out over a process pool.
    """
    if max_layers < 1:
        raise ValueError(f"max_layers must be >= 1, got {max_layers}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    get_heuristic(heuristic)  # validate the name; fast paths below
    path_layers = np.zeros(paths.num_paths, dtype=np.int16)
    if pids is None:
        pids = np.arange(paths.num_paths, dtype=np.int64)
    elif not isinstance(pids, np.ndarray):
        pids = np.fromiter(pids, dtype=np.int64)
    pids = np.unique(pids.astype(np.int64, copy=False))

    reg = get_registry()
    hooks = get_hooks()
    m_cycles = reg.counter(
        "dfsssp_cycles_broken", "CDG cycles broken during offline layer assignment"
    )
    m_moved = reg.counter("dfsssp_paths_moved", "paths relocated to a higher virtual layer")
    m_evicted = reg.counter(
        "dfsssp_edges_evicted", "cycle edges evicted from a layer's CDG",
        heuristic=str(heuristic),
    )
    m_shards = reg.counter(
        "cdg_shards_drained", "independent SCC shards drained (sharded engine)"
    )
    h_edges = reg.histogram(
        "cdg_edges", "CDG edge count at cycle-search start", buckets=COUNT_BUCKETS
    )
    h_nodes = reg.histogram(
        "cdg_nodes", "CDG node (channel) count at cycle-search start",
        buckets=COUNT_BUCKETS,
    )

    cycles_broken = 0
    paths_moved = 0
    layer = 0
    members = pids
    with span("layers.assign_offline", heuristic=str(heuristic), max_layers=max_layers,
              cdg="sharded", workers=workers):
        while len(members):
            with span("layers.layer", layer=layer) as sp:
                with span("cdg.build", layer=layer, paths=len(members)):
                    cdg = LayerCDG(paths, members)
                h_edges.observe(cdg.num_edges)

                with span("cdg.certify", layer=layer):
                    core = cdg.certify_core()
                    sccs = tarjan_sccs(core.tolist(), cdg.successors) if len(core) else []
                h_nodes.observe(cdg._num_nodes)

                moved_out: list[int] = []
                if sccs:
                    shards = _shard_sccs(cdg, sccs)
                    sp.set_attr("shards", len(shards))
                    if workers >= 1 and len(shards) > 1:
                        moved_out, broken = _drain_shards_pool(
                            paths, cdg, shards, heuristic, layer, max_layers, workers
                        )
                        m_shards.inc(len(shards))
                        cycles_broken += broken
                        paths_moved += len(moved_out)
                        m_cycles.inc(broken)
                        m_evicted.inc(broken)
                        m_moved.inc(len(moved_out))
                    else:
                        def on_cycle(edge, movers, newly_dead):
                            m_cycles.inc()
                            m_evicted.inc()
                            m_moved.inc(len(movers))
                            hooks.cycle_broken(
                                layer=layer,
                                edge=(int(edge[0]), int(edge[1])),
                                paths_moved=len(movers),
                                heuristic=str(heuristic),
                            )

                        for comps, _rows in shards:
                            m_shards.inc()
                            moved, broken = _drain_shard(
                                cdg, comps, heuristic, layer, max_layers,
                                debug=debug, on_cycle=on_cycle,
                            )
                            moved_out.extend(moved)
                            cycles_broken += broken
                            paths_moved += len(moved)

                sp.set_attr("paths", cdg.num_paths)
                sp.set_attr("edges", cdg.num_edges)
            hooks.layer_closed(layer=layer, paths=cdg.num_paths, edges=cdg.num_edges)
            if moved_out:
                members = np.sort(np.asarray(moved_out, dtype=np.int64))
                path_layers[members] = layer + 1
            else:
                members = np.zeros(0, np.int64)
            layer += 1

    layers_needed = _compact(path_layers)
    if balance and layers_needed < max_layers:
        _balance_layers(path_layers, layers_needed, max_layers, pids=pids)
    return LayerAssignment(
        path_layers=path_layers,
        layers_needed=layers_needed,
        num_layers=max_layers,
        cycles_broken=cycles_broken,
        paths_moved=paths_moved,
        balanced=balance,
    )


def _drain_shards_pool(
    paths: PathSet,
    cdg: LayerCDG,
    shards,
    heuristic: str,
    layer: int,
    max_layers: int,
    workers: int,
):
    """Fan shard drains out over a fork pool; merge movers and counts.

    Restricted CDGs are built worker-side from the shard's path rows
    (mapped back to real pids so the worker's ``LayerCDG`` indexes the
    same paths). Overflows and timeouts ship back as data and re-raise
    here, preserving serial semantics.
    """
    from repro.exceptions import ComputeTimeoutError
    from repro.parallel.executor import _budget_snapshot, _mp_context

    ctx = _mp_context()
    budget_s, label = _budget_snapshot()
    moved_out: list[int] = []
    broken = 0
    with ctx.Pool(
        min(workers, len(shards)),
        initializer=_init_shard_worker,
        initargs=(paths, heuristic, max_layers),
    ) as pool:
        handles = [
            pool.apply_async(
                _drain_shard_task,
                (
                    [sorted(c) for c in comps],
                    cdg.pids[rows].tolist(),  # rows -> real pids
                    layer,
                    budget_s,
                    label,
                ),
            )
            for comps, rows in shards
        ]
        for handle in handles:
            status, payload = handle.get()
            if status == "insufficient":
                available, needed = payload
                raise InsufficientLayersError(
                    f"cycles remain after filling all {max_layers} layers",
                    layers_available=available,
                    layers_needed_at_least=needed,
                )
            if status == "timeout":
                message, tlabel, limit_s, elapsed_s = payload
                raise ComputeTimeoutError(
                    f"shard worker: {message}",
                    label=tlabel, limit_s=limit_s, elapsed_s=elapsed_s,
                )
            moved, cycles = payload
            moved_out.extend(moved)
            broken += cycles
    return moved_out, broken
