"""Independent deadlock-freedom verification.

Given a :class:`~repro.routing.base.LayeredRouting`, rebuild each virtual
layer's channel dependency graph from scratch and check it is acyclic —
Dally & Seitz' sufficient condition. This is deliberately decoupled from
the layer-assignment code so tests can catch assignment bugs, and a
second, slower networkx-based checker cross-validates the in-house DFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deadlock.cdg import ChannelDependencyGraph
from repro.deadlock.cycles import find_any_cycle
from repro.routing.base import LayeredRouting
from repro.routing.paths import PathSet


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a deadlock-freedom check.

    ``method`` records how the verdict was reached: ``"rebuild"`` (full
    CDG reconstruction, :func:`verify_deadlock_free`) or ``"certificate"``
    (O(V+E) certificate check,
    :func:`repro.deadlock.certificate.check_against_routing`). On a
    certificate rejection, ``failure_reason`` carries the checker's
    reason and ``certificate_counterexample`` the minimal counterexample
    cycle, when one exists.
    """

    deadlock_free: bool
    num_layers: int
    cycles: dict[int, list[tuple[int, int]]]  # layer -> one witness cycle
    edges_per_layer: list[int]
    paths_per_layer: list[int]
    method: str = "rebuild"
    failure_reason: str | None = None
    certificate_counterexample: tuple[int, ...] | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.deadlock_free

    def failure_summary(self) -> str:
        """Human-readable account of *which* layer failed and why.

        Names every cyclic layer and spells out one witness cycle as a
        channel chain (``c1 -> c2 -> ... -> c1``) so an assertion message
        or service log pinpoints the offending buffer loop instead of
        reporting a bare boolean. Certificate-based failures additionally
        surface the checker's reason and minimal counterexample.
        """
        if self.deadlock_free:
            return "deadlock-free: all layer CDGs acyclic"
        parts = []
        for layer in sorted(self.cycles):
            cycle = self.cycles[layer]
            chain = " -> ".join(str(c1) for c1, _ in cycle)
            chain += f" -> {cycle[-1][1]}"
            parts.append(
                f"layer {layer} ({self.edges_per_layer[layer]} edges, "
                f"{self.paths_per_layer[layer]} paths) has witness cycle {chain}"
            )
        if self.certificate_counterexample:
            chain = " -> ".join(str(c) for c in self.certificate_counterexample)
            parts.append(f"certificate minimal counterexample cycle {chain}")
        if self.cycles:
            head = f"cyclic CDG in {len(self.cycles)} layer(s)"
            if self.failure_reason:
                parts.append(self.failure_reason)
        else:
            head = self.failure_reason or "verification failed"
        return head + (": " + "; ".join(parts) if parts else "")


def build_layer_cdgs(
    layered: LayeredRouting, paths: PathSet, traffic_only: bool = True, pids=None
) -> list[ChannelDependencyGraph]:
    """Rebuild every layer's CDG from the path set and the assignment.

    With ``traffic_only`` (default) only traffic-carrying paths count —
    flows start at terminals, so paths originating at terminal-less
    switches never materialise as buffer dependencies (they are suffixes
    of the real flows' paths, whose own chains are already included).
    An explicit ``pids`` iterable overrides the selection entirely; the
    incremental-repair machinery uses this to rebuild the CDGs of the
    *surviving* paths before re-inserting the repaired ones.
    """
    fabric = layered.fabric
    cdgs = [ChannelDependencyGraph(fabric) for _ in range(layered.num_layers)]
    if pids is None:
        pids = paths.active_pids() if traffic_only else range(paths.num_paths)
    for pid in pids:
        pid = int(pid)
        layer = int(layered.path_layers[pid])
        cdgs[layer].add_path(pid, paths.path(pid))
    return cdgs


def verify_deadlock_free(
    layered: LayeredRouting, paths: PathSet, traffic_only: bool = True
) -> VerificationReport:
    """Check Dally/Seitz acyclicity for every layer independently."""
    cdgs = build_layer_cdgs(layered, paths, traffic_only=traffic_only)
    cycles: dict[int, list[tuple[int, int]]] = {}
    for layer, cdg in enumerate(cdgs):
        cycle = find_any_cycle(cdg)
        if cycle is not None:
            cycles[layer] = cycle
    return VerificationReport(
        deadlock_free=not cycles,
        num_layers=layered.num_layers,
        cycles=cycles,
        edges_per_layer=[cdg.num_edges for cdg in cdgs],
        paths_per_layer=[cdg.num_paths for cdg in cdgs],
    )


def verify_with_networkx(
    layered: LayeredRouting, paths: PathSet, traffic_only: bool = True
) -> bool:
    """Slow reference check using :func:`networkx.is_directed_acyclic_graph`.

    Used by the test suite to cross-validate the in-house cycle search.
    """
    import networkx as nx

    fabric = layered.fabric
    graphs = [nx.DiGraph() for _ in range(layered.num_layers)]
    is_sw = fabric.is_switch_channel
    pids = paths.active_pids() if traffic_only else range(paths.num_paths)
    for pid in pids:
        pid = int(pid)
        chans = paths.path(pid)
        g = graphs[int(layered.path_layers[pid])]
        for i in range(len(chans) - 1):
            c1, c2 = int(chans[i]), int(chans[i + 1])
            if is_sw[c1] and is_sw[c2]:
                g.add_edge(c1, c2)
    return all(nx.is_directed_acyclic_graph(g) for g in graphs)
