"""Packet-level discrete-event simulator (DES) with AI-collective workloads.

The static :mod:`repro.simulator.congestion` counter reproduces the
paper's figures but cannot show *dynamics*: queue build-up, flow
completion times, or what DFSSSP's extra virtual layers cost under
bursty AI-training traffic. This package adds the dynamic half:

* :mod:`repro.des.engine` — a deterministic discrete-event engine
  (heap-based event queue with seeded, sequence-numbered tie-breaking;
  per-channel output FIFO queues with finite buffers; link
  serialization and propagation delays; credit-style backpressure),
  driving packets along any :class:`~repro.routing.base.RoutingTables`
  forwarding state. Mid-run fault injection is wired through
  :class:`repro.resilience.FaultInjector` + the engines' incremental
  ``reroute`` path, so a link can die mid-collective and traffic
  reroutes live.
* :mod:`repro.des.workloads` — AI-factory traffic models: ring/tree
  AllReduce steps, data-parallel all-to-all rounds, mixed
  tensor-parallel + pipeline-parallel jobs, mice-flow latency probes,
  and the uniform steady-state load the differential tests use.
* :mod:`repro.des.scenario` — JSON scenario schema, the per-engine
  sweep runner and the report (FCT percentiles, queue-occupancy stats,
  throughput), surfaced by the ``des`` CLI subcommand.

Validation story (see ``docs/des.md``): under uniform steady-state
traffic with infinite buffers the DES per-link packet counts must match
the static flow counts of :mod:`repro.simulator.congestion` exactly —
``tests/des/test_differential.py`` pins that, golden event traces pin
the event-level behaviour, and hypothesis properties pin determinism
and packet conservation.
"""

# Enter the shared network/routing import cycle through its working
# door first (the same order every other entry point uses): importing
# repro.des cold must not start the graph at repro.routing.base.
import repro.network  # noqa: F401

from repro.des.engine import (
    DesOutcome,
    FaultSpec,
    LinkParams,
    PacketDES,
    QueueStats,
)
from repro.des.scenario import (
    ScenarioReport,
    build_scenario_fabric,
    normalize_scenario,
    run_scenario,
)
from repro.des.workloads import (
    WORKLOADS,
    AllToAllWorkload,
    CompositeWorkload,
    Flow,
    MiceProbeWorkload,
    RingAllReduceWorkload,
    TPPPWorkload,
    TreeAllReduceWorkload,
    UniformPairsWorkload,
    Workload,
    make_workload,
)

__all__ = [
    "AllToAllWorkload",
    "CompositeWorkload",
    "DesOutcome",
    "FaultSpec",
    "Flow",
    "LinkParams",
    "MiceProbeWorkload",
    "PacketDES",
    "QueueStats",
    "RingAllReduceWorkload",
    "ScenarioReport",
    "TPPPWorkload",
    "TreeAllReduceWorkload",
    "UniformPairsWorkload",
    "WORKLOADS",
    "Workload",
    "build_scenario_fabric",
    "make_workload",
    "normalize_scenario",
    "run_scenario",
]
