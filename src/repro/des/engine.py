"""Deterministic packet-level discrete-event engine.

Model
-----
* **Event queue** — a binary heap of ``(time, seq)``-ordered events where
  ``seq`` is a monotonically increasing insertion counter. Ties in time
  are therefore broken by insertion order, which is itself a pure
  function of the (seeded) inputs: the same scenario and seed replay the
  exact same event sequence, bit for bit (``DesOutcome.log_hash`` pins
  it).
* **Forwarding** — hop-by-hop against the *current* forwarding tables,
  exactly like a switch consulting its LFT: the next output channel is
  looked up when a packet reaches the head of a queue, so a mid-run
  reroute redirects every packet that has not yet crossed the repaired
  region. Virtual lanes follow InfiniBand SL→VL semantics: a packet's
  lane is fixed at injection from the routing's layer assignment.
* **Queues and backpressure** — every directed channel has one output
  FIFO per virtual lane. Switch queues hold at most ``buffer_packets``
  packets (``None`` = infinite); a packet may only start serializing
  when a slot in its *next* queue has been reserved (credit-style
  backpressure), so finite buffers propagate congestion upstream and a
  cyclic buffer dependency wedges — observable as ``status ==
  "deadlock"``. Terminal (NIC) queues are unbounded.
* **Links** — serializing a packet occupies its channel for
  ``bytes / bandwidth`` seconds; arrival happens one ``propagation``
  later. Both come from :class:`LinkParams`.
* **Faults** — each :class:`FaultSpec` fires a seeded
  :class:`repro.resilience.FaultInjector` step at a DES timestamp and
  reroutes through the engine's repair path
  (:meth:`~repro.routing.base.RoutingEngine.reroute`). Packets stored
  in, or in flight on, a dead element are dropped and retransmitted
  from the source after ``retransmit_delay_s``.

The engine emits its counters, FCT/latency histograms and queue
occupancy into :mod:`repro.obs` under ``des_*`` names, inside a
``des.run`` tracing span — see ``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError, SimulationError
from repro.obs import COUNT_BUCKETS, DURATION_BUCKETS, get_registry, span
from repro.routing.base import RoutingEngine, RoutingResult
from repro.utils.prng import spawn_rngs

# NOTE: repro.resilience is imported lazily inside the fault handler —
# importing it at module level would enter the deadlock/network/routing
# import cycle through the wrong door when repro.des is imported first.

# Event kinds (heap payload discriminators; never compared by heapq —
# the (time, seq) prefix is always unique).
_E_FLOW = "flow"
_E_TRY = "try"
_E_ARRIVE = "arrive"
_E_FAULT = "fault"
_E_RETX = "retx"
_E_FREE = "free"  # a channel's serializer went idle


@dataclass(frozen=True)
class LinkParams:
    """Physical link model shared by every channel."""

    bandwidth_bytes_per_s: float = 12.5e9  # 100 Gb/s
    propagation_s: float = 0.5e-6
    mtu_bytes: int = 4096

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise SimulationError("link bandwidth must be positive")
        if self.propagation_s < 0:
            raise SimulationError("propagation delay cannot be negative")
        if self.mtu_bytes < 1:
            raise SimulationError("mtu must be >= 1 byte")

    def serialization_s(self, nbytes: int) -> float:
        return nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class FaultSpec:
    """Inject ``count`` seeded fault events at DES time ``at_s``."""

    at_s: float
    count: int = 1


@dataclass
class _Packet:
    pid: int
    fid: int
    src: int
    dst: int
    nbytes: int
    vc: int
    born: float
    attempts: int = 0
    hops: int = 0


@dataclass
class QueueStats:
    """Occupancy statistics of one ``(channel, vc)`` output queue."""

    channel: int
    vc: int
    max_occupancy: int = 0
    _integral: float = 0.0
    _last_t: float = 0.0
    _occ: int = 0

    def change(self, delta: int, t: float) -> None:
        self._integral += self._occ * (t - self._last_t)
        self._last_t = t
        self._occ += delta
        if self._occ > self.max_occupancy:
            self.max_occupancy = self._occ

    def finalize(self, t: float) -> None:
        self.change(0, t)

    @property
    def occupancy(self) -> int:
        return self._occ

    def mean_occupancy(self, duration: float) -> float:
        return self._integral / duration if duration > 0 else 0.0


@dataclass
class _FlowState:
    flow: object  # repro.des.workloads.Flow
    released_at: float
    packets_total: int
    delivered: int = 0
    lost: int = 0
    completed_at: float | None = None


@dataclass
class DesOutcome:
    """Everything one :meth:`PacketDES.run` learned."""

    status: str  # "completed" | "incomplete" | "deadlock" | "horizon"
    time: float
    events_processed: int
    injected: int
    delivered: int
    dropped: int
    retransmitted: int
    lost: int
    in_network: int
    flows_released: int
    flows_completed: int
    bytes_delivered: int
    makespan_s: float
    fct_seconds: dict[int, float]
    packet_latency_s: list[float]
    link_packets: np.ndarray
    queue_stats: list[QueueStats]
    faults: list[str] = field(default_factory=list)
    reroutes: list[str] = field(default_factory=list)
    log: list[tuple] | None = None
    log_hash: str = ""
    timelines: dict[tuple[int, int], list[tuple[float, int]]] | None = None

    @property
    def throughput_bytes_per_s(self) -> float:
        return self.bytes_delivered / self.makespan_s if self.makespan_s > 0 else 0.0

    def fct_percentiles(self, qs=(50, 90, 99, 100)) -> dict[str, float]:
        values = sorted(self.fct_seconds.values())
        if not values:
            return {f"p{q}": float("nan") for q in qs}
        arr = np.array(values)
        return {f"p{q}": float(np.percentile(arr, q)) for q in qs}

    def queue_summary(self, top: int = 5) -> dict:
        duration = max(self.makespan_s, 1e-30)
        occupied = [q for q in self.queue_stats if q.max_occupancy > 0]
        hot = sorted(occupied, key=lambda q: (-q.max_occupancy, q.channel, q.vc))
        return {
            "queues_used": len(occupied),
            "max_occupancy": max((q.max_occupancy for q in occupied), default=0),
            "mean_occupancy": (
                float(np.mean([q.mean_occupancy(duration) for q in occupied]))
                if occupied
                else 0.0
            ),
            "hottest": [
                {
                    "channel": q.channel,
                    "vc": q.vc,
                    "max": q.max_occupancy,
                    "mean": round(q.mean_occupancy(duration), 6),
                }
                for q in hot[:top]
            ],
        }

    def summary(self) -> dict:
        fct = self.fct_percentiles()
        return {
            "status": self.status,
            "time_s": self.time,
            "events": self.events_processed,
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "retransmitted": self.retransmitted,
            "lost": self.lost,
            "in_network": self.in_network,
            "flows_released": self.flows_released,
            "flows_completed": self.flows_completed,
            "bytes_delivered": self.bytes_delivered,
            "makespan_s": self.makespan_s,
            "throughput_bytes_per_s": self.throughput_bytes_per_s,
            "fct": {k: (None if math.isnan(v) else v) for k, v in fct.items()},
            "queues": self.queue_summary(),
            "faults": list(self.faults),
            "reroutes": list(self.reroutes),
            "log_hash": self.log_hash,
        }


class PacketDES:
    """Packet-level DES over one routing result.

    Parameters
    ----------
    result:
        The :class:`~repro.routing.base.RoutingResult` to forward with
        (tables + optional layer assignment for virtual lanes).
    engine:
        The :class:`~repro.routing.base.RoutingEngine` that produced it;
        required only when ``faults`` are injected (it drives the repair
        path). ``None`` forbids faults.
    link:
        :class:`LinkParams`; defaults to 100 Gb/s, 0.5 µs, 4 KiB MTU.
    buffer_packets:
        Per-``(channel, vc)`` switch-queue capacity in packets;
        ``None`` = infinite buffers (used by the differential tests).
    seed:
        Seeds the fault injector stream (and nothing else — the engine
        itself is deterministic).
    """

    def __init__(
        self,
        result: RoutingResult,
        *,
        engine: RoutingEngine | None = None,
        link: LinkParams | None = None,
        buffer_packets: int | None = 16,
        seed=None,
        retransmit_delay_s: float | None = None,
        max_retransmits: int = 16,
        p_switch_down: float = 0.0,
        record_events: bool = False,
        record_timelines: bool = False,
    ):
        if buffer_packets is not None and buffer_packets < 1:
            raise SimulationError("buffer_packets must be >= 1 (or None for infinite)")
        self.result = result
        self.engine = engine
        self.fabric = result.tables.fabric
        self.link = link if link is not None else LinkParams()
        self.buffer_packets = buffer_packets
        self.seed = seed
        self.retransmit_delay_s = (
            retransmit_delay_s
            if retransmit_delay_s is not None
            else 8 * self.link.propagation_s + self.link.serialization_s(self.link.mtu_bytes)
        )
        self.max_retransmits = max_retransmits
        self.p_switch_down = p_switch_down
        self.record_events = record_events
        self.record_timelines = record_timelines

    # ------------------------------------------------------------------
    # Routing view (healthy-fabric ids throughout; translated after faults)
    # ------------------------------------------------------------------
    def _reset_routing_view(self) -> None:
        self._cur_result = self.result
        self._cur_state = None  # DegradedFabric once a fault fired
        self._node_h2c: np.ndarray | None = None  # healthy node -> current node
        self._chan_c2h: np.ndarray | None = None  # current channel -> healthy channel
        self._alive = np.ones(self.fabric.num_channels, dtype=bool)

    def _adopt_state(self, state) -> None:
        """Install a cumulative degradation as the current routing frame."""
        self._cur_state = state
        self._node_h2c = state.node_map
        cur = state.fabric
        c2h = np.full(cur.num_channels, -1, dtype=np.int64)
        healthy_alive = np.flatnonzero(state.channel_map >= 0)
        c2h[state.channel_map[healthy_alive]] = healthy_alive
        self._chan_c2h = c2h
        alive = np.zeros(self.fabric.num_channels, dtype=bool)
        alive[healthy_alive] = True
        self._alive = alive

    def _next_hop(self, node: int, dst: int) -> int:
        """Current output channel (healthy id) at ``node`` toward ``dst``."""
        if self._cur_state is None:
            c = int(self.result.tables.next_hop(node, dst))
        else:
            cn = int(self._node_h2c[node])
            cd = int(self._node_h2c[dst])
            if cn < 0 or cd < 0:
                raise SimulationError(
                    f"node {node if cn < 0 else dst} no longer exists after faults"
                )
            c = int(self._cur_result.tables.next_hop(cn, cd))
            if c >= 0:
                c = int(self._chan_c2h[c])
        if c < 0:
            raise SimulationError(f"no route from node {node} to terminal {dst}")
        return c

    def _vc_for(self, src: int, dst: int) -> int:
        layered = self._cur_result.layered
        if layered is None:
            return 0
        if self._cur_state is None:
            return int(layered.layer_for(src, dst))
        return int(layered.layer_for(int(self._node_h2c[src]), int(self._node_h2c[dst])))

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(
        self,
        workload,
        horizon_s: float | None = None,
        faults: tuple[FaultSpec, ...] | list[FaultSpec] = (),
        max_events: int = 5_000_000,
    ) -> DesOutcome:
        """Simulate ``workload`` until it drains, wedges, or ``horizon_s``."""
        if faults and self.engine is None:
            raise SimulationError("fault injection requires the routing engine")
        self._reset_routing_view()

        fab = self.fabric
        chan_dst = fab.channels.dst
        link = self.link
        cap = self.buffer_packets

        # Mutable run state.
        heap: list[tuple] = []
        self._heap = heap
        self._seq = 0
        queues: dict[tuple[int, int], deque] = {}
        occ: dict[tuple[int, int], int] = {}
        waiters: dict[tuple[int, int], set] = {}
        busy: dict[int, float] = {}
        busy_blocked: dict[int, set] = {}  # channel -> vc-queues waiting for it
        qstats: dict[tuple[int, int], QueueStats] = {}
        timelines: dict[tuple[int, int], list] = {} if self.record_timelines else None
        link_packets = np.zeros(fab.num_channels, dtype=np.int64)
        flows: dict[int, _FlowState] = {}
        log: list[tuple] | None = [] if self.record_events else None
        digest = hashlib.sha256()
        fault_notes: list[str] = []
        reroute_notes: list[str] = []

        stats = {
            "injected": 0, "delivered": 0, "dropped": 0, "retx": 0, "lost": 0,
            "in_network": 0, "flows_released": 0, "flows_completed": 0,
            "bytes_delivered": 0, "first_inject": None, "last_delivery": 0.0,
            "latencies": [],
        }

        reg = get_registry()
        m_inj = reg.counter("des_packets_injected", "packets entering the DES network")
        m_del = reg.counter("des_packets_delivered", "packets reaching their terminal")
        m_drop = reg.counter("des_packets_dropped", "packets lost to dead links/buffers")
        m_retx = reg.counter("des_packets_retransmitted", "source retransmissions after drops")
        m_flows = reg.counter("des_flows_completed", "flows fully delivered")
        m_events = reg.counter("des_events_processed", "DES events handled")
        m_faults = reg.counter("des_faults_injected", "fault events fired inside the DES")
        m_reroutes = reg.counter("des_reroutes", "routing recomputations triggered mid-run")
        h_fct = reg.histogram(
            "des_fct_seconds", "flow completion times", buckets=DURATION_BUCKETS
        )
        h_lat = reg.histogram(
            "des_packet_latency_seconds", "injection-to-delivery packet latency",
            buckets=DURATION_BUCKETS,
        )
        h_occ = reg.histogram(
            "des_queue_occupancy", "queue occupancy sampled at each reservation",
            buckets=COUNT_BUCKETS,
        )

        pid_counter = [0]

        def record(t: float, kind: str, *args) -> None:
            entry = (round(t, 12), kind, *args)
            digest.update(repr(entry).encode())
            if log is not None:
                log.append(entry)

        def push(t: float, kind: str, payload) -> None:
            self._seq += 1
            heapq.heappush(heap, (t, self._seq, kind, payload))

        def stat_for(key) -> QueueStats:
            st = qstats.get(key)
            if st is None:
                st = qstats[key] = QueueStats(channel=key[0], vc=key[1])
            return st

        def occ_change(key, delta: int, t: float) -> None:
            occ[key] = occ.get(key, 0) + delta
            stat_for(key).change(delta, t)
            if timelines is not None:
                timelines.setdefault(key, []).append((t, occ[key]))
            if delta < 0:
                for w in sorted(waiters.pop(key, ())):
                    push(t, _E_TRY, w)

        def space(key) -> bool:
            if cap is None:
                return True
            return occ.get(key, 0) < cap

        # -------------------------- handlers --------------------------
        def release_flow(t: float, flow) -> None:
            if fab.term_index[flow.src] < 0 or fab.term_index[flow.dst] < 0:
                raise SimulationError(
                    f"flow {flow.fid}: ({flow.src}, {flow.dst}) references a non-terminal"
                )
            if flow.src == flow.dst:
                raise SimulationError(f"flow {flow.fid} is a self-flow")
            state = _FlowState(
                flow=flow,
                released_at=t,
                packets_total=max(1, math.ceil(flow.size_bytes / link.mtu_bytes)),
            )
            flows[flow.fid] = state
            stats["flows_released"] += 1
            record(t, "start", flow.fid, flow.src, flow.dst, flow.size_bytes)
            vc = self._vc_for(flow.src, flow.dst)
            c0 = self._next_hop(flow.src, flow.dst)
            key = (c0, vc)
            remaining = flow.size_bytes
            q = queues.setdefault(key, deque())
            for _ in range(state.packets_total):
                nbytes = min(link.mtu_bytes, remaining) or link.mtu_bytes
                remaining -= nbytes
                pid_counter[0] += 1
                pkt = _Packet(
                    pid=pid_counter[0], fid=flow.fid, src=flow.src, dst=flow.dst,
                    nbytes=nbytes, vc=vc, born=t,
                )
                q.append(pkt)
                occ_change(key, +1, t)
                stats["injected"] += 1
                stats["in_network"] += 1
                m_inj.inc()
            if stats["first_inject"] is None:
                stats["first_inject"] = t
            push(t, _E_TRY, key)

        def inject_retx(t: float, payload) -> None:
            flow, nbytes, attempts = payload
            vc = self._vc_for(flow.src, flow.dst)
            c0 = self._next_hop(flow.src, flow.dst)
            key = (c0, vc)
            pid_counter[0] += 1
            pkt = _Packet(
                pid=pid_counter[0], fid=flow.fid, src=flow.src, dst=flow.dst,
                nbytes=nbytes, vc=vc, born=t, attempts=attempts,
            )
            queues.setdefault(key, deque()).append(pkt)
            occ_change(key, +1, t)
            stats["injected"] += 1
            stats["in_network"] += 1
            m_inj.inc()
            record(t, "retx", pkt.pid, flow.fid, attempts)
            push(t, _E_TRY, key)

        def drop_packet(t: float, pkt: _Packet, where: int, reason: str) -> None:
            stats["dropped"] += 1
            stats["in_network"] -= 1
            m_drop.inc()
            record(t, "drop", pkt.pid, where, reason)
            state = flows[pkt.fid]
            if pkt.attempts < self.max_retransmits:
                stats["retx"] += 1
                m_retx.inc()
                push(
                    t + self.retransmit_delay_s, _E_RETX,
                    (state.flow, pkt.nbytes, pkt.attempts + 1),
                )
            else:
                state.lost += 1
                stats["lost"] += 1

        def deliver(t: float, pkt: _Packet) -> None:
            stats["delivered"] += 1
            stats["in_network"] -= 1
            stats["bytes_delivered"] += pkt.nbytes
            stats["last_delivery"] = t
            stats["latencies"].append(t - pkt.born)
            m_del.inc()
            h_lat.observe(t - pkt.born)
            record(t, "deliver", pkt.pid, pkt.fid)
            state = flows[pkt.fid]
            state.delivered += 1
            if state.delivered == state.packets_total:
                state.completed_at = t
                stats["flows_completed"] += 1
                m_flows.inc()
                h_fct.observe(t - state.released_at)
                record(t, "flow_done", pkt.fid)
                for new_flow in workload.on_complete(state.flow, t):
                    push(max(t, new_flow.start), _E_FLOW, new_flow)

        def try_send(t: float, key) -> None:
            q = queues.get(key)
            if not q:
                return
            c, _vc = key
            if busy.get(c, 0.0) > t:
                # The serializer is taken; a FREE event at busy-end will
                # re-schedule every vc-queue registered here.
                busy_blocked.setdefault(c, set()).add(key)
                return
            pkt = q[0]
            node_after = int(chan_dst[c])
            if node_after == pkt.dst:
                next_key = None
            else:
                nxt = self._next_hop(node_after, pkt.dst)
                next_key = (nxt, pkt.vc)
                if not space(next_key):
                    waiters.setdefault(next_key, set()).add(key)
                    return
                occ_change(next_key, +1, t)
                h_occ.observe(occ[next_key])
            q.popleft()
            occ_change(key, -1, t)
            pkt.hops += 1
            if pkt.hops > fab.num_nodes:
                raise SimulationError(
                    f"packet {pkt.pid} exceeded {fab.num_nodes} hops toward terminal "
                    f"{pkt.dst}: cyclic forwarding tables"
                )
            ser = link.serialization_s(pkt.nbytes)
            busy[c] = t + ser
            link_packets[c] += 1
            record(t, "send", pkt.pid, c)
            push(t + ser + link.propagation_s, _E_ARRIVE, (pkt, c, next_key))
            busy_blocked.setdefault(c, set()).add(key)
            push(t + ser, _E_FREE, c)

        def channel_free(t: float, c: int) -> None:
            # Wake every vc-queue that found the serializer busy. The wake
            # order rotates with the channel's send count so no virtual
            # lane starves under saturation (same trick as flitsim's
            # rotated service order).
            blocked = sorted(busy_blocked.pop(c, ()))
            if not blocked:
                return
            rot = int(link_packets[c]) % len(blocked)
            for w in blocked[rot:] + blocked[:rot]:
                push(t, _E_TRY, w)

        def arrive(t: float, payload) -> None:
            pkt, crossed, next_key = payload
            if not self._alive[crossed]:
                # The wire died while the packet was on it.
                if next_key is not None and self._alive[next_key[0]]:
                    occ_change(next_key, -1, t)  # release the reserved slot
                drop_packet(t, pkt, crossed, "link_died_in_flight")
                return
            record(t, "arrive", pkt.pid, crossed)
            if next_key is None:
                deliver(t, pkt)
                return
            if not self._alive[next_key[0]]:
                # The reserved next hop died after the send decision:
                # re-resolve against the repaired tables.
                node = int(chan_dst[crossed])
                try:
                    nxt = self._next_hop(node, pkt.dst)
                except SimulationError:
                    drop_packet(t, pkt, next_key[0], "no_route_after_fault")
                    return
                next_key = (nxt, pkt.vc)
                if not space(next_key):
                    drop_packet(t, pkt, nxt, "no_buffer_after_reroute")
                    return
                occ_change(next_key, +1, t)
            queues.setdefault(next_key, deque()).append(pkt)
            push(t, _E_TRY, next_key)

        def inject_fault(t: float, spec: FaultSpec) -> None:
            from repro.resilience.events import (
                LINK_UP,
                FaultInjector,
                relative_degradation,
            )

            if self._injector is None:
                rng = spawn_rngs(self.seed, 1)[0]
                self._injector = FaultInjector(
                    fab, seed=rng,
                    p_switch_down=self.p_switch_down, p_link_up=0.0,
                )
            injector = self._injector
            for _ in range(max(1, spec.count)):
                prev = injector.current
                stepped = injector.step()
                if stepped is None:
                    fault_notes.append("exhausted: no viable fault left")
                    return
                event, cur = stepped
                detail = event.describe(fab)
                fault_notes.append(detail)
                m_faults.inc()
                record(t, "fault", detail)
                with span("des.fault", kind=event.kind, at=t):
                    if event.kind == LINK_UP:
                        new_result = self.engine.route(cur.fabric)
                        action = "full"
                    else:
                        rel = relative_degradation(prev, cur)
                        new_result = self.engine.reroute(self._cur_result, rel)
                        action = "repair" if new_result.stats.get("repair") else "full"
                self._cur_result = new_result
                self._adopt_state(cur)
                m_reroutes.inc()
                reroute_notes.append(action)
                record(t, "reroute", action)
                self._purge_dead(t, queues, occ, waiters, qstats, drop_packet, push)

        handlers = {
            _E_FLOW: release_flow,
            _E_TRY: try_send,
            _E_ARRIVE: arrive,
            _E_FAULT: inject_fault,
            _E_RETX: inject_retx,
            _E_FREE: channel_free,
        }

        # -------------------------- main loop --------------------------
        self._injector = None
        try:
            for flow in workload.initial():
                push(float(flow.start), _E_FLOW, flow)
        except ReproError as err:
            raise SimulationError(f"workload refused to start: {err}") from err
        for spec in sorted(faults, key=lambda s: s.at_s):
            push(float(spec.at_s), _E_FAULT, spec)

        events = 0
        now = 0.0
        status = "completed"
        with span(
            "des.run", engine=self.result.tables.engine,
            workload=getattr(workload, "name", type(workload).__name__),
            buffers=cap if cap is not None else "inf",
        ) as sp:
            while heap:
                t, _seq, kind, payload = heapq.heappop(heap)
                if horizon_s is not None and t > horizon_s:
                    status = "horizon"
                    now = horizon_s
                    break
                now = t
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"DES exceeded {max_events} events (runaway scenario?)"
                    )
                handlers[kind](t, payload)
            else:
                if stats["in_network"] > 0:
                    status = "deadlock"
                elif stats["flows_completed"] < stats["flows_released"]:
                    status = "incomplete"
            sp.set_attr("status", status)
            sp.set_attr("events", events)
        m_events.inc(events)

        for st in qstats.values():
            st.finalize(now)
        first = stats["first_inject"]
        makespan = (
            stats["last_delivery"] - first
            if first is not None and stats["last_delivery"] > first
            else 0.0
        )
        return DesOutcome(
            status=status,
            time=now,
            events_processed=events,
            injected=stats["injected"],
            delivered=stats["delivered"],
            dropped=stats["dropped"],
            retransmitted=stats["retx"],
            lost=stats["lost"],
            in_network=stats["in_network"],
            flows_released=stats["flows_released"],
            flows_completed=stats["flows_completed"],
            bytes_delivered=stats["bytes_delivered"],
            makespan_s=makespan,
            fct_seconds={
                fid: st.completed_at - st.released_at
                for fid, st in flows.items()
                if st.completed_at is not None
            },
            packet_latency_s=stats["latencies"],
            link_packets=link_packets,
            queue_stats=sorted(qstats.values(), key=lambda q: (q.channel, q.vc)),
            faults=fault_notes,
            reroutes=reroute_notes,
            log=log,
            log_hash=digest.hexdigest(),
            timelines=timelines,
        )

    # ------------------------------------------------------------------
    def _purge_dead(self, t, queues, occ, waiters, qstats, drop_packet, push) -> None:
        """Drop packets buffered on dead channels; wake blocked senders.

        Queues on dead channels vanish with their link: their packets are
        dropped (and retransmitted from the source), their occupancy and
        waiter registrations are discarded, and every upstream queue that
        was waiting for a credit from a dead queue is re-scheduled so its
        head packet re-resolves against the repaired tables.
        """
        dead_keys = [key for key in queues if not self._alive[key[0]]]
        for key in dead_keys:
            for w in sorted(waiters.pop(key, ())):
                push(t, _E_TRY, w)
            for pkt in list(queues.pop(key)):
                occ[key] = occ.get(key, 0) - 1
                qstats[key].change(-1, t)
                drop_packet(t, pkt, key[0], "queued_on_dead_link")
        # Waiter sets may also reference dead queues among the *waiting*
        # side; those keys were just purged above. Remaining waiters on
        # live queues keep their registration.
        for key in [k for k in waiters if not self._alive[k[0]]]:
            for w in sorted(waiters.pop(key, ())):
                push(t, _E_TRY, w)
