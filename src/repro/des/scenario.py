"""Scenario schema and per-engine sweep runner for the DES.

A *scenario* is a plain dict (usually loaded from JSON — the ``des``
CLI subcommand does exactly that) describing one experiment:

.. code-block:: json

    {
      "name": "allreduce-under-fault",
      "topology": {"family": "xgft", "ms": [4, 4], "ws": [1, 2]},
      "engines": ["dfsssp", "sssp"],
      "workload": {"kind": "ring_allreduce", "size_bytes": 1048576},
      "link": {"bandwidth_gbps": 100.0, "propagation_us": 0.5,
               "mtu_bytes": 4096},
      "buffer_packets": 16,
      "seed": 7,
      "horizon_s": null,
      "faults": [{"at_s": 0.0002}],
      "p_switch_down": 0.0,
      "record_events": false
    }

Every key except ``topology`` has a default (see ``_DEFAULTS``);
``buffer_packets: null`` means infinite buffers. Each engine in
``engines`` routes the same fabric and drives a *fresh* workload
instance through :class:`repro.des.PacketDES`, so the comparison is
apples-to-apples: identical flows, identical fault schedule (the fault
injector is re-seeded per engine), different forwarding tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des.engine import FaultSpec, LinkParams, PacketDES
from repro.des.workloads import make_workload
from repro.exceptions import ReproError, SimulationError
from repro.network import topologies as topo
from repro.network.fabric import Fabric
from repro.network.io import load_fabric
from repro.obs import record_event, span
from repro.routing import ENGINES

_DEFAULTS = {
    "name": "scenario",
    "engines": ["dfsssp", "sssp"],
    "workload": {"kind": "ring_allreduce"},
    "link": {},
    "buffer_packets": 16,
    "seed": 0,
    "horizon_s": None,
    "faults": [],
    "p_switch_down": 0.0,
    "max_retransmits": 16,
    "record_events": False,
    "max_events": 5_000_000,
    # Constructor options for the SSSP/DFSSSP engines (e.g. {"kernel":
    # "numpy", "workers": 4}); other engines ignore them. The des CLI
    # fills this from --kernel/--workers/--cdg so sweeps can pin the
    # kernel uniformly. Routing results are bit-identical across kernels
    # and worker counts, so this only affects routing wall time.
    "engine_opts": {},
}

#: engines whose constructors accept ``engine_opts``
_PARALLEL_ENGINES = ("sssp", "dfsssp")

_LINK_DEFAULTS = {"bandwidth_gbps": 100.0, "propagation_us": 0.5, "mtu_bytes": 4096}


def normalize_scenario(spec: dict) -> dict:
    """Validate ``spec`` and fill defaults; returns a new dict."""
    if not isinstance(spec, dict):
        raise SimulationError(f"scenario must be a dict, got {type(spec).__name__}")
    unknown = set(spec) - set(_DEFAULTS) - {"topology"}
    if unknown:
        raise SimulationError(f"unknown scenario keys {sorted(unknown)}")
    if "topology" not in spec:
        raise SimulationError("scenario needs a 'topology' section")
    out = {**_DEFAULTS, **spec}
    out["workload"] = dict(out["workload"])
    if "kind" not in out["workload"]:
        raise SimulationError("scenario workload needs a 'kind'")
    link = {**_LINK_DEFAULTS, **out["link"]}
    bad_link = set(link) - set(_LINK_DEFAULTS)
    if bad_link:
        raise SimulationError(f"unknown link keys {sorted(bad_link)}")
    out["link"] = link
    if not out["engines"]:
        raise SimulationError("scenario needs at least one engine")
    for name in out["engines"]:
        if name not in ENGINES:
            raise SimulationError(
                f"unknown engine {name!r}; known: {sorted(ENGINES)}"
            )
    out["faults"] = [
        {"at_s": float(f["at_s"]), "count": int(f.get("count", 1))}
        for f in out["faults"]
    ]
    if not isinstance(out["engine_opts"], dict):
        raise SimulationError(
            f"engine_opts must be a dict, got {type(out['engine_opts']).__name__}"
        )
    out["engine_opts"] = dict(out["engine_opts"])
    return out


def build_scenario_fabric(topology: dict) -> Fabric:
    """Materialise the ``topology`` section of a scenario.

    Either ``{"fabric": "<path.json>"}`` or ``{"family": ..., <params>}``
    covering the families the ``des`` sweep targets (ring, torus, xgft,
    dragonfly, hypercube, ktree).
    """
    if not isinstance(topology, dict):
        raise SimulationError("scenario topology must be a dict")
    spec = dict(topology)
    if "fabric" in spec:
        return load_fabric(spec["fabric"])
    family = spec.pop("family", None)
    fabric = None
    if family == "ring":
        fabric = topo.ring(spec.pop("switches", 5), spec.pop("terminals_per_switch", 2))
    elif family == "torus":
        dims = tuple(int(d) for d in spec.pop("dims", [3, 3]))
        fabric = topo.torus(dims, spec.pop("terminals_per_switch", 1))
    elif family == "xgft":
        ms = tuple(int(m) for m in spec.pop("ms", [4, 4]))
        ws = tuple(int(w) for w in spec.pop("ws", [1, 2]))
        fabric = topo.xgft(len(ms), ms, ws)
    elif family == "dragonfly":
        fabric = topo.dragonfly(spec.pop("a", 4), spec.pop("p", 2), spec.pop("h", 2))
    elif family == "hypercube":
        fabric = topo.hypercube(
            spec.pop("dimension", 3), spec.pop("terminals_per_switch", 1)
        )
    elif family == "ktree":
        fabric = topo.kary_ntree(spec.pop("k", 4), spec.pop("n", 2))
    else:
        raise SimulationError(
            f"unknown topology family {family!r}; known: ring, torus, xgft, "
            "dragonfly, hypercube, ktree (or a 'fabric' path)"
        )
    if spec:
        raise SimulationError(
            f"unknown topology options {sorted(spec)} for family {family!r}"
        )
    return fabric


@dataclass
class ScenarioReport:
    """Per-engine DES outcomes for one scenario, JSON-serialisable."""

    scenario: dict
    fabric_summary: dict
    results: dict[str, dict] = field(default_factory=dict)
    outcomes: dict = field(default_factory=dict)  # engine -> DesOutcome (not serialised)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "fabric": self.fabric_summary,
            "results": self.results,
            "ranking": self.ranking(),
        }

    def ranking(self) -> list[str]:
        """Engines ordered by FCT p99 (completed runs first, errors last)."""
        def sort_key(item):
            name, res = item
            if "error" in res:
                return (2, float("inf"), name)
            p99 = (res.get("fct") or {}).get("p99")
            if p99 is None:
                return (1, float("inf"), name)
            return (0, p99, name)

        return [name for name, _ in sorted(self.results.items(), key=sort_key)]


def run_scenario(spec: dict, fabric: Fabric | None = None) -> ScenarioReport:
    """Run one scenario: route + simulate once per engine."""
    spec = normalize_scenario(spec)
    if fabric is None:
        fabric = build_scenario_fabric(spec["topology"])
    link = LinkParams(
        bandwidth_bytes_per_s=spec["link"]["bandwidth_gbps"] * 1e9 / 8,
        propagation_s=spec["link"]["propagation_us"] * 1e-6,
        mtu_bytes=int(spec["link"]["mtu_bytes"]),
    )
    faults = tuple(FaultSpec(at_s=f["at_s"], count=f["count"]) for f in spec["faults"])
    report = ScenarioReport(
        scenario=spec,
        fabric_summary={
            "nodes": fabric.num_nodes,
            "switches": fabric.num_switches,
            "terminals": fabric.num_terminals,
            "channels": fabric.num_channels,
        },
    )
    wl_spec = dict(spec["workload"])
    wl_kind = wl_spec.pop("kind")
    if wl_kind == "mice":
        wl_spec.setdefault("seed", spec["seed"])
    with span("des.scenario", scenario=spec["name"], workload=wl_kind):
        for name in spec["engines"]:
            opts = dict(spec["engine_opts"]) if name in _PARALLEL_ENGINES else {}
            if name != "dfsssp":
                opts.pop("cdg", None)  # cycle breaking is DFSSSP-only
            engine = ENGINES[name](**opts)
            try:
                result = engine.route(fabric)
                workload = make_workload(wl_kind, fabric, **wl_spec)
                sim = PacketDES(
                    result,
                    engine=engine,
                    link=link,
                    buffer_packets=spec["buffer_packets"],
                    seed=spec["seed"],
                    p_switch_down=spec["p_switch_down"],
                    max_retransmits=spec["max_retransmits"],
                    record_events=spec["record_events"],
                )
                outcome = sim.run(
                    workload,
                    horizon_s=spec["horizon_s"],
                    faults=faults,
                    max_events=spec["max_events"],
                )
            except ReproError as err:
                report.results[name] = {
                    "error": f"{type(err).__name__}: {err}",
                }
                record_event("des_engine_failed", engine=name, error=str(err))
                continue
            summary = outcome.summary()
            summary["workload"] = workload.describe()
            summary["layers"] = result.num_layers
            summary["deadlock_free"] = result.deadlock_free
            report.results[name] = summary
            report.outcomes[name] = outcome
    return report
