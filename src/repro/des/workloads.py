"""AI-collective workload generators for the packet-level DES.

A workload is a small state machine the engine drives by callback:
:meth:`Workload.initial` yields the flows released at time zero and
:meth:`Workload.on_complete` is invoked whenever a flow finishes,
returning the flows it unblocks. Barrier-synchronized collectives
(ring/tree AllReduce, all-to-all rounds) and dependency chains
(pipeline-parallel microbatches) fall out naturally; the engine never
needs to know what a "round" is.

All generators are deterministic: flow ids, orderings and any random
choices (mice probes) derive from the constructor arguments and the
seed alone, which is what makes same-seed DES replays bit-identical.

The catalogue (also the ``workload.kind`` values of the scenario
schema, see ``docs/des.md``):

``uniform_pairs``
    Every ordered terminal pair sends one fixed-size flow — the
    steady-state load of the differential tests, mirroring the all-pairs
    pattern :mod:`repro.simulator.congestion` counts statically.
``ring_allreduce``
    2(P-1) barrier-synchronized ring steps over chunks of ``1/P`` of the
    payload (reduce-scatter + all-gather), rank *i* → rank *i+1*.
``tree_allreduce``
    Binomial-tree reduce to rank 0 followed by the mirrored broadcast,
    ⌈log₂P⌉ rounds each way.
``alltoall``
    P-1 shift rounds (round *k*: rank *i* → rank *i+k* mod P) with a
    barrier between rounds — the data-parallel shuffle.
``tp_pp``
    Mixed tensor-parallel + pipeline-parallel job: terminals partitioned
    into pipeline stages; each microbatch does a TP ring pass inside its
    stage, then a PP activation flow to the next stage, with microbatch
    *m+1* admitted as soon as stage 0 finishes *m* (1F1B-style overlap).
``mice``
    Seeded random single-packet probes over a start window — the
    latency canaries large RDMA flows squash.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.network.fabric import Fabric
from repro.utils.prng import make_rng


@dataclass(frozen=True)
class Flow:
    """One source→destination transfer, released at absolute ``start``."""

    fid: int
    src: int
    dst: int
    size_bytes: int
    start: float = 0.0
    tag: str = ""


def _participants(fabric: Fabric, participants=None, minimum: int = 2) -> list[int]:
    ranks = (
        [int(t) for t in fabric.terminals]
        if participants is None
        else [int(t) for t in participants]
    )
    for t in ranks:
        if fabric.term_index[t] < 0:
            raise SimulationError(f"workload participant {t} is not a terminal")
    if len(set(ranks)) != len(ranks):
        raise SimulationError("workload participants contain duplicates")
    if len(ranks) < minimum:
        raise SimulationError(
            f"workload needs >= {minimum} participants, got {len(ranks)}"
        )
    return ranks


class Workload(ABC):
    """Callback-driven flow generator (see module docstring)."""

    #: registry key / report label; subclasses override
    name: str = "abstract"

    def __init__(self, fid_offset: int = 0):
        self._next_fid = fid_offset

    def _flow(self, src: int, dst: int, size: int, start: float, tag: str = "") -> Flow:
        self._next_fid += 1
        return Flow(
            fid=self._next_fid, src=src, dst=dst,
            size_bytes=max(1, int(size)), start=start, tag=tag,
        )

    @abstractmethod
    def initial(self) -> list[Flow]:
        """Flows released when the simulation starts."""

    def on_complete(self, flow: Flow, t: float) -> list[Flow]:
        """Flows unblocked by ``flow`` finishing at time ``t``."""
        return []

    def describe(self) -> dict:
        return {"kind": self.name}


class UniformPairsWorkload(Workload):
    """Every ordered terminal pair sends one ``size_bytes`` flow.

    ``stagger_s`` spaces the releases deterministically (pair-sorted
    order) to avoid a single time-zero burst when desired.
    """

    name = "uniform_pairs"

    def __init__(
        self,
        fabric: Fabric,
        size_bytes: int = 4096,
        stagger_s: float = 0.0,
        participants=None,
        fid_offset: int = 0,
    ):
        super().__init__(fid_offset)
        self.ranks = _participants(fabric, participants)
        self.size_bytes = int(size_bytes)
        self.stagger_s = float(stagger_s)

    def initial(self) -> list[Flow]:
        flows = []
        i = 0
        for src in self.ranks:
            for dst in self.ranks:
                if src == dst:
                    continue
                flows.append(
                    self._flow(src, dst, self.size_bytes, i * self.stagger_s, "pair")
                )
                i += 1
        return flows

    def describe(self) -> dict:
        return {
            "kind": self.name, "pairs": len(self.ranks) * (len(self.ranks) - 1),
            "size_bytes": self.size_bytes,
        }


class _BarrierRounds(Workload):
    """Shared core for barrier-synchronized round-based collectives.

    Subclasses implement :meth:`round_flows`; round *r+1* is released
    ``compute_s`` after the last flow of round *r* completes.
    """

    def __init__(self, rounds: int, compute_s: float = 0.0, fid_offset: int = 0):
        super().__init__(fid_offset)
        self.rounds = int(rounds)
        self.compute_s = float(compute_s)
        self._round = 0
        self._outstanding = 0

    @abstractmethod
    def round_flows(self, r: int, start: float) -> list[Flow]:
        """The flows of round ``r`` (may be empty; empty ends the job)."""

    def _release(self, r: int, start: float) -> list[Flow]:
        flows = self.round_flows(r, start)
        self._round = r
        self._outstanding = len(flows)
        return flows

    def initial(self) -> list[Flow]:
        return self._release(0, 0.0)

    def on_complete(self, flow: Flow, t: float) -> list[Flow]:
        self._outstanding -= 1
        if self._outstanding > 0 or self._round + 1 >= self.rounds:
            return []
        return self._release(self._round + 1, t + self.compute_s)


class RingAllReduceWorkload(_BarrierRounds):
    """Ring AllReduce: 2(P-1) steps of rank *i* → rank *i+1* chunks."""

    name = "ring_allreduce"

    def __init__(
        self,
        fabric: Fabric,
        size_bytes: int = 1 << 20,
        compute_s: float = 0.0,
        participants=None,
        fid_offset: int = 0,
    ):
        self.ranks = _participants(fabric, participants)
        self.size_bytes = int(size_bytes)
        self.chunk = max(1, self.size_bytes // len(self.ranks))
        super().__init__(2 * (len(self.ranks) - 1), compute_s, fid_offset)

    def round_flows(self, r: int, start: float) -> list[Flow]:
        ranks = self.ranks
        phase = "rs" if r < len(ranks) - 1 else "ag"
        return [
            self._flow(
                ranks[i], ranks[(i + 1) % len(ranks)], self.chunk, start,
                f"{phase}:{r}",
            )
            for i in range(len(ranks))
        ]

    def describe(self) -> dict:
        return {
            "kind": self.name, "participants": len(self.ranks),
            "size_bytes": self.size_bytes, "steps": self.rounds,
        }


class TreeAllReduceWorkload(_BarrierRounds):
    """Binomial-tree reduce to rank 0, then the mirrored broadcast."""

    name = "tree_allreduce"

    def __init__(
        self,
        fabric: Fabric,
        size_bytes: int = 1 << 20,
        compute_s: float = 0.0,
        participants=None,
        fid_offset: int = 0,
    ):
        self.ranks = _participants(fabric, participants)
        self.size_bytes = int(size_bytes)
        self.depth = max(1, math.ceil(math.log2(len(self.ranks))))
        super().__init__(2 * self.depth, compute_s, fid_offset)

    def round_flows(self, r: int, start: float) -> list[Flow]:
        ranks = self.ranks
        p = len(ranks)
        flows = []
        if r < self.depth:  # reduce: odd multiples of 2^r send down
            half, full, tag = 1 << r, 1 << (r + 1), f"reduce:{r}"
            senders = [(i, i - half) for i in range(half, p, full)]
        else:  # broadcast mirrors the reduce, top round first
            rr = 2 * self.depth - 1 - r
            half, full, tag = 1 << rr, 1 << (rr + 1), f"bcast:{rr}"
            senders = [(i - half, i) for i in range(half, p, full)]
        for src_i, dst_i in senders:
            flows.append(self._flow(ranks[src_i], ranks[dst_i], self.size_bytes, start, tag))
        return flows

    def describe(self) -> dict:
        return {
            "kind": self.name, "participants": len(self.ranks),
            "size_bytes": self.size_bytes, "rounds": self.rounds,
        }


class AllToAllWorkload(_BarrierRounds):
    """Data-parallel all-to-all as P-1 barrier-synchronized shift rounds."""

    name = "alltoall"

    def __init__(
        self,
        fabric: Fabric,
        size_bytes: int = 65536,
        compute_s: float = 0.0,
        participants=None,
        fid_offset: int = 0,
    ):
        self.ranks = _participants(fabric, participants)
        self.size_bytes = int(size_bytes)
        super().__init__(len(self.ranks) - 1, compute_s, fid_offset)

    def round_flows(self, r: int, start: float) -> list[Flow]:
        ranks = self.ranks
        p = len(ranks)
        return [
            self._flow(ranks[i], ranks[(i + r + 1) % p], self.size_bytes, start,
                       f"shift:{r + 1}")
            for i in range(p)
        ]

    def describe(self) -> dict:
        return {
            "kind": self.name, "participants": len(self.ranks),
            "size_bytes": self.size_bytes, "rounds": self.rounds,
        }


class TPPPWorkload(Workload):
    """Mixed tensor-parallel + pipeline-parallel training job.

    Terminals are partitioned into ``num_stages`` pipeline stages of
    ``tp_size`` ranks each (stage *s* = ranks ``[s*tp_size, (s+1)*tp_size)``).
    Per microbatch *m* and stage *s*: a TP ring pass inside the stage
    (every member sends ``tp_bytes`` to its group neighbour), then one
    ``pp_bytes`` activation flow from the stage head to the next stage's
    head. Stage 0 admits microbatch *m+1* as soon as its own TP pass for
    *m* completes, so successive microbatches overlap down the pipeline.
    """

    name = "tp_pp"

    def __init__(
        self,
        fabric: Fabric,
        tp_size: int = 2,
        microbatches: int = 4,
        tp_bytes: int = 262144,
        pp_bytes: int = 65536,
        participants=None,
        fid_offset: int = 0,
    ):
        super().__init__(fid_offset)
        ranks = _participants(fabric, participants)
        if tp_size < 2:
            raise SimulationError("tp_pp needs tp_size >= 2 (a TP ring)")
        if len(ranks) < 2 * tp_size:
            raise SimulationError(
                f"tp_pp needs >= 2 stages: {len(ranks)} terminals / tp_size {tp_size}"
            )
        self.tp_size = int(tp_size)
        self.num_stages = len(ranks) // self.tp_size
        self.stages = [
            ranks[s * self.tp_size:(s + 1) * self.tp_size]
            for s in range(self.num_stages)
        ]
        self.microbatches = int(microbatches)
        if self.microbatches < 1:
            raise SimulationError("tp_pp needs microbatches >= 1")
        self.tp_bytes = int(tp_bytes)
        self.pp_bytes = int(pp_bytes)
        self._tp_left: dict[tuple[int, int], int] = {}  # (stage, mb) -> flows left

    def _tp_round(self, s: int, m: int, start: float) -> list[Flow]:
        group = self.stages[s]
        self._tp_left[(s, m)] = len(group)
        return [
            self._flow(group[i], group[(i + 1) % len(group)], self.tp_bytes, start,
                       f"tp:{s}:{m}")
            for i in range(len(group))
        ]

    def initial(self) -> list[Flow]:
        return self._tp_round(0, 0, 0.0)

    def on_complete(self, flow: Flow, t: float) -> list[Flow]:
        kind, s, m = flow.tag.split(":")
        s, m = int(s), int(m)
        out: list[Flow] = []
        if kind == "tp":
            self._tp_left[(s, m)] -= 1
            if self._tp_left[(s, m)] > 0:
                return []
            del self._tp_left[(s, m)]
            if s + 1 < self.num_stages:
                out.append(
                    self._flow(self.stages[s][0], self.stages[s + 1][0],
                               self.pp_bytes, t, f"pp:{s}:{m}")
                )
            if s == 0 and m + 1 < self.microbatches:
                out.extend(self._tp_round(0, m + 1, t))
        else:  # pp arrival unblocks the next stage's TP pass
            out.extend(self._tp_round(s + 1, m, t))
        return out

    def describe(self) -> dict:
        return {
            "kind": self.name, "stages": self.num_stages, "tp_size": self.tp_size,
            "microbatches": self.microbatches,
            "tp_bytes": self.tp_bytes, "pp_bytes": self.pp_bytes,
        }


class MiceProbeWorkload(Workload):
    """Seeded random single-packet latency probes over a start window."""

    name = "mice"

    def __init__(
        self,
        fabric: Fabric,
        count: int = 64,
        size_bytes: int = 256,
        window_s: float = 1e-3,
        seed=0,
        participants=None,
        fid_offset: int = 0,
    ):
        super().__init__(fid_offset)
        self.ranks = _participants(fabric, participants)
        if count < 1:
            raise SimulationError("mice workload needs count >= 1")
        self.count = int(count)
        self.size_bytes = int(size_bytes)
        self.window_s = float(window_s)
        self.seed = seed

    def initial(self) -> list[Flow]:
        rng = make_rng(self.seed)
        flows = []
        p = len(self.ranks)
        for _ in range(self.count):
            i = int(rng.integers(p))
            j = int(rng.integers(p - 1))
            if j >= i:
                j += 1
            start = float(rng.random()) * self.window_s
            flows.append(
                self._flow(self.ranks[i], self.ranks[j], self.size_bytes, start, "mouse")
            )
        return flows

    def describe(self) -> dict:
        return {
            "kind": self.name, "count": self.count, "size_bytes": self.size_bytes,
            "window_s": self.window_s,
        }


@dataclass
class CompositeWorkload(Workload):
    """Run several workloads concurrently (e.g. a collective + mice probes).

    Completion callbacks are dispatched to the sub-workload that created
    the flow; give each part a distinct ``fid_offset`` (``compose`` does)
    so flow ids never collide.
    """

    parts: list[Workload] = field(default_factory=list)
    name: str = "composite"

    def __post_init__(self):
        self._owner: dict[int, Workload] = {}

    def _adopt(self, part: Workload, flows: list[Flow]) -> list[Flow]:
        for f in flows:
            if f.fid in self._owner:
                raise SimulationError(
                    f"composite workload: duplicate flow id {f.fid} "
                    "(parts need distinct fid_offset)"
                )
            self._owner[f.fid] = part
        return flows

    def initial(self) -> list[Flow]:
        out: list[Flow] = []
        for part in self.parts:
            out.extend(self._adopt(part, part.initial()))
        return out

    def on_complete(self, flow: Flow, t: float) -> list[Flow]:
        part = self._owner[flow.fid]
        return self._adopt(part, part.on_complete(flow, t))

    def describe(self) -> dict:
        return {"kind": self.name, "parts": [p.describe() for p in self.parts]}


#: workload registry: scenario ``workload.kind`` → constructor
WORKLOADS: dict[str, type[Workload]] = {
    UniformPairsWorkload.name: UniformPairsWorkload,
    RingAllReduceWorkload.name: RingAllReduceWorkload,
    TreeAllReduceWorkload.name: TreeAllReduceWorkload,
    AllToAllWorkload.name: AllToAllWorkload,
    TPPPWorkload.name: TPPPWorkload,
    MiceProbeWorkload.name: MiceProbeWorkload,
}

#: fid spacing between composite parts — far above any realistic flow count
_FID_STRIDE = 1_000_000


def make_workload(kind: str, fabric: Fabric, **params) -> Workload:
    """Build a workload by registry ``kind``.

    ``kind="composite"`` takes ``parts=[{kind: ..., ...}, ...]`` and
    assigns non-overlapping fid ranges automatically.
    """
    if kind == "composite":
        specs = params.pop("parts", None)
        if params:
            raise SimulationError(
                f"composite workload got unknown options {sorted(params)}"
            )
        if not specs:
            raise SimulationError("composite workload needs a non-empty 'parts' list")
        parts = []
        for i, spec in enumerate(specs):
            spec = dict(spec)
            sub_kind = spec.pop("kind", None)
            if sub_kind == "composite":
                raise SimulationError("composite workloads cannot nest")
            spec.setdefault("fid_offset", i * _FID_STRIDE)
            parts.append(make_workload(sub_kind, fabric, **spec))
        return CompositeWorkload(parts=parts)
    cls = WORKLOADS.get(kind)
    if cls is None:
        known = sorted([*WORKLOADS, "composite"])
        raise SimulationError(f"unknown workload kind {kind!r}; known: {known}")
    try:
        return cls(fabric, **params)
    except TypeError as err:
        raise SimulationError(f"bad options for workload {kind!r}: {err}") from err
