"""Exception hierarchy for the DFSSSP reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Routing engines raise :class:`UnsupportedTopologyError`
when a fabric does not satisfy their structural requirements (mirroring the
paper's Figure 4, where specialised engines simply "fail" on irregular
systems), and layer-assignment code raises
:class:`InsufficientLayersError` when the available virtual lanes cannot
break every cycle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FabricError(ReproError):
    """Structural problem in a fabric description (bad node ids, radix
    overflow, unpaired channels, ...)."""


class DisconnectedFabricError(FabricError):
    """The fabric is not strongly connected, so destination-based routing
    cannot produce complete forwarding tables."""


class RoutingError(ReproError):
    """A routing engine failed to produce complete forwarding tables."""


class ComputeTimeoutError(ReproError):
    """A cooperative compute budget expired mid-computation.

    Raised by :func:`repro.service.budget.check_budget` call sites inside
    the SSSP/DFSSSP inner loops when the active
    :class:`~repro.service.budget.Budget` runs out. The work in flight is
    abandoned; callers (the :class:`~repro.service.supervisor.RoutingSupervisor`)
    keep serving the last-known-good tables and escalate per policy.
    """

    def __init__(self, message: str, label: str = "compute", limit_s: float | None = None,
                 elapsed_s: float | None = None):
        super().__init__(message)
        self.label = label
        self.limit_s = limit_s
        self.elapsed_s = elapsed_s


class CheckpointError(ReproError):
    """A service checkpoint could not be written, read or applied —
    missing/corrupt files, format mismatch, or routing state that does not
    match the checkpointed fabric."""


class ServiceError(ReproError):
    """The supervised routing service cannot satisfy a request (e.g. a
    fault batch would disconnect the fabric, or the circuit breaker is
    open and no last-known-good routing exists)."""


class FleetError(ReproError):
    """The fleet manager cannot be configured or operated as requested —
    unknown fabric ids, invalid sharding, or per-worker engine options
    that cannot run inside a daemonized worker process."""


class UnsupportedTopologyError(RoutingError):
    """The selected routing engine does not support this topology.

    Raised e.g. by DOR on fabrics without coordinates, or by the fat-tree
    engine on non-tree fabrics. Benchmarks report these as the paper's
    "missing bar" entries.
    """


class InsufficientLayersError(RoutingError):
    """Cycle breaking exhausted the available virtual layers.

    Corresponds to Algorithm 2's terminal branch: *"if cycle found: no
    deadlock-free assignment possible"*.
    """

    def __init__(self, message: str, layers_available: int, layers_needed_at_least: int):
        super().__init__(message)
        self.layers_available = layers_available
        self.layers_needed_at_least = layers_needed_at_least


class RepairError(RoutingError):
    """Incremental repair cannot be applied to this (routing, degradation)
    pair — e.g. the degradation does not derive from the routed fabric, or
    the fabric gained channels (link-up requires a full reroute).

    Engines catch this and fall back to a full recompute, so callers of
    :meth:`repro.routing.base.RoutingEngine.reroute` normally never see it.
    """


class CertificateError(ReproError):
    """A deadlock-freedom certificate could not be produced or parsed.

    Raised by :func:`repro.deadlock.certificate.emit_certificate` when a
    layer's CDG is cyclic (there is no certificate for an unsafe routing;
    ``counterexample`` then carries a real witness cycle as a channel
    chain with first == last), and by the certificate loaders on
    malformed payloads. Note that *checking* a certificate never raises —
    the checker returns a rejection with a reason instead.
    """

    def __init__(self, message: str, layer: int | None = None, counterexample=None):
        super().__init__(message)
        self.layer = layer
        self.counterexample = list(counterexample) if counterexample is not None else None


class DeadlockError(ReproError):
    """The flit-level simulator detected an actual deadlock (a cycle in the
    packet wait-for graph with every participant blocked)."""

    def __init__(self, message: str, cycle=None, blocked_packets: int = 0):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else []
        self.blocked_packets = blocked_packets


class SimulationError(ReproError):
    """Invalid simulator configuration or a pattern referencing unknown
    endpoints."""
