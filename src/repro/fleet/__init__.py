"""Fleet-scale serving: many fabrics, fault-isolated workers, one door.

``repro.fleet`` turns the single-fabric
:class:`~repro.service.supervisor.RoutingSupervisor` into a
multi-fabric, multi-process service (ROADMAP item 2):

* :class:`~repro.fleet.manager.FleetManager` — shards fabrics across
  worker processes, fronts them with deadlines, retries, admission
  budgets, per-fabric circuit breakers and graceful degradation, and
  respawns crashed workers from rolling checkpoints (certificate-
  verified before serving).
* :class:`~repro.fleet.manager.FleetConfig` — all the knobs.
* :class:`~repro.fleet.admission.AdmissionController` — bounded
  in-flight budgets per tenant / fabric / fleet.
* :func:`~repro.fleet.soak.run_fleet_soak` — the chaos soak behind the
  ``fleet-soak`` CLI: concurrent request storms + worker SIGKILLs, with
  a pass/fail report.
* :mod:`~repro.fleet.messages` — the picklable pipe protocol.
"""

from repro.fleet.admission import AdmissionController
from repro.fleet.manager import FleetConfig, FleetManager
from repro.fleet.messages import (
    OP_FAULT,
    OP_HEALTH,
    OP_QUERY,
    FleetRequest,
    FleetResponse,
    ShardSpec,
    WorkerReady,
)
from repro.fleet.soak import FleetSoakReport, run_fleet_soak

__all__ = [
    "AdmissionController",
    "FleetConfig",
    "FleetManager",
    "FleetRequest",
    "FleetResponse",
    "FleetSoakReport",
    "OP_FAULT",
    "OP_HEALTH",
    "OP_QUERY",
    "ShardSpec",
    "WorkerReady",
    "run_fleet_soak",
]
