"""Admission control: bounded in-flight budgets per tenant and fabric.

A fleet front-end that accepts every request melts down exactly when it
matters — during a worker outage, when retries and degraded fallbacks
already multiply the work per request. :class:`AdmissionController`
keeps three concurrent-request budgets (per tenant, per fabric, whole
fleet) and rejects at the door once a budget is exhausted. Rejection is
cheap and *visible*: the ``fleet_admission_rejected_total{scope=...}``
counter and an ``admission_rejected`` flight event name the budget that
tripped, and the manager answers the rejected request from last-known-
good state (degraded, stale) rather than erroring.

The controller is a context manager per request::

    with admission.admit(tenant, fabric_id) as admitted:
        if not admitted:
            ...  # degrade
        ...

so budgets are released on every exit path, including exceptions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs import get_registry
from repro.obs.recorder import record_event


class AdmissionController:
    """Concurrent in-flight request budgets (tenant / fabric / total).

    ``None`` disables a budget. Thread-safe: the fleet front-end calls
    this from every client thread.
    """

    def __init__(
        self,
        *,
        per_tenant: int | None = 16,
        per_fabric: int | None = 16,
        total: int | None = 128,
    ):
        for name, limit in (("per_tenant", per_tenant), ("per_fabric", per_fabric),
                            ("total", total)):
            if limit is not None and limit < 1:
                raise ValueError(f"{name} budget must be >= 1 or None, got {limit}")
        self.per_tenant = per_tenant
        self.per_fabric = per_fabric
        self.total = total
        self._lock = threading.Lock()
        self._tenant_inflight: dict[str, int] = {}
        self._fabric_inflight: dict[str, int] = {}
        self._total_inflight = 0

    # ------------------------------------------------------------------
    def try_acquire(self, tenant: str, fabric_id: str) -> str | None:
        """Claim one in-flight slot; returns the tripped scope on reject.

        ``None`` means admitted (the caller must :meth:`release`).
        """
        with self._lock:
            scope = None
            if self.total is not None and self._total_inflight >= self.total:
                scope = "total"
            elif (
                self.per_tenant is not None
                and self._tenant_inflight.get(tenant, 0) >= self.per_tenant
            ):
                scope = "tenant"
            elif (
                self.per_fabric is not None
                and self._fabric_inflight.get(fabric_id, 0) >= self.per_fabric
            ):
                scope = "fabric"
            if scope is None:
                self._total_inflight += 1
                self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
                self._fabric_inflight[fabric_id] = self._fabric_inflight.get(fabric_id, 0) + 1
                return None
        record_event("admission_rejected", scope=scope, tenant=tenant, fabric=fabric_id)
        get_registry().counter(
            "fleet_admission_rejected_total",
            "requests rejected at the door by an exhausted in-flight budget",
            scope=scope,
        ).inc()
        return scope

    def release(self, tenant: str, fabric_id: str) -> None:
        with self._lock:
            self._total_inflight = max(0, self._total_inflight - 1)
            self._tenant_inflight[tenant] = max(0, self._tenant_inflight.get(tenant, 1) - 1)
            self._fabric_inflight[fabric_id] = max(0, self._fabric_inflight.get(fabric_id, 1) - 1)

    @contextmanager
    def admit(self, tenant: str, fabric_id: str):
        """``with admit(...) as rejected_scope`` — ``None`` means admitted."""
        scope = self.try_acquire(tenant, fabric_id)
        try:
            yield scope
        finally:
            if scope is None:
                self.release(tenant, fabric_id)

    # ------------------------------------------------------------------
    def inflight(self) -> dict:
        """Current occupancy snapshot (for ``FleetManager.status``)."""
        with self._lock:
            return {
                "total": self._total_inflight,
                "tenants": {k: v for k, v in self._tenant_inflight.items() if v},
                "fabrics": {k: v for k, v in self._fabric_inflight.items() if v},
            }
