"""Fleet manager: fault-isolated multi-fabric routing-as-a-service.

The single-fabric :class:`~repro.service.supervisor.RoutingSupervisor`
already survives its own fault stream; :class:`FleetManager` scales that
to *N fabrics under one front door* with the failure domain the paper's
deployment implies (a subnet manager configuring many fabrics): shards
live in separate worker processes, so a crash — up to and including
SIGKILL — takes down only the fabrics on that worker, and only until the
monitor respawns it from rolling checkpoints.

The request path layers the operational guarantees on top:

* **deadlines** — every request carries one; a slow or dead shard makes
  the request *degrade*, never hang;
* **bounded retries** — exponential backoff with jitter between
  attempts, never past the deadline;
* **admission budgets** — per-tenant / per-fabric / total in-flight
  caps (:mod:`repro.fleet.admission`) shed load at the door;
* **circuit breakers** — one per fabric; consecutive shard failures
  stop the retry traffic until a cooldown probe succeeds;
* **graceful degradation** — rejected, breaker-open, or shard-down
  requests are answered from the last-known-good serving summary (or,
  failing that, the shared fingerprint-keyed routing cache), explicitly
  stamped ``stale``/``degraded`` — a request only fails (``ok=False``)
  when nothing anywhere knows a routing for that fabric.

Crash detection is belt and braces: each worker stamps a shared
heartbeat double from a daemon thread; the monitor respawns a worker
when its process dies *or* its stamp goes stale. A respawned worker
restores every shard from its checkpoints, where the restore path
re-verifies the routing through its O(V+E) deadlock-freedom certificate
before serving — the manager records each respawn with per-shard
``restored``/``verify_method`` so soaks can assert it.

Workers are started via the ``forkserver`` (fallback ``spawn``) start
method: the manager is multi-threaded and metrics registries hold locks,
so ``fork`` could deadlock a child. That makes workers daemonic
processes, which cannot have children of their own — hence
``engine_opts`` requesting the parallel executor is rejected up front.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import FleetError
from repro.fleet.admission import AdmissionController
from repro.fleet.messages import (
    OP_FAULT,
    OP_HEALTH,
    OP_QUERY,
    OP_SHUTDOWN,
    OPS,
    SOURCE_DEGRADED_CACHE,
    SOURCE_DEGRADED_LKG,
    FleetRequest,
    FleetResponse,
    ShardSpec,
    WorkerReady,
)
from repro.fleet.worker import worker_main
from repro.network.fabric import Fabric
from repro.obs import DURATION_BUCKETS, get_registry
from repro.obs.recorder import record_event
from repro.routing.cache import RoutingCache
from repro.service.policy import BackoffPolicy, CircuitBreaker, ServicePolicy


@dataclass(frozen=True)
class FleetConfig:
    """All fleet-manager knobs in one bundle.

    ``request_timeout_s`` is the per-request deadline (callers may
    override per call); ``retries`` counts *additional* attempts after
    the first. Heartbeat timing trades detection latency against false
    positives — the default tolerates a worker pausing ~10 beats.
    """

    workers: int = 2
    engine: str = "dfsssp"
    engine_opts: dict = field(default_factory=dict)
    request_timeout_s: float = 30.0
    retries: int = 2
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base_s=0.05, cap_s=0.5, max_attempts=3)
    )
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 2.0
    spawn_timeout_s: float = 120.0
    per_tenant_inflight: int | None = 16
    per_fabric_inflight: int | None = 16
    total_inflight: int | None = 128
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    degraded_delay_s: float = 0.1
    cache_max_entries: int | None = 256
    cache_max_bytes: int | None = None
    policy: ServicePolicy | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise FleetError(f"fleet needs >= 1 worker, got {self.workers}")
        if self.retries < 0:
            raise FleetError(f"retries must be >= 0, got {self.retries}")
        if self.degraded_delay_s < 0:
            raise FleetError(
                f"degraded_delay_s must be >= 0, got {self.degraded_delay_s}"
            )
        if int(self.engine_opts.get("workers") or 1) > 1:
            raise FleetError(
                "engine_opts requesting the parallel executor cannot run inside "
                "fleet workers (daemonic processes may not have children); "
                "drop engine_opts['workers'] or serve the fabric in-process"
            )


class _WorkerHandle:
    """One worker slot: process + pipe + heartbeat + serialised access."""

    def __init__(self, worker_id: int, generation: int, process, conn, heartbeat):
        self.id = worker_id
        self.generation = generation
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.lock = threading.Lock()
        self.alive = True

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def heartbeat_age(self, now: float) -> float:
        stamp = float(self.heartbeat.value)
        return now - stamp if stamp else 0.0


def _mp_context():
    """Start method for workers: never ``fork`` — the manager runs client
    threads and the metrics registry holds locks; a forked child could
    inherit one mid-acquire and deadlock on its first counter."""
    try:
        return mp.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return mp.get_context("spawn")


class FleetManager:
    """Front door over N fabrics sharded across worker processes.

    Parameters
    ----------
    fabrics:
        ``{fabric_id: healthy Fabric}`` (an iterable of fabrics gets ids
        ``fab-00``, ``fab-01``, …). Shards are assigned round-robin over
        ``config.workers`` workers in sorted-id order.
    root:
        Fleet state directory: ``shards/<fabric_id>/`` rolling
        checkpoints, ``cache/`` the shared bounded routing cache,
        ``workers/`` per-worker flight dumps.
    config:
        :class:`FleetConfig`.

    The constructor blocks until every worker reports ready (each shard
    routed/restored, verified and checkpointed), so a constructed fleet
    always serves — and always survives an immediate SIGKILL.
    """

    def __init__(self, fabrics, root, config: FleetConfig | None = None):
        if isinstance(fabrics, dict):
            items = dict(fabrics)
        else:
            items = {f"fab-{i:02d}": fabric for i, fabric in enumerate(fabrics)}
        if not items:
            raise FleetError("a fleet needs at least one fabric")
        for fabric_id, fabric in items.items():
            if not isinstance(fabric, Fabric):
                raise FleetError(f"fabric {fabric_id!r} is not a Fabric")
        self.config = config or FleetConfig()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fabrics = items
        ids = sorted(items)
        self._num_workers = min(self.config.workers, len(ids))
        self._shard_of = {fid: i % self._num_workers for i, fid in enumerate(ids)}
        self._specs: list[list[ShardSpec]] = [[] for _ in range(self._num_workers)]
        for fid in ids:
            self._specs[self._shard_of[fid]].append(
                ShardSpec(
                    fabric_id=fid, fabric=items[fid],
                    engine=self.config.engine,
                    engine_opts=dict(self.config.engine_opts),
                )
            )

        self._ctx = _mp_context()
        self._policy = self.config.policy or ServicePolicy()
        self.admission = AdmissionController(
            per_tenant=self.config.per_tenant_inflight,
            per_fabric=self.config.per_fabric_inflight,
            total=self.config.total_inflight,
        )
        self._breakers = {
            fid: CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown_s
            )
            for fid in ids
        }
        # Manager-side read-only view of the shared cache: the degraded
        # path probes it when no last-known-good summary exists yet.
        self._cache = RoutingCache(
            self.root / "cache",
            max_entries=self.config.cache_max_entries,
            max_bytes=self.config.cache_max_bytes,
        )
        self._lkg: dict[str, dict] = {}
        self._rng = random.Random(0xF1EE7)
        self._rng_lock = threading.Lock()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._closing = threading.Event()
        self.respawns: list[dict] = []
        self.deaths: list[dict] = []

        self._workers: list[_WorkerHandle] = [
            self._spawn(i, generation=0) for i in range(self._num_workers)
        ]
        self._publish_alive()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int, generation: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", 0.0)
        process = self._ctx.Process(
            target=worker_main,
            name=f"fleet-worker-{worker_id}",
            args=(
                worker_id,
                self._specs[worker_id],
                child_conn,
                heartbeat,
                str(self.root),
                self._policy.to_dict(),
                (self.config.cache_max_entries, self.config.cache_max_bytes),
                self.config.heartbeat_interval_s,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        record_event("worker_spawned", worker=worker_id, pid=process.pid,
                     generation=generation,
                     shards=[s.fabric_id for s in self._specs[worker_id]])
        ready = self._await_ready(worker_id, parent_conn, process)
        handle = _WorkerHandle(worker_id, generation, process, parent_conn, heartbeat)
        for fabric_id, info in ready.shards.items():
            self._lkg[fabric_id] = dict(info)
        record_event("worker_ready", worker=worker_id, pid=process.pid,
                     generation=generation,
                     restored=[fid for fid, s in ready.shards.items() if s.get("restored")])
        if generation > 0:
            self.respawns.append({
                "worker": worker_id, "pid": process.pid, "generation": generation,
                "shards": {fid: dict(s) for fid, s in ready.shards.items()},
            })
            get_registry().counter(
                "fleet_worker_respawns_total", "workers respawned after a crash"
            ).inc()
            record_event("worker_respawned", worker=worker_id, pid=process.pid,
                         generation=generation)
            for fabric_id, info in ready.shards.items():
                record_event(
                    "shard_restored", worker=worker_id, fabric=fabric_id,
                    restored=info.get("restored"),
                    verify_method=info.get("verify_method"),
                    certified=info.get("certified"),
                    version=info.get("version"),
                )
        return handle

    def _await_ready(self, worker_id: int, conn, process) -> WorkerReady:
        deadline = time.monotonic() + self.config.spawn_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or (not process.is_alive() and not conn.poll(0)):
                if process.is_alive():
                    process.kill()
                raise FleetError(
                    f"worker {worker_id} died before reporting ready "
                    f"(exitcode={process.exitcode})"
                )
            if conn.poll(min(remaining, 0.1)):
                msg = conn.recv()
                if isinstance(msg, WorkerReady):
                    return msg

    def _mark_dead(self, handle: _WorkerHandle, reason: str) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self.deaths.append({
            "worker": handle.id, "pid": handle.pid,
            "generation": handle.generation, "reason": reason,
        })
        record_event("worker_dead", worker=handle.id, pid=handle.pid,
                     generation=handle.generation, reason=reason)
        get_registry().counter(
            "fleet_worker_deaths_total", "worker processes detected dead",
            reason=reason,
        ).inc()
        self._publish_alive()

    def _publish_alive(self) -> None:
        get_registry().gauge(
            "fleet_workers_alive", "worker processes currently serving"
        ).set(sum(1 for w in self._workers if w.alive))

    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._closing.is_set():
            now = time.time()
            for idx, handle in enumerate(self._workers):
                if self._closing.is_set():
                    return
                if handle.alive:
                    if not handle.process.is_alive():
                        self._mark_dead(handle, reason="exit")
                    elif handle.heartbeat_age(now) > self.config.heartbeat_timeout_s:
                        self._mark_dead(handle, reason="heartbeat")
                if not handle.alive:
                    try:
                        replacement = self._spawn(
                            handle.id, generation=handle.generation + 1
                        )
                    except FleetError as err:  # pragma: no cover - respawn crash-loop
                        record_event("worker_respawn_failed", worker=handle.id,
                                     error=str(err))
                        continue
                    self._workers[idx] = replacement
                    self._publish_alive()
            self._closing.wait(interval)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _next_request_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"flt-{self._seq:06d}"

    def request(
        self,
        op: str,
        fabric_id: str,
        *,
        tenant: str = "default",
        payload: dict | None = None,
        timeout_s: float | None = None,
    ) -> FleetResponse:
        """Serve one request against the shard owning ``fabric_id``.

        Never raises for shard trouble — the response's ``degraded`` /
        ``ok`` flags carry the outcome. Raises :class:`FleetError` only
        for caller mistakes (unknown fabric or op).
        """
        if op not in OPS or op == OP_SHUTDOWN:
            raise FleetError(f"unknown fleet op {op!r}")
        if fabric_id not in self._shard_of:
            raise FleetError(f"unknown fabric {fabric_id!r}")
        req = FleetRequest(
            request_id=self._next_request_id(), op=op, fabric_id=fabric_id,
            tenant=tenant, payload=dict(payload or {}),
        )
        t0 = time.perf_counter()
        deadline = t0 + (timeout_s if timeout_s is not None else self.config.request_timeout_s)

        reg = get_registry()
        scope = self.admission.try_acquire(tenant, fabric_id)
        if scope is not None:
            return self._finish(req, self._degraded(req, f"admission-{scope}"), t0, 0)
        try:
            breaker = self._breakers[fabric_id]
            if not breaker.allow():
                reg.counter(
                    "fleet_breaker_rejections_total",
                    "requests short-circuited by an open per-fabric breaker",
                ).inc()
                return self._finish(req, self._degraded(req, "breaker-open"), t0, 0)
            attempts = 0
            resolved = False
            try:
                for attempt in range(self.config.retries + 1):
                    if attempt:
                        with self._rng_lock:
                            delay = self.config.backoff.delay(attempt - 1, self._rng)
                        delay = min(delay, max(0.0, deadline - time.perf_counter()))
                        reg.counter(
                            "fleet_retries_total", "request attempts beyond the first"
                        ).inc()
                        time.sleep(delay)
                    if time.perf_counter() >= deadline and attempt:
                        break
                    attempts += 1
                    resp = self._try_worker(req, deadline)
                    if resp is not None:
                        breaker.record_success()
                        resolved = True
                        if resp.ok:
                            serving = resp.payload.get("serving")
                            if serving:
                                self._lkg[fabric_id] = dict(serving)
                        return self._finish(req, resp, t0, attempts)
                breaker.record_failure()
                resolved = True
                return self._finish(
                    req, self._degraded(req, "shard-unavailable"), t0, attempts
                )
            finally:
                # A claimed half-open probe must always resolve, or the
                # breaker wedges closed-forever against new probes.
                if not resolved:
                    breaker.record_failure()
        finally:
            self.admission.release(tenant, fabric_id)

    def _try_worker(self, req: FleetRequest, deadline: float) -> FleetResponse | None:
        handle = self._workers[self._shard_of[req.fabric_id]]
        if not handle.alive:
            return None
        with handle.lock:
            if not handle.alive:
                return None
            try:
                handle.conn.send(req)
                while True:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return None  # a late reply is discarded by the next user
                    if not handle.conn.poll(remaining):
                        return None
                    resp = handle.conn.recv()
                    if (
                        isinstance(resp, FleetResponse)
                        and resp.request_id == req.request_id
                    ):
                        resp.worker = handle.id
                        return resp
                    get_registry().counter(
                        "fleet_stale_replies_total",
                        "late replies to already timed-out requests, discarded",
                    ).inc()
            except (EOFError, BrokenPipeError, OSError):
                self._mark_dead(handle, reason="pipe")
                return None

    def _degraded(self, req: FleetRequest, reason: str) -> FleetResponse:
        """Answer from last-known-good state instead of erroring.

        Order: the in-memory serving summary (updated on every successful
        worker response), then a shared-cache probe under the *baseline*
        fabric's fingerprint. Fault ops served this way are ``deferred``:
        the event was not applied, the caller sees the pre-fault routing.

        Degraded answers are paced by ``degraded_delay_s``: an instant
        fail-fast answer costs nothing, so during an outage clients would
        hammer the dead shard and starve the healthy ones of request
        budget (a retry storm in miniature). The delay is backpressure,
        not recovery time.
        """
        if self.config.degraded_delay_s > 0:
            time.sleep(self.config.degraded_delay_s)
        get_registry().counter(
            "fleet_degraded_total", "requests answered from last-known-good state",
            reason=reason,
        ).inc()
        serving = self._lkg.get(req.fabric_id)
        source = SOURCE_DEGRADED_LKG
        if serving is None:
            cached = self._cache.load(
                self.fabrics[req.fabric_id], self.config.engine, self.config.engine_opts
            )
            if cached is not None:
                source = SOURCE_DEGRADED_CACHE
                serving = {
                    "fabric_id": req.fabric_id,
                    "engine": self.config.engine,
                    "version": 0,
                    "state": "degraded",
                    "stale": True,
                    "deadlock_free": cached.deadlock_free,
                    "certified": cached.certificate is not None,
                }
        if serving is None:
            get_registry().counter(
                "fleet_requests_failed_total",
                "requests that could not be served at all (no known routing)",
            ).inc()
            record_event("request_failed", request_id=req.request_id,
                         fabric=req.fabric_id, reason=reason)
            return FleetResponse(
                request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
                ok=False, error=f"no routing available ({reason})",
                degraded=True, source=source,
            )
        record_event("degraded_serve", request_id=req.request_id,
                     fabric=req.fabric_id, reason=reason, source=source)
        payload = {"serving": dict(serving), "reason": reason}
        if req.op == OP_FAULT:
            payload["deferred"] = True
        return FleetResponse(
            request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
            ok=True, payload=payload, stale=True, degraded=True, source=source,
        )

    def _finish(
        self, req: FleetRequest, resp: FleetResponse, t0: float, attempts: int
    ) -> FleetResponse:
        resp.attempts = attempts
        resp.latency_s = time.perf_counter() - t0
        outcome = (
            "failed" if not resp.ok
            else "degraded" if resp.degraded
            else "ok"
        )
        reg = get_registry()
        reg.counter(
            "fleet_requests_total", "fleet front-end requests",
            op=req.op, outcome=outcome,
        ).inc()
        reg.histogram(
            "fleet_request_seconds", "front-end request latency",
            buckets=DURATION_BUCKETS,
        ).observe(resp.latency_s)
        return resp

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def query(self, fabric_id: str, **kw) -> FleetResponse:
        return self.request(OP_QUERY, fabric_id, **kw)

    def inject_fault(self, fabric_id: str, event: dict, **kw) -> FleetResponse:
        return self.request(OP_FAULT, fabric_id, payload={"event": event}, **kw)

    def health(self, fabric_id: str, **kw) -> FleetResponse:
        return self.request(OP_HEALTH, fabric_id, **kw)

    def batch(self, requests, concurrency: int = 8) -> list[FleetResponse]:
        """Serve ``(op, fabric_id, tenant, payload)`` tuples concurrently."""
        from concurrent.futures import ThreadPoolExecutor

        def one(item):
            op, fabric_id, tenant, payload = item
            return self.request(op, fabric_id, tenant=tenant, payload=payload)

        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            return list(pool.map(one, requests))

    def kill_worker(self, worker_id: int) -> int | None:
        """SIGKILL a worker (chaos hook); returns the pid, or ``None``."""
        handle = self._workers[worker_id]
        pid = handle.pid
        if pid is None or not handle.process.is_alive():
            return None
        record_event("worker_killed", worker=worker_id, pid=pid)
        os.kill(pid, signal.SIGKILL)
        return pid

    def alive_workers(self) -> list[int]:
        return [w.id for w in self._workers if w.alive and w.process.is_alive()]

    def status(self) -> dict:
        now = time.time()
        return {
            "workers": [
                {
                    "id": w.id, "pid": w.pid, "alive": w.alive,
                    "generation": w.generation,
                    "heartbeat_age_s": round(w.heartbeat_age(now), 3),
                }
                for w in self._workers
            ],
            "shards": dict(self._shard_of),
            "respawns": len(self.respawns),
            "deaths": len(self.deaths),
            "inflight": self.admission.inflight(),
            "breakers": {fid: b.to_dict() for fid, b in self._breakers.items()},
        }

    def last_known_good(self, fabric_id: str) -> dict | None:
        summary = self._lkg.get(fabric_id)
        return dict(summary) if summary is not None else None

    # ------------------------------------------------------------------
    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop the monitor, drain the workers, reap the processes."""
        if self._closing.is_set():
            return
        self._closing.set()
        self._monitor.join(timeout=timeout_s)
        for handle in self._workers:
            if handle.alive and handle.process.is_alive():
                try:
                    with handle.lock:
                        handle.conn.send(FleetRequest(
                            request_id=self._next_request_id(),
                            op=OP_SHUTDOWN, fabric_id="*",
                        ))
                except (BrokenPipeError, OSError):
                    pass
            handle.process.join(timeout=timeout_s)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=timeout_s)
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:
                pass
        self._publish_alive()

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
