"""Wire protocol between the fleet front-end and its worker processes.

Everything that crosses a worker :class:`multiprocessing.Pipe` lives
here, as plain picklable dataclasses of plain types (ints, strings,
dicts — never numpy arrays or routing tables: workers answer with
*summaries*, the bulk state stays in the worker and its checkpoints).
Keeping the protocol in one dependency-light module lets both ends
import it under the ``spawn``/``forkserver`` start methods without
dragging the whole engine stack into the unpickling path.

Requests and responses are correlated by ``request_id``: the manager
discards any reply whose id does not match the request it is waiting
for (a late answer to a timed-out request must not be mistaken for the
next request's answer).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.network.fabric import Fabric

#: request operations
OP_QUERY = "query"      #: what routing is this fabric serving right now?
OP_FAULT = "fault"      #: submit one fault event and process the batch
OP_HEALTH = "health"    #: per-shard supervisor state summary
OP_SHUTDOWN = "shutdown"  #: drain and exit the worker loop

OPS = (OP_QUERY, OP_FAULT, OP_HEALTH, OP_SHUTDOWN)

#: response sources (who actually answered)
SOURCE_WORKER = "worker"
SOURCE_DEGRADED_LKG = "degraded-lkg"
SOURCE_DEGRADED_CACHE = "degraded-cache"


@dataclass(frozen=True)
class ShardSpec:
    """One fabric assigned to one worker.

    ``fabric`` is the healthy baseline (picklable); the worker derives
    its checkpoint directory from ``fabric_id`` under the fleet root, so
    a respawned worker finds its predecessor's rolling checkpoints.
    """

    fabric_id: str
    fabric: Fabric
    engine: str = "dfsssp"
    engine_opts: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FleetRequest:
    """One front-end request routed to the shard owning ``fabric_id``."""

    request_id: str
    op: str
    fabric_id: str
    tenant: str = "default"
    payload: dict = field(default_factory=dict)


@dataclass
class FleetResponse:
    """Answer to one :class:`FleetRequest`.

    ``ok`` means the request was *served* — possibly degraded: when the
    owning shard is down the manager answers from last-known-good state
    with ``degraded=True`` and ``stale=True`` and ``source`` naming what
    backed the answer. ``ok=False`` (an unserved request) only happens
    when no last-known-good routing exists anywhere.
    """

    request_id: str
    op: str
    fabric_id: str
    ok: bool
    payload: dict = field(default_factory=dict)
    error: str | None = None
    stale: bool = False
    degraded: bool = False
    source: str = SOURCE_WORKER
    worker: int | None = None
    attempts: int = 0
    latency_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class WorkerReady:
    """First message on a fresh worker's pipe: every shard is serving.

    ``shards`` maps fabric_id → summary dict; each summary records
    whether the shard was restored from a checkpoint and whether the
    restored routing was re-verified via its deadlock-freedom
    certificate (``verify_method == "certificate"``) — the fleet soak
    asserts this for every respawn.
    """

    worker: int
    pid: int
    shards: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)
