"""Fleet chaos soak: concurrent request replay under worker SIGKILLs.

The acceptance bar for the fleet layer is operational, not functional:
*thousands of concurrent requests, random worker SIGKILLs and fabric
faults, and still zero unserved requests* — degraded answers are allowed
(each stamped stale), errors are not. :func:`run_fleet_soak` drives a
live :class:`~repro.fleet.manager.FleetManager` through exactly that and
returns a :class:`FleetSoakReport` whose :attr:`~FleetSoakReport.passed`
encodes the bar:

* every request served (``failed == 0``);
* at least the requested number of worker SIGKILLs actually landed;
* every respawned shard restored from checkpoint and re-verified via its
  deadlock-freedom certificate;
* after the storm, every fabric answers a *fresh* (non-degraded) query;
* the fleet SLO set (:data:`~repro.obs.slo.DEFAULT_FLEET_SLOS`) passes
  over the run's metrics window.

Determinism: the request schedule (op mix, fabric and tenant rotation)
is pre-generated from ``seed``; fault events come from per-fabric seeded
:class:`~repro.resilience.events.FaultInjector` streams. Wall-clock
interleaving under the thread pool and kill timing remain real —
that is the chaos being tested, and the report records what happened.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field

from repro.fleet.manager import FleetManager
from repro.fleet.messages import OP_FAULT, OP_HEALTH, OP_QUERY
from repro.obs import get_registry
from repro.obs.recorder import record_event
from repro.obs.slo import evaluate_slos, slos_for
from repro.resilience.events import FaultInjector
from repro.utils.atomicio import atomic_write_text


@dataclass
class FleetSoakReport:
    """Everything one fleet soak run learned."""

    fabrics: int
    workers: int
    requests: int
    kills_requested: int
    seed: int | None
    requests_sent: int = 0
    served_ok: int = 0
    served_degraded: int = 0
    failed: int = 0
    retries: int = 0
    stale_serves: int = 0
    faults_applied: int = 0
    faults_deferred: int = 0
    kills: list[dict] = field(default_factory=list)
    respawns: list[dict] = field(default_factory=list)
    respawned_shards_certified: bool = True
    recovered: bool = False
    recovery_seconds: float | None = None
    elapsed_seconds: float = 0.0
    latency: dict = field(default_factory=dict)
    by_op: dict = field(default_factory=dict)
    degraded_sources: dict = field(default_factory=dict)
    slo: dict = field(default_factory=dict)
    failure: str | None = None

    @property
    def passed(self) -> bool:
        return (
            self.failed == 0
            and self.failure is None
            and len(self.kills) >= self.kills_requested
            and len(self.respawns) >= self.kills_requested
            and self.respawned_shards_certified
            and self.recovered
            and bool(self.slo.get("healthy", False))
        )

    def summary(self) -> dict:
        return {
            "mode": "fleet",
            "passed": self.passed,
            "fabrics": self.fabrics,
            "workers": self.workers,
            "requests": self.requests,
            "requests_sent": self.requests_sent,
            "served_ok": self.served_ok,
            "served_degraded": self.served_degraded,
            "failed": self.failed,
            "retries": self.retries,
            "stale_serves": self.stale_serves,
            "faults_applied": self.faults_applied,
            "faults_deferred": self.faults_deferred,
            "kills_requested": self.kills_requested,
            "kills": len(self.kills),
            "respawns": len(self.respawns),
            "respawned_shards_certified": self.respawned_shards_certified,
            "recovered": self.recovered,
            "recovery_seconds": self.recovery_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": (
                self.requests_sent / self.elapsed_seconds
                if self.elapsed_seconds > 0 else None
            ),
            "latency": self.latency,
            "by_op": self.by_op,
            "degraded_sources": self.degraded_sources,
            "seed": self.seed,
            "failure": self.failure,
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "kill_log": self.kills,
            "respawn_log": self.respawns,
            "slo": self.slo,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> None:
        """Atomically write the full report as JSON."""
        atomic_write_text(path, self.to_json() + "\n")


def _percentiles(latencies: list[float]) -> dict:
    if not latencies:
        return {}
    data = sorted(latencies)

    def pct(q: float) -> float:
        idx = min(len(data) - 1, max(0, round(q * (len(data) - 1))))
        return data[idx]

    return {
        "p50_s": pct(0.50), "p95_s": pct(0.95), "p99_s": pct(0.99),
        "max_s": data[-1], "mean_s": sum(data) / len(data), "count": len(data),
    }


def run_fleet_soak(
    manager: FleetManager,
    *,
    requests: int = 1000,
    kills: int = 2,
    seed: int | None = 0,
    concurrency: int = 8,
    fault_ratio: float = 0.10,
    health_ratio: float = 0.05,
    tenants: int = 4,
    recovery_timeout_s: float = 120.0,
    on_progress=None,
) -> FleetSoakReport:
    """Replay a concurrent request storm with worker SIGKILLs mid-run.

    ``kills`` workers are SIGKILLed at evenly spaced completed-request
    thresholds (the first kill lands after roughly ``requests/(kills+1)``
    requests); victims rotate over whichever workers are alive. After the
    storm the soak waits until every worker is back and every fabric
    answers a fresh query, then judges the fleet SLOs over the run's
    metrics delta.
    """
    fabric_ids = sorted(manager.fabrics)
    rng = random.Random(seed)
    schedule = []
    for i in range(requests):
        r = rng.random()
        if r < fault_ratio:
            op = OP_FAULT
        elif r < fault_ratio + health_ratio:
            op = OP_HEALTH
        else:
            op = OP_QUERY
        schedule.append((
            op,
            fabric_ids[rng.randrange(len(fabric_ids))],
            f"tenant-{rng.randrange(tenants)}",
        ))

    injectors = {
        fid: FaultInjector(manager.fabrics[fid], seed=(seed or 0) + 1 + i)
        for i, fid in enumerate(fabric_ids)
    }
    injector_lock = threading.Lock()

    report = FleetSoakReport(
        fabrics=len(fabric_ids),
        workers=len(manager.alive_workers()),
        requests=requests,
        kills_requested=kills,
        seed=seed,
    )
    baseline_respawns = len(manager.respawns)
    kill_thresholds = [requests * (k + 1) // (kills + 1) for k in range(kills)]
    kill_state = {"done": 0, "next_victim": 0, "completed": 0}
    kill_lock = threading.Lock()
    latencies: list[float] = []
    results_lock = threading.Lock()

    reg = get_registry()
    before = reg.snapshot()
    record_event("fleet_soak_start", requests=requests, kills=kills,
                 fabrics=len(fabric_ids), seed=seed)
    t_start = time.perf_counter()

    def maybe_kill() -> None:
        with kill_lock:
            kill_state["completed"] += 1
            if kill_state["done"] >= kills:
                return
            if kill_state["completed"] < kill_thresholds[kill_state["done"]]:
                return
            alive = manager.alive_workers()
            if not alive:
                return  # all mid-respawn; the next completion retries
            victim = alive[kill_state["next_victim"] % len(alive)]
            kill_state["next_victim"] += 1
            pid = manager.kill_worker(victim)
            if pid is None:
                return
            kill_state["done"] += 1
            report.kills.append({
                "after_requests": kill_state["completed"],
                "worker": victim,
                "pid": pid,
            })

    def one(item):
        op, fabric_id, tenant = item
        payload = {}
        if op == OP_FAULT:
            with injector_lock:
                stepped = injectors[fabric_id].step()
            if stepped is None:
                op = OP_QUERY  # fabric fully degraded; keep the slot busy
            else:
                payload = {"event": stepped[0].to_dict()}
        resp = manager.request(op, fabric_id, tenant=tenant, payload=payload)
        with results_lock:
            report.requests_sent += 1
            latencies.append(resp.latency_s)
            report.retries += max(0, resp.attempts - 1)
            report.by_op[op] = report.by_op.get(op, 0) + 1
            if not resp.ok:
                report.failed += 1
            elif resp.degraded:
                report.served_degraded += 1
                report.degraded_sources[resp.source] = (
                    report.degraded_sources.get(resp.source, 0) + 1
                )
            else:
                report.served_ok += 1
            if resp.stale:
                report.stale_serves += 1
            if op == OP_FAULT and resp.ok:
                if resp.payload.get("deferred"):
                    report.faults_deferred += 1
                else:
                    report.faults_applied += 1
        maybe_kill()
        if on_progress is not None:
            on_progress(report.requests_sent, resp)

    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=concurrency, thread_name_prefix="fleet-soak") as pool:
        list(pool.map(one, schedule))

    # ------------------------------------------------------------------
    # recovery: every worker back, every fabric serving fresh answers
    # ------------------------------------------------------------------
    t_recover = time.perf_counter()
    deadline = t_recover + recovery_timeout_s
    pending = set(fabric_ids)
    while pending and time.perf_counter() < deadline:
        for fabric_id in sorted(pending):
            resp = manager.request(OP_QUERY, fabric_id)
            if resp.ok and not resp.degraded:
                pending.discard(fabric_id)
        if pending:
            time.sleep(0.2)
    report.recovered = not pending
    if report.recovered:
        report.recovery_seconds = time.perf_counter() - t_recover
    else:
        report.failure = f"fabrics never recovered: {sorted(pending)}"
    report.elapsed_seconds = time.perf_counter() - t_start

    report.respawns = [dict(r) for r in manager.respawns[baseline_respawns:]]
    # Vacuously true with no respawns; `passed` separately requires that
    # at least `kills` respawns actually happened.
    report.respawned_shards_certified = all(
        shard.get("restored") and shard.get("verify_method") == "certificate"
        for respawn in report.respawns
        for shard in respawn["shards"].values()
    )

    report.latency = _percentiles(latencies)
    window = reg.snapshot_delta(before, reg.snapshot())
    report.slo = evaluate_slos(slos_for("fleet"), window).to_dict()
    record_event("fleet_soak_end", passed=report.passed, failed=report.failed,
                 kills=len(report.kills), respawns=len(report.respawns))
    return report
