"""Fleet worker process: a few supervised fabrics behind a pipe.

One worker hosts one :class:`~repro.service.supervisor.RoutingSupervisor`
per assigned shard and answers :class:`~repro.fleet.messages.FleetRequest`
messages over its pipe until told to shut down (or killed — the whole
point of the fleet layer is that a SIGKILL here loses nothing that the
shard checkpoints cannot restore).

Lifecycle:

1. For every :class:`~repro.fleet.messages.ShardSpec`, restore from the
   shard's rolling checkpoints when any exist (the restore path
   re-verifies the routing via its O(V+E) deadlock-freedom certificate
   before serving), else construct fresh (the constructor routes,
   verifies and writes checkpoint #1 — so by the time the worker reports
   ready, every shard can survive a SIGKILL).
2. Send a :class:`~repro.fleet.messages.WorkerReady` carrying per-shard
   restore/certification summaries (the soak asserts respawned shards
   were certificate-verified).
3. Start a daemon heartbeat thread that stamps a shared double with
   ``time.time()`` — the manager's monitor treats a stale stamp or a
   dead process the same way: respawn.
4. Serve the request loop; any per-request failure is answered
   ``ok=False`` rather than crashing the worker (real crash isolation is
   the process boundary, exercised by the soak's SIGKILLs).

This module runs under ``spawn``/``forkserver`` start methods, so
``worker_main`` must stay importable at top level and all its arguments
picklable.
"""

from __future__ import annotations

import os
import threading
import time

from repro.exceptions import CheckpointError, ReproError
from repro.fleet.messages import (
    OP_FAULT,
    OP_HEALTH,
    OP_QUERY,
    OP_SHUTDOWN,
    FleetRequest,
    FleetResponse,
    ShardSpec,
    WorkerReady,
)
from repro.obs.recorder import get_recorder, record_event
from repro.resilience.events import FaultEvent
from repro.routing.cache import RoutingCache
from repro.service.policy import ServicePolicy
from repro.service.supervisor import RoutingSupervisor


def shard_checkpoint_dir(root, fabric_id: str):
    """Where a shard's rolling checkpoints live under the fleet root.

    Derived purely from the fleet root and fabric id so a respawned
    worker — a brand-new process — finds its predecessor's state.
    """
    from pathlib import Path

    return Path(root) / "shards" / fabric_id


def serving_summary(fabric_id: str, supervisor: RoutingSupervisor) -> dict:
    """Picklable summary of what a shard serves right now."""
    served = supervisor.serving()
    return {
        "fabric_id": fabric_id,
        "engine": supervisor.engine.name,
        "version": served.version,
        "state": served.state,
        "stale": served.stale,
        "pending_events": served.pending_events,
        "switches": served.fabric.num_switches,
        "cables": served.fabric.num_channels // 2,
        "deadlock_free": served.result.deadlock_free,
        "certified": served.result.certificate is not None,
        "layers": (
            served.result.layered.layers_used
            if served.result.layered is not None
            else None
        ),
    }


def _build_shard(spec: ShardSpec, root, policy: ServicePolicy, cache: RoutingCache):
    """Restore-or-construct one shard; returns (supervisor, summary)."""
    ckpt_dir = shard_checkpoint_dir(root, spec.fabric_id)
    restored = False
    try:
        supervisor = RoutingSupervisor.restore(
            ckpt_dir, policy=policy, cache_dir=cache
        )
        restored = True
    except CheckpointError:
        # No (usable) checkpoint — first spawn, or the shard died before
        # its constructor finished checkpoint #1. Build from scratch.
        supervisor = RoutingSupervisor(
            spec.fabric,
            engine=spec.engine,
            policy=policy,
            checkpoint_dir=ckpt_dir,
            cache_dir=cache,
            engine_opts=dict(spec.engine_opts),
        )
    summary = serving_summary(spec.fabric_id, supervisor)
    summary["restored"] = restored
    # The restore path verifies through the checkpointed certificate
    # (supervisor._adopt -> _verify); a fresh construction verifies via
    # the full CDG rebuild. Either way the shard never serves unverified.
    summary["verify_method"] = "certificate" if (
        restored and supervisor.serving().result.certificate is not None
    ) else "rebuild"
    return supervisor, summary


def _handle(req: FleetRequest, supervisors: dict) -> FleetResponse:
    supervisor = supervisors.get(req.fabric_id)
    if supervisor is None:
        return FleetResponse(
            request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
            ok=False, error=f"shard {req.fabric_id!r} not hosted by this worker",
        )
    try:
        if req.op == OP_QUERY:
            payload = {"serving": serving_summary(req.fabric_id, supervisor)}
        elif req.op == OP_FAULT:
            event = FaultEvent.from_dict(req.payload["event"])
            supervisor.submit(event)
            outcome = supervisor.process()
            payload = {
                "outcome": outcome.to_dict() if outcome is not None else None,
                "serving": serving_summary(req.fabric_id, supervisor),
            }
        elif req.op == OP_HEALTH:
            payload = {
                "serving": serving_summary(req.fabric_id, supervisor),
                "batches": supervisor.batches,
                "events_submitted": supervisor.events_submitted,
                "consecutive_failures": supervisor.consecutive_failures,
                "breaker": supervisor.breaker.to_dict(),
            }
        else:
            return FleetResponse(
                request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
                ok=False, error=f"unknown op {req.op!r}",
            )
    except ReproError as err:
        return FleetResponse(
            request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
            ok=False, error=f"{type(err).__name__}: {err}",
        )
    served = payload["serving"]
    return FleetResponse(
        request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
        ok=True, payload=payload, stale=bool(served["stale"]),
    )


def worker_main(
    worker_id: int,
    specs: list[ShardSpec],
    conn,
    heartbeat,
    root,
    policy_data: dict | None,
    cache_limits: tuple[int | None, int | None],
    heartbeat_interval_s: float,
) -> None:
    """Entry point of one fleet worker process."""
    policy = (
        ServicePolicy.from_dict(policy_data) if policy_data else ServicePolicy()
    )
    max_entries, max_bytes = cache_limits
    cache = RoutingCache(
        os.path.join(str(root), "cache"),
        max_entries=max_entries, max_bytes=max_bytes,
    )

    stop = threading.Event()

    def beat():
        while not stop.is_set():
            heartbeat.value = time.time()
            stop.wait(heartbeat_interval_s)

    # Start beating before the (potentially slow) initial routes so the
    # manager's liveness monitor never mistakes "busy building" for dead.
    heartbeat.value = time.time()
    threading.Thread(target=beat, name=f"fleet-hb-{worker_id}", daemon=True).start()

    supervisors: dict[str, RoutingSupervisor] = {}
    shard_info: dict[str, dict] = {}
    try:
        for spec in specs:
            supervisors[spec.fabric_id], shard_info[spec.fabric_id] = _build_shard(
                spec, root, policy, cache
            )
        conn.send(WorkerReady(worker=worker_id, pid=os.getpid(), shards=shard_info))
    except BaseException:  # pragma: no cover - surfaced as spawn failure
        stop.set()
        try:
            conn.close()
        except OSError:
            pass
        raise

    record_event("worker_serving", worker=worker_id, pid=os.getpid(),
                 shards=sorted(supervisors))
    try:
        while True:
            try:
                req = conn.recv()
            except (EOFError, OSError):
                break  # manager is gone; nothing left to serve
            if not isinstance(req, FleetRequest):
                continue
            if req.op == OP_SHUTDOWN:
                conn.send(FleetResponse(
                    request_id=req.request_id, op=req.op,
                    fabric_id=req.fabric_id, ok=True,
                ))
                break
            try:
                resp = _handle(req, supervisors)
            except Exception as err:  # noqa: BLE001 - worker must not die on one request
                resp = FleetResponse(
                    request_id=req.request_id, op=req.op, fabric_id=req.fabric_id,
                    ok=False, error=f"{type(err).__name__}: {err}",
                )
            try:
                conn.send(resp)
            except (BrokenPipeError, OSError):
                break
    finally:
        stop.set()
        # Leave a post-mortem trail next to the shards' checkpoints.
        dump_dir = os.path.join(str(root), "workers")
        os.makedirs(dump_dir, exist_ok=True)
        get_recorder().dump(
            os.path.join(dump_dir, f"worker-{worker_id}-{os.getpid()}-flight.json")
        )
        try:
            conn.close()
        except OSError:
            pass
