"""Network substrate: fabric model, builder, topology generators, I/O and
failure injection."""

from repro.network.channels import Channel, ChannelVector
from repro.network.fabric import Fabric, NodeKind
from repro.network.builder import FabricBuilder
from repro.network.validate import check_connected, check_routable, check_terminals_attached
from repro.network.io import (
    fabric_from_dict,
    fabric_to_dict,
    load_edge_list,
    load_fabric,
    save_edge_list,
    save_fabric,
)
from repro.network.ibnetdiscover import load_ibnetdiscover, parse_ibnetdiscover
from repro.network.opensm_export import export_lft, export_route, export_sl_assignment
from repro.network.faults import (
    DegradedFabric,
    cable_keys,
    degrade,
    fail_links,
    fail_specific_cable,
    fail_switches,
    identity_degradation,
)

__all__ = [
    "load_ibnetdiscover",
    "export_lft",
    "export_route",
    "export_sl_assignment",
    "parse_ibnetdiscover",
    "Channel",
    "ChannelVector",
    "Fabric",
    "NodeKind",
    "FabricBuilder",
    "check_connected",
    "check_routable",
    "check_terminals_attached",
    "fabric_from_dict",
    "fabric_to_dict",
    "load_edge_list",
    "load_fabric",
    "save_edge_list",
    "save_fabric",
    "DegradedFabric",
    "cable_keys",
    "degrade",
    "fail_links",
    "fail_specific_cable",
    "fail_switches",
    "identity_degradation",
]
