"""Mutable builder producing immutable :class:`Fabric` objects.

Topology generators and the file loader accumulate switches, terminals and
cables here; :meth:`FabricBuilder.build` freezes everything into columnar
NumPy storage. The builder enforces port-radix limits when a radix is
declared (36-port switches in the paper's artificial topologies) and
rejects self-loops and links to unknown nodes at insertion time, which
keeps error messages close to the faulty generator code.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FabricError
from repro.network.channels import ChannelVector
from repro.network.fabric import Fabric, NodeKind


class FabricBuilder:
    """Incrementally assemble a fabric.

    >>> b = FabricBuilder()
    >>> s0, s1 = b.add_switch(), b.add_switch()
    >>> t0 = b.add_terminal()
    >>> _ = b.add_link(s0, s1)
    >>> _ = b.add_link(t0, s0)
    >>> fabric = b.build()
    >>> fabric.num_switches, fabric.num_terminals
    (2, 1)
    """

    def __init__(self, default_radix: int | None = None):
        self._kinds: list[int] = []
        self._names: list[str] = []
        self._radix: list[int | None] = []
        self._ports_used: list[int] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._cap: list[float] = []
        self._coords: dict[int, tuple[int, ...]] = {}
        self.default_radix = default_radix
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    def _add_node(self, kind: NodeKind, name: str | None, radix: int | None) -> int:
        nid = len(self._kinds)
        self._kinds.append(int(kind))
        self._names.append(name if name is not None else f"{'sw' if kind == NodeKind.SWITCH else 'hca'}{nid}")
        self._radix.append(radix if radix is not None else self.default_radix)
        self._ports_used.append(0)
        return nid

    def add_switch(self, name: str | None = None, radix: int | None = None) -> int:
        """Add a switch; returns its node id."""
        return self._add_node(NodeKind.SWITCH, name, radix)

    def add_terminal(self, name: str | None = None) -> int:
        """Add a terminal (HCA/endpoint); returns its node id."""
        return self._add_node(NodeKind.TERMINAL, name, None)

    def add_switches(self, count: int, radix: int | None = None, prefix: str = "sw") -> list[int]:
        return [self.add_switch(name=f"{prefix}{i}", radix=radix) for i in range(count)]

    def add_terminals(self, count: int, prefix: str = "hca") -> list[int]:
        return [self.add_terminal(name=f"{prefix}{i}") for i in range(count)]

    def set_coordinates(self, node: int, coords: tuple[int, ...]) -> None:
        """Attach integer coordinates used by dimension-ordered routing."""
        self._check_node(node)
        self._coords[node] = tuple(int(c) for c in coords)

    def _check_node(self, node: int) -> None:
        if not (0 <= node < len(self._kinds)):
            raise FabricError(f"unknown node id {node} (have {len(self._kinds)} nodes)")

    def add_link(self, a: int, b: int, capacity: float = 1.0, count: int = 1) -> list[int]:
        """Add ``count`` parallel full-duplex cables between ``a`` and ``b``.

        Returns the ids of the a->b channels (one per cable). Raises
        :class:`FabricError` on self-loops, unknown nodes, terminal-to-
        terminal cables or port-radix overflow.
        """
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise FabricError(f"self-loop on node {a} is not a valid cable")
        if count < 1:
            raise FabricError("cable count must be >= 1")
        if capacity <= 0:
            raise FabricError("cable capacity must be positive")
        if (
            self._kinds[a] == NodeKind.TERMINAL
            and self._kinds[b] == NodeKind.TERMINAL
        ):
            raise FabricError(f"terminal-to-terminal cable {a}<->{b} is not supported")
        for node in (a, b):
            radix = self._radix[node]
            if radix is not None and self._ports_used[node] + count > radix:
                raise FabricError(
                    f"port radix exceeded on node {node} "
                    f"({self._ports_used[node]}+{count} > {radix})"
                )
        forward_ids = []
        for _ in range(count):
            cid = len(self._src)
            self._src.extend((a, b))
            self._dst.extend((b, a))
            self._cap.extend((capacity, capacity))
            forward_ids.append(cid)
        self._ports_used[a] += count
        self._ports_used[b] += count
        return forward_ids

    def ports_free(self, node: int) -> int | None:
        """Remaining free ports on ``node`` (None if radix unlimited)."""
        self._check_node(node)
        radix = self._radix[node]
        if radix is None:
            return None
        return radix - self._ports_used[node]

    # ------------------------------------------------------------------
    def build(self) -> Fabric:
        """Freeze into an immutable :class:`Fabric`."""
        n_chan = len(self._src)
        reverse = np.arange(n_chan, dtype=np.int32)
        # Cables were appended as (forward, backward) adjacent pairs.
        reverse[0::2] += 1
        reverse[1::2] -= 1
        channels = ChannelVector(self._src, self._dst, reverse, self._cap)
        return Fabric(
            kinds=np.array(self._kinds, dtype=np.int8),
            channels=channels,
            names=self._names,
            coordinates=self._coords,
            metadata=self.metadata,
        )
