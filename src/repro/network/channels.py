"""Channel primitives.

A *channel* is one direction of a physical cable: InfiniBand links are
full-duplex, so every cable contributes two opposed channels. Channels are
identified by dense integer ids (``0 .. num_channels-1``) so that routing
engines and the congestion simulator can use flat NumPy arrays.

Cables are always created in pairs; :func:`reverse_of` maps a channel to
its opposite direction. Parallel cables between the same pair of nodes
(trunks, e.g. the 30 links between Deimos' core switches) are distinct
channel pairs — the balancing logic of SSSP depends on being able to
spread routes across them individually.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Channel:
    """A single directed channel.

    Attributes
    ----------
    cid:
        Dense channel id.
    src, dst:
        Endpoint node ids.
    reverse:
        Channel id of the opposite direction of the same cable.
    capacity:
        Relative bandwidth (1.0 = one full link). The congestion simulator
        divides flow bandwidth by (flows / capacity).
    """

    cid: int
    src: int
    dst: int
    reverse: int
    capacity: float = 1.0

    def endpoints(self) -> tuple[int, int]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel({self.cid}: {self.src}->{self.dst})"


class ChannelVector:
    """Columnar storage of all channels of a fabric.

    Provides O(1) NumPy-array access to ``src``/``dst``/``reverse``/
    ``capacity`` per channel id; the :class:`Channel` dataclass view is
    materialised on demand for ergonomic debugging.
    """

    __slots__ = ("src", "dst", "reverse", "capacity")

    def __init__(self, src, dst, reverse, capacity):
        import numpy as np

        self.src = np.asarray(src, dtype=np.int32)
        self.dst = np.asarray(dst, dtype=np.int32)
        self.reverse = np.asarray(reverse, dtype=np.int32)
        self.capacity = np.asarray(capacity, dtype=np.float64)
        n = len(self.src)
        if not (len(self.dst) == len(self.reverse) == len(self.capacity) == n):
            raise ValueError("channel column arrays must have equal length")

    def __len__(self) -> int:
        return len(self.src)

    def __getitem__(self, cid: int) -> Channel:
        return Channel(
            cid=int(cid),
            src=int(self.src[cid]),
            dst=int(self.dst[cid]),
            reverse=int(self.reverse[cid]),
            capacity=float(self.capacity[cid]),
        )

    def pairs_consistent(self) -> bool:
        """True iff ``reverse`` is a proper involution matching endpoints."""
        import numpy as np

        r = self.reverse
        n = len(self)
        if n == 0:
            return True
        if r.min() < 0 or r.max() >= n:
            return False
        ok = np.all(r[r] == np.arange(n))
        ok = ok and np.all(self.src[r] == self.dst) and np.all(self.dst[r] == self.src)
        return bool(ok)
