"""The :class:`Fabric` — an immutable directed multigraph network model.

Nodes are either **switches** (forwarding elements with a port radix) or
**terminals** (InfiniBand channel adapters / compute endpoints). Channels
are directed; every physical cable is a pair of opposed channels (see
:mod:`repro.network.channels`). Parallel cables between the same node pair
are first-class citizens.

The fabric is built once by :class:`repro.network.builder.FabricBuilder`
and then frozen: routing engines and simulators only ever read it, which
lets us expose raw NumPy arrays (CSR adjacency, channel endpoint columns)
without defensive copies.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.exceptions import FabricError
from repro.network.channels import ChannelVector


class NodeKind(IntEnum):
    SWITCH = 0
    TERMINAL = 1


class Fabric:
    """Immutable network description.

    Parameters are normally supplied by :class:`FabricBuilder`; direct
    construction is supported for tests.

    Attributes
    ----------
    kinds:
        ``int8`` array, :class:`NodeKind` per node.
    channels:
        :class:`ChannelVector` with per-channel ``src``/``dst``/``reverse``.
    out_ptr / out_chan:
        CSR layout of outgoing channels: channels leaving node ``v`` are
        ``out_chan[out_ptr[v]:out_ptr[v+1]]`` (sorted by channel id).
    terminals / switches:
        Sorted node-id arrays by kind.
    term_index:
        Dense map node id -> terminal index (or -1), used to index
        forwarding-table columns.
    coordinates:
        Optional per-node coordinate tuples (tori/meshes/hypercubes) used
        by dimension-ordered routing.
    metadata:
        Free-form topology info (family name, generator parameters).
    """

    def __init__(
        self,
        kinds: np.ndarray,
        channels: ChannelVector,
        names: list[str] | None = None,
        coordinates: dict[int, tuple[int, ...]] | None = None,
        metadata: dict | None = None,
    ):
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.num_nodes = len(self.kinds)
        self.channels = channels
        self.num_channels = len(channels)
        self.names = list(names) if names is not None else [f"n{i}" for i in range(self.num_nodes)]
        if len(self.names) != self.num_nodes:
            raise FabricError("names length does not match node count")
        self.coordinates = dict(coordinates) if coordinates else {}
        self.metadata = dict(metadata) if metadata else {}

        if self.num_channels:
            lo = int(min(channels.src.min(), channels.dst.min()))
            hi = int(max(channels.src.max(), channels.dst.max()))
            if lo < 0 or hi >= self.num_nodes:
                raise FabricError(
                    f"channel endpoint out of range: nodes [0,{self.num_nodes}) "
                    f"but channels reference [{lo},{hi}]"
                )
        if not channels.pairs_consistent():
            raise FabricError("channel reverse pairing is inconsistent")

        # CSR of outgoing channels.
        order = np.argsort(channels.src, kind="stable")
        counts = np.bincount(channels.src, minlength=self.num_nodes)
        self.out_ptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.out_ptr[1:])
        self.out_chan = order.astype(np.int32)

        # Node partitions.
        self.switches = np.flatnonzero(self.kinds == NodeKind.SWITCH).astype(np.int32)
        self.terminals = np.flatnonzero(self.kinds == NodeKind.TERMINAL).astype(np.int32)
        self.term_index = np.full(self.num_nodes, -1, dtype=np.int32)
        self.term_index[self.terminals] = np.arange(len(self.terminals), dtype=np.int32)
        self.switch_index = np.full(self.num_nodes, -1, dtype=np.int32)
        self.switch_index[self.switches] = np.arange(len(self.switches), dtype=np.int32)

        # Channel classification: a channel is a *switch channel* iff both
        # endpoints are switches. Only switch channels can appear in channel
        # dependency cycles (terminal channels have no CDG predecessor or
        # successor respectively).
        if self.num_channels:
            src_sw = self.kinds[channels.src] == NodeKind.SWITCH
            dst_sw = self.kinds[channels.dst] == NodeKind.SWITCH
            self.is_switch_channel = np.logical_and(src_sw, dst_sw)
        else:
            self.is_switch_channel = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_terminals(self) -> int:
        return len(self.terminals)

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    def is_switch(self, node: int) -> bool:
        return self.kinds[node] == NodeKind.SWITCH

    def is_terminal(self, node: int) -> bool:
        return self.kinds[node] == NodeKind.TERMINAL

    def out_channels(self, node: int) -> np.ndarray:
        """Channel ids leaving ``node`` (NumPy view; do not mutate)."""
        return self.out_chan[self.out_ptr[node] : self.out_ptr[node + 1]]

    def in_channels(self, node: int) -> np.ndarray:
        """Channel ids entering ``node`` (reverse of outgoing cables)."""
        return self.channels.reverse[self.out_channels(node)]

    def neighbors(self, node: int) -> np.ndarray:
        """Unique neighbor node ids of ``node``."""
        return np.unique(self.channels.dst[self.out_channels(node)])

    def degree(self, node: int) -> int:
        """Number of outgoing channels (= attached cables) of ``node``."""
        return int(self.out_ptr[node + 1] - self.out_ptr[node])

    def channel_between(self, u: int, v: int) -> int:
        """Id of one channel u->v (the lowest if trunked); -1 if none."""
        for c in self.out_channels(u):
            if self.channels.dst[c] == v:
                return int(c)
        return -1

    def channels_between(self, u: int, v: int) -> list[int]:
        """All parallel channel ids u->v."""
        return [int(c) for c in self.out_channels(u) if self.channels.dst[c] == v]

    def attached_switches(self, terminal: int) -> np.ndarray:
        """Switches a terminal connects to (usually one; service nodes in
        real systems are sometimes dual-homed)."""
        if not self.is_terminal(terminal):
            raise FabricError(f"node {terminal} is not a terminal")
        return self.neighbors(terminal)

    def terminal_of_index(self, idx: int) -> int:
        """Node id of the terminal with dense index ``idx``."""
        return int(self.terminals[idx])

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def switch_channel_ids(self) -> np.ndarray:
        """Ids of all switch<->switch channels."""
        return np.flatnonzero(self.is_switch_channel).astype(np.int32)

    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` (for analysis/tests)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for v in range(self.num_nodes):
            g.add_node(
                v,
                kind="switch" if self.is_switch(v) else "terminal",
                name=self.names[v],
            )
        for cid in range(self.num_channels):
            ch = self.channels[cid]
            g.add_edge(ch.src, ch.dst, key=cid, cid=cid, capacity=ch.capacity)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fam = self.metadata.get("family", "fabric")
        return (
            f"Fabric({fam}: {self.num_switches} switches, "
            f"{self.num_terminals} terminals, {self.num_channels // 2} cables)"
        )
