"""Failure injection: derive degraded fabrics from healthy ones.

The paper's introduction motivates DFSSSP with fabrics that are *not*
clean fat trees or tori — systems grow, links die, service nodes are
dual-homed. These helpers remove cables or whole switches from a fabric
and return a new (immutable) fabric, so experiments can measure how each
routing engine copes with degradation (the specialised engines typically
raise :class:`~repro.exceptions.UnsupportedTopologyError`, while DFSSSP
keeps routing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric
from repro.utils.prng import make_rng


@dataclass(frozen=True)
class DegradedFabric:
    """Result of failure injection.

    ``node_map`` maps old node ids to new ids (-1 for removed nodes), so
    callers can translate endpoint lists and traffic patterns.
    ``channel_map`` does the same for channel ids (-1 for removed
    channels); :mod:`repro.resilience` uses it to splice surviving
    forwarding-table entries onto the degraded fabric.
    """

    fabric: Fabric
    node_map: np.ndarray
    removed_cables: int
    removed_switches: int
    channel_map: np.ndarray | None = None


def _rebuild(fabric: Fabric, dead_nodes: set[int], dead_cables: set[tuple[int, int]]) -> DegradedFabric:
    builder = FabricBuilder()
    node_map = np.full(fabric.num_nodes, -1, dtype=np.int64)
    channel_map = np.full(fabric.num_channels, -1, dtype=np.int64)
    for v in range(fabric.num_nodes):
        if v in dead_nodes:
            continue
        if fabric.is_switch(v):
            node_map[v] = builder.add_switch(name=fabric.names[v])
        else:
            node_map[v] = builder.add_terminal(name=fabric.names[v])
        if v in fabric.coordinates:
            builder.set_coordinates(int(node_map[v]), fabric.coordinates[v])
    removed_cables = 0
    seen = set()
    for cid in range(fabric.num_channels):
        rid = int(fabric.channels.reverse[cid])
        key = (min(cid, rid), max(cid, rid))
        if key in seen:
            continue
        seen.add(key)
        a = int(fabric.channels.src[cid])
        b = int(fabric.channels.dst[cid])
        if a in dead_nodes or b in dead_nodes or key in dead_cables:
            removed_cables += 1
            continue
        new_fwd = builder.add_link(
            int(node_map[a]), int(node_map[b]), capacity=float(fabric.channels.capacity[cid])
        )[0]
        # The builder appends cables as adjacent (forward, backward) pairs.
        channel_map[cid] = new_fwd
        channel_map[rid] = new_fwd + 1
    builder.metadata = dict(fabric.metadata)
    if removed_cables or dead_nodes:
        builder.metadata["degraded"] = True
    levels = fabric.metadata.get("switch_levels")
    if levels:
        builder.metadata["switch_levels"] = {
            int(node_map[int(k)]): int(v)
            for k, v in levels.items()
            if node_map[int(k)] >= 0
        }
    return DegradedFabric(
        fabric=builder.build(),
        node_map=node_map,
        removed_cables=removed_cables,
        removed_switches=len(dead_nodes),
        channel_map=channel_map,
    )


def cable_keys(fabric: Fabric) -> list[tuple[int, int]]:
    """Canonical ``(cid, reverse_cid)`` key per physical cable."""
    keys = []
    for cid in range(fabric.num_channels):
        rid = int(fabric.channels.reverse[cid])
        if cid < rid:
            keys.append((cid, rid))
    return keys


_cable_keys = cable_keys  # backwards-compatible private alias


def identity_degradation(fabric: Fabric) -> DegradedFabric:
    """A no-op :class:`DegradedFabric` (the fabric mapped onto itself).

    The resilience event stream uses this as the starting state so every
    subsequent fault composes through the same map algebra.
    """
    return DegradedFabric(
        fabric=fabric,
        node_map=np.arange(fabric.num_nodes, dtype=np.int64),
        removed_cables=0,
        removed_switches=0,
        channel_map=np.arange(fabric.num_channels, dtype=np.int64),
    )


def degrade(
    fabric: Fabric,
    dead_switches=(),
    dead_cables=(),
) -> DegradedFabric:
    """Remove an explicit set of switches and cables.

    ``dead_switches`` are node ids; ``dead_cables`` are cable keys as
    produced by :func:`cable_keys` (either channel id of the pair is
    accepted). Terminals cannot be removed directly — real subnet
    managers drop endpoints too, but our experiments keep the terminal
    population fixed.
    """
    dead_nodes = {int(s) for s in dead_switches}
    for v in dead_nodes:
        if not (0 <= v < fabric.num_nodes) or not fabric.is_switch(v):
            raise FabricError(f"node {v} is not a switch; only switches can fail")
    keys = set()
    for key in dead_cables:
        cid, rid = (int(key[0]), int(key[1])) if isinstance(key, tuple) else (int(key), -1)
        if rid < 0:
            rid = int(fabric.channels.reverse[cid])
        if not (0 <= cid < fabric.num_channels) or int(fabric.channels.reverse[cid]) != rid:
            raise FabricError(f"({cid}, {rid}) is not a cable of this fabric")
        keys.add((min(cid, rid), max(cid, rid)))
    return _rebuild(fabric, dead_nodes, keys)


def fail_links(fabric: Fabric, count: int, seed=None, switch_links_only: bool = True) -> DegradedFabric:
    """Remove ``count`` random cables.

    With ``switch_links_only`` (default) only switch-to-switch cables are
    candidates, so no terminal gets orphaned.
    """
    rng = make_rng(seed)
    candidates = [
        key
        for key in _cable_keys(fabric)
        if not switch_links_only or fabric.is_switch_channel[key[0]]
    ]
    if count > len(candidates):
        raise FabricError(
            f"cannot fail {count} cables; only {len(candidates)} candidates"
        )
    picks = rng.choice(len(candidates), size=count, replace=False)
    dead = {candidates[int(i)] for i in picks}
    return _rebuild(fabric, set(), dead)


def fail_switches(fabric: Fabric, count: int, seed=None) -> DegradedFabric:
    """Remove ``count`` random switches along with all their cables.

    Switches whose removal would orphan a singly-homed terminal are not
    candidates — real subnet managers drop the endpoints too, but our
    experiments want to keep the terminal population fixed.
    """
    rng = make_rng(seed)
    protected = set()
    for t in fabric.terminals:
        attached = fabric.attached_switches(int(t))
        if len(attached) == 1:
            protected.add(int(attached[0]))
    candidates = [int(s) for s in fabric.switches if int(s) not in protected]
    if count > len(candidates):
        raise FabricError(
            f"cannot fail {count} switches; only {len(candidates)} removable"
        )
    picks = rng.choice(len(candidates), size=count, replace=False)
    dead = {candidates[int(i)] for i in picks}
    return _rebuild(fabric, dead, set())


def fail_specific_cable(fabric: Fabric, a: int, b: int) -> DegradedFabric:
    """Remove one (the lowest-id) cable between nodes ``a`` and ``b``."""
    cid = fabric.channel_between(a, b)
    if cid < 0:
        raise FabricError(f"no cable between nodes {a} and {b}")
    rid = int(fabric.channels.reverse[cid])
    return _rebuild(fabric, set(), {(min(cid, rid), max(cid, rid))})
