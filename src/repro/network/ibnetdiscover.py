"""Import real fabrics from ``ibnetdiscover`` output.

``ibnetdiscover`` is the standard InfiniBand diagnostic that walks a live
subnet and dumps its topology — the exact artifact the paper's authors
worked from for the six real systems. Supporting it means a user can
point this library at *their* cluster:

    ibnetdiscover > fabric.topo
    repro-route simulate --ibnetdiscover fabric.topo --engines minhop,dfsssp

We parse the common subset of the format::

    Switch  24 "S-0002c902400c8850"   # "ISR9024D Voltaire" ... lid 6 lmc 0
    [1]     "H-0002c9020020e78c"[1](2c9020020e78d)  # "node-01 HCA-1" lid 4 4xSDR
    [2]     "S-0002c902400c8851"[3]   # "..." lid 7 4xDDR

    Ca      2 "H-0002c9020020e78c"    # "node-01 HCA-1"
    [1](2c9020020e78d)  "S-0002c902400c8850"[1]  # lid 4 ...

Parsing rules:

* ``Switch``/``Ca`` headers declare nodes (GUID string is the identity;
  the quoted comment supplies a human-readable name when present);
* every following ``[port] "peer"[port]`` line declares one cable; each
  cable appears once per endpoint, so the (node, port) pair dedupes the
  two sightings;
* unknown header kinds (``Rt`` routers) and attribute lines are skipped.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric

_HEADER = re.compile(
    r'^(Switch|Ca|Rt)\s+\d+\s+"(?P<guid>[^"]+)"(?:\s*#\s*"(?P<name>[^"]*)")?'
)
_LINK = re.compile(
    r'^\[(?P<port>\d+)\](?:\([0-9a-fA-F]+\))?\s+"(?P<peer>[^"]+)"\[(?P<peer_port>\d+)\]'
)


def parse_ibnetdiscover(text: str) -> Fabric:
    """Parse ``ibnetdiscover`` output into a :class:`Fabric`.

    Raises :class:`FabricError` on structural inconsistencies (links to
    undeclared nodes, mismatched double sightings).
    """
    builder = FabricBuilder()
    ids: dict[str, int] = {}
    kinds: dict[str, str] = {}
    # (guid, port) -> (peer_guid, peer_port) pending cable sightings
    sightings: dict[tuple[str, int], tuple[str, int]] = {}
    current: str | None = None

    def declare(kind: str, guid: str, name: str | None) -> None:
        nonlocal current
        if guid in ids:
            if kinds[guid] != kind:
                raise FabricError(f"node {guid!r} declared as both {kinds[guid]} and {kind}")
            current = guid
            return
        if kind == "Switch":
            ids[guid] = builder.add_switch(name=name or guid)
        elif kind == "Ca":
            ids[guid] = builder.add_terminal(name=name or guid)
        else:  # Rt — routers, out of scope
            current = None
            return
        kinds[guid] = kind
        current = guid

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER.match(line)
        if header:
            declare(header.group(1), header.group("guid"), header.group("name"))
            continue
        link = _LINK.match(line)
        if link:
            if current is None:
                continue  # link of a skipped router
            port = int(link.group("port"))
            peer = link.group("peer")
            peer_port = int(link.group("peer_port"))
            key = (current, port)
            if key in sightings:
                raise FabricError(
                    f"line {lineno}: duplicate port sighting {current!r}[{port}]"
                )
            sightings[key] = (peer, peer_port)
            continue
        # attribute lines (vendid=, caguid=, ...) are ignored

    if not ids:
        raise FabricError("no Switch/Ca declarations found; not ibnetdiscover output?")

    # Pair up the two sightings of every cable.
    done: set[tuple[str, int]] = set()
    for (guid, port), (peer, peer_port) in sightings.items():
        if (guid, port) in done:
            continue
        if peer not in ids:
            if peer.startswith("R-"):  # link to a skipped router
                continue
            raise FabricError(f"cable from {guid!r} references undeclared node {peer!r}")
        back = sightings.get((peer, peer_port))
        if back is not None and back != (guid, port):
            raise FabricError(
                f"cable mismatch: {guid!r}[{port}] -> {peer!r}[{peer_port}] but "
                f"{peer!r}[{peer_port}] -> {back[0]!r}[{back[1]}]"
            )
        builder.add_link(ids[guid], ids[peer])
        done.add((guid, port))
        done.add((peer, peer_port))

    builder.metadata = {"family": "ibnetdiscover", "nodes": len(ids)}
    return builder.build()


def load_ibnetdiscover(path: str | Path) -> Fabric:
    """Parse an ``ibnetdiscover`` dump file."""
    return parse_ibnetdiscover(Path(path).read_text())
