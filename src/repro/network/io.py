"""Fabric serialization.

Two formats are supported:

* **JSON** — lossless round-trip of nodes, cables (with trunking and
  capacities), coordinates and metadata. Used by tests and the CLI.
* **edge-list** (``.edges``) — a small text format in the spirit of the
  ORCS input files: one ``<name> -- <name>`` cable per line, node kind
  inferred from a ``H`` (host) / ``S`` (switch) name prefix or declared in
  a header. Handy for importing externally produced fabrics.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric
from repro.utils.atomicio import atomic_write_text

FORMAT_VERSION = 1


def fabric_to_dict(fabric: Fabric) -> dict:
    """Lossless dict representation (cables stored once, not per channel)."""
    cables = []
    seen = set()
    for cid in range(fabric.num_channels):
        rid = int(fabric.channels.reverse[cid])
        key = (min(cid, rid), max(cid, rid))
        if key in seen:
            continue
        seen.add(key)
        cables.append(
            {
                "a": int(fabric.channels.src[cid]),
                "b": int(fabric.channels.dst[cid]),
                "capacity": float(fabric.channels.capacity[cid]),
            }
        )
    return {
        "version": FORMAT_VERSION,
        "nodes": [
            {
                "id": v,
                "kind": "switch" if fabric.is_switch(v) else "terminal",
                "name": fabric.names[v],
                **(
                    {"coordinates": list(fabric.coordinates[v])}
                    if v in fabric.coordinates
                    else {}
                ),
            }
            for v in range(fabric.num_nodes)
        ],
        "cables": cables,
        "metadata": fabric.metadata,
    }


def fabric_from_dict(data: dict) -> Fabric:
    """Inverse of :func:`fabric_to_dict`.

    Raises :class:`~repro.exceptions.FabricError` on any structural
    problem — wrong version, missing keys, non-dense node ids — so
    callers never see a raw ``KeyError``/``TypeError`` from a truncated
    or hand-edited file.
    """
    if not isinstance(data, dict):
        raise FabricError(f"fabric file must hold a JSON object, got {type(data).__name__}")
    if data.get("version") != FORMAT_VERSION:
        raise FabricError(f"unsupported fabric file version: {data.get('version')!r}")
    for key in ("nodes", "cables"):
        if not isinstance(data.get(key), list):
            raise FabricError(f"fabric file is missing the {key!r} list")
    builder = FabricBuilder()
    try:
        nodes = sorted(data["nodes"], key=lambda n: n["id"])
    except (KeyError, TypeError) as err:
        raise FabricError("fabric node entry without an 'id'") from err
    for expect, node in enumerate(nodes):
        if node["id"] != expect:
            raise FabricError(f"node ids must be dense 0..n-1; got {node['id']} at {expect}")
        kind = node.get("kind")
        if kind == "switch":
            nid = builder.add_switch(name=node.get("name"))
        elif kind == "terminal":
            nid = builder.add_terminal(name=node.get("name"))
        else:
            raise FabricError(f"unknown node kind {kind!r} (node {expect})")
        if "coordinates" in node:
            builder.set_coordinates(nid, tuple(node["coordinates"]))
    for idx, cable in enumerate(data["cables"]):
        try:
            a, b = cable["a"], cable["b"]
        except (KeyError, TypeError) as err:
            raise FabricError(f"cable {idx} lacks endpoint keys 'a'/'b'") from err
        builder.add_link(a, b, capacity=cable.get("capacity", 1.0))
    builder.metadata = dict(data.get("metadata", {}))
    return builder.build()


def save_fabric(fabric: Fabric, path: str | Path) -> None:
    """Atomically write the JSON representation (tmp file + rename)."""
    atomic_write_text(path, json.dumps(fabric_to_dict(fabric), indent=1))


def load_fabric(path: str | Path) -> Fabric:
    """Load a fabric JSON file, naming ``path`` in every failure mode."""
    try:
        text = Path(path).read_text()
    except OSError as err:
        raise FabricError(f"{path}: cannot read fabric file: {err}") from err
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise FabricError(f"{path}: malformed fabric JSON: {err}") from err
    try:
        return fabric_from_dict(data)
    except FabricError as err:
        raise FabricError(f"{path}: {err}") from err


# ----------------------------------------------------------------------
# Edge-list format
# ----------------------------------------------------------------------
def save_edge_list(fabric: Fabric, path: str | Path) -> None:
    """Write the ORCS-like ``a -- b`` cable list (names must be unique)."""
    if len(set(fabric.names)) != fabric.num_nodes:
        raise FabricError("edge-list export requires unique node names")
    lines = []
    for v in range(fabric.num_nodes):
        kind = "S" if fabric.is_switch(v) else "H"
        lines.append(f"node {kind} {fabric.names[v]}")
    seen = set()
    for cid in range(fabric.num_channels):
        rid = int(fabric.channels.reverse[cid])
        key = (min(cid, rid), max(cid, rid))
        if key in seen:
            continue
        seen.add(key)
        a = fabric.names[int(fabric.channels.src[cid])]
        b = fabric.names[int(fabric.channels.dst[cid])]
        lines.append(f"{a} -- {b}")
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_edge_list(path: str | Path) -> Fabric:
    """Parse the edge-list format written by :func:`save_edge_list`.

    Nodes may also be declared implicitly by name prefix: names starting
    with ``H`` are terminals, everything else a switch.
    """
    builder = FabricBuilder()
    ids: dict[str, int] = {}

    def get_node(name: str) -> int:
        if name not in ids:
            if name.startswith("H") or name.startswith("h"):
                ids[name] = builder.add_terminal(name=name)
            else:
                ids[name] = builder.add_switch(name=name)
        return ids[name]

    try:
        text = Path(path).read_text()
    except OSError as err:
        raise FabricError(f"{path}: cannot read edge list: {err}") from err
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("node "):
            try:
                _, kind, name = line.split()
            except ValueError as err:
                raise FabricError(f"{path}:{lineno}: bad node declaration {raw!r}") from err
            if name in ids:
                raise FabricError(f"{path}:{lineno}: duplicate node {name!r}")
            if kind == "S":
                ids[name] = builder.add_switch(name=name)
            elif kind == "H":
                ids[name] = builder.add_terminal(name=name)
            else:
                raise FabricError(f"{path}:{lineno}: unknown node kind {kind!r}")
            continue
        if "--" not in line:
            raise FabricError(f"{path}:{lineno}: expected 'a -- b' cable, got {raw!r}")
        a, b = (part.strip() for part in line.split("--", 1))
        if not a or not b:
            raise FabricError(f"{path}:{lineno}: bad cable line {raw!r}")
        builder.add_link(get_node(a), get_node(b))
    return builder.build()
