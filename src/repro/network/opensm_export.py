"""Export forwarding state in OpenSM-style dump formats.

The paper's DFSSSP ships inside OpenSM, whose operators inspect routing
through ``ibroute`` / ``dump_lfts`` dumps (linear forwarding tables: one
"LID → output port" line per destination per switch) and per-path SL
assignments. These exporters produce the equivalent artifacts from our
model, which makes diffing against a real subnet manager's output — or
feeding downstream tooling that parses LFT dumps — possible.

Conventions (documented in the dump headers):

* LIDs are ``terminal_index + 1`` (LMC 0).
* Port numbers are the 1-based position of the outgoing channel in the
  switch's channel list (stable, matches :meth:`Fabric.out_channels`).
"""

from __future__ import annotations

import io

from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingTables


def _port_numbers(fabric: Fabric) -> dict[int, int]:
    """channel id -> 1-based port number on its source node."""
    ports: dict[int, int] = {}
    for v in range(fabric.num_nodes):
        for i, c in enumerate(fabric.out_channels(v), start=1):
            ports[int(c)] = i
    return ports


def export_lft(tables: RoutingTables) -> str:
    """Linear forwarding tables, one block per switch (ibroute style).

    Format::

        Unicast lids [0x1-0x24] of switch Lid 0 guid sw0 (core0):
          Lid  Out   Destination
          0x1  001 : (Channel Adapter portguid: 'node-01')
          ...
    """
    fabric = tables.fabric
    ports = _port_numbers(fabric)
    out = io.StringIO()
    out.write(f"# LFT dump ({tables.engine} routing); LIDs = terminal index + 1, LMC 0\n")
    for sw in fabric.switches:
        sw = int(sw)
        out.write(
            f"Unicast lids [0x1-0x{fabric.num_terminals:x}] of switch "
            f"'{fabric.names[sw]}' (node {sw}):\n"
        )
        out.write("  Lid  Out : Destination\n")
        for t_idx in range(fabric.num_terminals):
            c = int(tables.next_channel[sw, t_idx])
            if c < 0:
                continue
            dest = int(fabric.terminals[t_idx])
            out.write(
                f"  0x{t_idx + 1:x}  {ports[c]:03d} : "
                f"(Channel Adapter portguid: '{fabric.names[dest]}')\n"
            )
        out.write(f"  {fabric.num_terminals} valid lids\n")
    return out.getvalue()


def export_sl_assignment(layered: LayeredRouting) -> str:
    """Per-source-switch SL (virtual lane) table for every destination.

    One line per (source switch, destination LID) pair, mirroring the
    path-record SLs OpenSM's DFSSSP answers to SA queries.
    """
    fabric = layered.fabric
    out = io.StringIO()
    out.write(
        f"# SL assignment dump; {layered.num_layers} virtual lanes, "
        f"{layered.layers_used} in use\n"
    )
    S = fabric.num_switches
    for t_idx in range(fabric.num_terminals):
        dest = int(fabric.terminals[t_idx])
        out.write(f"DLID 0x{t_idx + 1:x} ('{fabric.names[dest]}'):")
        sls = layered.path_layers[t_idx * S : (t_idx + 1) * S]
        out.write(" " + " ".join(str(int(sl)) for sl in sls) + "\n")
    return out.getvalue()


def export_route(tables: RoutingTables, src: int, dst: int) -> str:
    """One human-readable hop-by-hop route (ibtracert style)."""
    fabric = tables.fabric
    chans = tables.path_channels(src, dst)
    ports = _port_numbers(fabric)
    lines = [f"From '{fabric.names[src]}' to '{fabric.names[dst]}':"]
    for c in chans:
        u = int(fabric.channels.src[c])
        v = int(fabric.channels.dst[c])
        lines.append(
            f"  '{fabric.names[u]}' port {ports[c]} -> '{fabric.names[v]}'"
        )
    lines.append(f"{len(chans)} hops")
    return "\n".join(lines) + "\n"
