"""Export/import forwarding state in OpenSM-style dump formats.

The paper's DFSSSP ships inside OpenSM, whose operators inspect routing
through ``ibroute`` / ``dump_lfts`` dumps (linear forwarding tables: one
"LID → output port" line per destination per switch) and per-path SL
assignments. These exporters produce the equivalent artifacts from our
model, which makes diffing against a real subnet manager's output — or
feeding downstream tooling that parses LFT dumps — possible. The reader
counterparts (:func:`import_lft`, :func:`import_sl_assignment`) go the
other way: given a dump and the fabric it was taken on, they rebuild
:class:`RoutingTables` / :class:`LayeredRouting` — which is how foreign
routings enter the deadlock-freedom certification pipeline
(``repro-route certify --lft ...``).

Conventions (documented in the dump headers):

* LIDs are ``terminal_index + 1`` (LMC 0).
* Port numbers are the 1-based position of the outgoing channel in the
  switch's channel list (stable, matches :meth:`Fabric.out_channels`).
"""

from __future__ import annotations

import io
import re

import numpy as np

from repro.exceptions import RoutingError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingTables


def _port_numbers(fabric: Fabric) -> dict[int, int]:
    """channel id -> 1-based port number on its source node."""
    ports: dict[int, int] = {}
    for v in range(fabric.num_nodes):
        for i, c in enumerate(fabric.out_channels(v), start=1):
            ports[int(c)] = i
    return ports


def export_lft(tables: RoutingTables) -> str:
    """Linear forwarding tables, one block per switch (ibroute style).

    Format::

        Unicast lids [0x1-0x24] of switch Lid 0 guid sw0 (core0):
          Lid  Out   Destination
          0x1  001 : (Channel Adapter portguid: 'node-01')
          ...
    """
    fabric = tables.fabric
    ports = _port_numbers(fabric)
    out = io.StringIO()
    out.write(f"# LFT dump ({tables.engine} routing); LIDs = terminal index + 1, LMC 0\n")
    for sw in fabric.switches:
        sw = int(sw)
        out.write(
            f"Unicast lids [0x1-0x{fabric.num_terminals:x}] of switch "
            f"'{fabric.names[sw]}' (node {sw}):\n"
        )
        out.write("  Lid  Out : Destination\n")
        for t_idx in range(fabric.num_terminals):
            c = int(tables.next_channel[sw, t_idx])
            if c < 0:
                continue
            dest = int(fabric.terminals[t_idx])
            out.write(
                f"  0x{t_idx + 1:x}  {ports[c]:03d} : "
                f"(Channel Adapter portguid: '{fabric.names[dest]}')\n"
            )
        out.write(f"  {fabric.num_terminals} valid lids\n")
    return out.getvalue()


def export_sl_assignment(layered: LayeredRouting) -> str:
    """Per-source-switch SL (virtual lane) table for every destination.

    One line per (source switch, destination LID) pair, mirroring the
    path-record SLs OpenSM's DFSSSP answers to SA queries.
    """
    fabric = layered.fabric
    out = io.StringIO()
    out.write(
        f"# SL assignment dump; {layered.num_layers} virtual lanes, "
        f"{layered.layers_used} in use\n"
    )
    S = fabric.num_switches
    for t_idx in range(fabric.num_terminals):
        dest = int(fabric.terminals[t_idx])
        out.write(f"DLID 0x{t_idx + 1:x} ('{fabric.names[dest]}'):")
        sls = layered.path_layers[t_idx * S : (t_idx + 1) * S]
        out.write(" " + " ".join(str(int(sl)) for sl in sls) + "\n")
    return out.getvalue()


_LFT_HEADER = re.compile(r"^# LFT dump \((?P<engine>\S+) routing\)")
_LFT_BLOCK = re.compile(r"^Unicast lids \[[^\]]*\] of switch '[^']*' \(node (?P<node>\d+)\):")
_LFT_ROW = re.compile(r"^\s+0x(?P<lid>[0-9a-f]+)\s+(?P<port>\d{3}) : ")
_SL_HEADER = re.compile(r"^# SL assignment dump; (?P<layers>\d+) virtual lanes")
_SL_ROW = re.compile(r"^DLID 0x(?P<lid>[0-9a-f]+) \('[^']*'\):(?P<sls>( \d+)+)$")


def import_lft(text: str, fabric: Fabric) -> RoutingTables:
    """Rebuild :class:`RoutingTables` from an :func:`export_lft` dump.

    The dump carries switch rows only — LFTs live on switches — so
    terminal injection rows are synthesized: each terminal forwards into
    its first attached switch (deterministic; paths, CDGs and therefore
    certificates depend only on the switch rows, which round-trip
    exactly). Raises :class:`RoutingError` on ports or LIDs that do not
    exist on ``fabric`` — a dump from a different fabric cannot be
    imported silently.
    """
    port_to_chan: dict[tuple[int, int], int] = {}
    for v in range(fabric.num_nodes):
        for i, c in enumerate(fabric.out_channels(v), start=1):
            port_to_chan[(v, i)] = int(c)

    engine = "imported"
    next_channel = np.full((fabric.num_nodes, fabric.num_terminals), -1, dtype=np.int32)
    node: int | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _LFT_HEADER.match(line)
        if m:
            engine = m.group("engine")
            continue
        m = _LFT_BLOCK.match(line)
        if m:
            node = int(m.group("node"))
            if node >= fabric.num_nodes or not fabric.is_switch(node):
                raise RoutingError(f"LFT line {lineno}: node {node} is not a switch here")
            continue
        m = _LFT_ROW.match(line)
        if not m:
            continue
        if node is None:
            raise RoutingError(f"LFT line {lineno}: forwarding row before any switch block")
        t_idx = int(m.group("lid"), 16) - 1
        if not 0 <= t_idx < fabric.num_terminals:
            raise RoutingError(f"LFT line {lineno}: LID 0x{t_idx + 1:x} out of range")
        chan = port_to_chan.get((node, int(m.group("port"))))
        if chan is None:
            raise RoutingError(
                f"LFT line {lineno}: switch {node} has no port {int(m.group('port'))}"
            )
        next_channel[node, t_idx] = chan

    # Synthesized injection rows (see docstring): terminal -> first switch.
    for term in fabric.terminals:
        term = int(term)
        inject = [c for c in fabric.out_channels(term)
                  if fabric.is_switch(int(fabric.channels.dst[c]))]
        for t_idx in range(fabric.num_terminals):
            if int(fabric.terminals[t_idx]) != term and inject:
                next_channel[term, t_idx] = inject[0]
    return RoutingTables(fabric, next_channel, engine=engine)


def import_sl_assignment(text: str, tables: RoutingTables) -> LayeredRouting:
    """Rebuild :class:`LayeredRouting` from an :func:`export_sl_assignment` dump.

    The header names the virtual-lane count; each ``DLID`` row lists one
    SL per source switch in switch-index order, exactly as exported.
    """
    fabric = tables.fabric
    S, T = fabric.num_switches, fabric.num_terminals
    num_layers: int | None = None
    path_layers = np.zeros(S * T, dtype=np.int16)
    seen = np.zeros(T, dtype=bool)
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SL_HEADER.match(line)
        if m:
            num_layers = int(m.group("layers"))
            continue
        m = _SL_ROW.match(line)
        if not m:
            continue
        t_idx = int(m.group("lid"), 16) - 1
        if not 0 <= t_idx < T:
            raise RoutingError(f"SL line {lineno}: DLID 0x{t_idx + 1:x} out of range")
        sls = [int(v) for v in m.group("sls").split()]
        if len(sls) != S:
            raise RoutingError(
                f"SL line {lineno}: {len(sls)} SLs for {S} source switches"
            )
        path_layers[t_idx * S : (t_idx + 1) * S] = sls
        seen[t_idx] = True
    if num_layers is None:
        raise RoutingError("SL dump has no '# SL assignment dump' header")
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise RoutingError(f"SL dump is missing DLID 0x{missing + 1:x}")
    return LayeredRouting(tables, path_layers, num_layers)


def export_route(tables: RoutingTables, src: int, dst: int) -> str:
    """One human-readable hop-by-hop route (ibtracert style)."""
    fabric = tables.fabric
    chans = tables.path_channels(src, dst)
    ports = _port_numbers(fabric)
    lines = [f"From '{fabric.names[src]}' to '{fabric.names[dst]}':"]
    for c in chans:
        u = int(fabric.channels.src[c])
        v = int(fabric.channels.dst[c])
        lines.append(
            f"  '{fabric.names[u]}' port {ports[c]} -> '{fabric.names[v]}'"
        )
    lines.append(f"{len(chans)} hops")
    return "\n".join(lines) + "\n"
