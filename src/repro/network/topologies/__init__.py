"""Topology generators.

Every generator returns an immutable :class:`~repro.network.fabric.Fabric`
whose ``metadata["family"]`` names the family; routing engines with
structural requirements (DOR, fat-tree) key off that metadata.
"""

from repro.network.topologies.ring import ring, chordal_ring
from repro.network.topologies.torus import torus, mesh
from repro.network.topologies.hypercube import hypercube
from repro.network.topologies.trees import kary_ntree, xgft
from repro.network.topologies.kautz import kautz, kautz_num_switches
from repro.network.topologies.random_topo import random_topology
from repro.network.topologies.dragonfly import dragonfly
from repro.network.topologies.grown import grown_cluster
from repro.network.topologies.clusters import (
    CLUSTERS,
    cluster,
    chic,
    deimos,
    juropa,
    jaguar,
    odin,
    ranger,
    thunderbird,
    tsubame,
)
from repro.network.topologies.tables import (
    NOMINAL_SIZES,
    build_kautz,
    build_ktree,
    build_table1,
    build_xgft,
)

__all__ = [
    "ring",
    "chordal_ring",
    "torus",
    "mesh",
    "hypercube",
    "kary_ntree",
    "xgft",
    "kautz",
    "kautz_num_switches",
    "random_topology",
    "dragonfly",
    "grown_cluster",
    "CLUSTERS",
    "cluster",
    "chic",
    "deimos",
    "juropa",
    "odin",
    "ranger",
    "tsubame",
    "thunderbird",
    "jaguar",
    "NOMINAL_SIZES",
    "build_kautz",
    "build_ktree",
    "build_table1",
    "build_xgft",
]
