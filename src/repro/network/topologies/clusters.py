"""Synthetic lookalikes of the six real HPC fabrics of the paper.

The paper evaluates routing on graph files of CHiC, JUROPA, Odin, Ranger,
Tsubame and Deimos. Those fabric files are not public, so we generate
*structural* stand-ins from the published descriptions: switch radix,
number of levels, trunking between big switches, oversubscription and the
irregularities (dual-homed service nodes, asymmetric cores) that make
these systems hard for specialised routing engines. See DESIGN.md §2 for
the substitution rationale.

Every generator takes ``scale`` ∈ (0, 1]: host and leaf-switch counts are
multiplied by it (structure preserved), so CI-sized experiments keep the
shape of the full systems. ``scale=1`` reproduces the published sizes.
"""

from __future__ import annotations

import math

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _check_scale(scale: float) -> None:
    if not (0 < scale <= 1):
        raise FabricError(f"scale must be in (0, 1], got {scale}")


class _ChassisSwitch:
    """A modular director switch (Voltaire ISR-style) modeled internally.

    Real "288-port switches" are 2-level Clos fabrics of 24-port chips:
    line boards expose external ports and connect upward to spine boards.
    OpenSM sees those chips as individual switches, and the internal
    stages are where local balancing (MinHop) loses against global
    balancing (SSSP) — so the lookalikes must model them.
    """

    def __init__(self, b: FabricBuilder, tag: str, num_line: int, num_spine: int,
                 ext_per_line: int = 12):
        self.b = b
        self.ext_per_line = ext_per_line
        self.lines = [b.add_switch(name=f"{tag}_line{i}") for i in range(num_line)]
        self.spines = [b.add_switch(name=f"{tag}_spine{i}") for i in range(num_spine)]
        for line in self.lines:
            for spine in self.spines:
                b.add_link(line, spine)
        self._next = 0
        self._used = [0] * num_line

    def reserve_port(self) -> int:
        """Claim one external port; returns its line-board switch id."""
        for _ in range(len(self.lines)):
            i = self._next
            self._next = (self._next + 1) % len(self.lines)
            if self._used[i] < self.ext_per_line:
                self._used[i] += 1
                return self.lines[i]
        raise FabricError("chassis switch out of external ports")

    def attach(self, node: int) -> None:
        """Cable an external node to the next line board with a free port."""
        self.b.add_link(node, self.reserve_port())

    @property
    def external_capacity(self) -> int:
        return self.ext_per_line * len(self.lines)


def odin(scale: float = 1.0) -> Fabric:
    """Odin (Indiana University): 128 nodes on a single 144-port switch
    (internally a 12-line x 12-spine Clos of 24-port chips).

    The one topology where the paper's DFSSSP slightly *loses* (-4.75%)
    to the specialised fat-tree routing — the internal Clos is a perfect
    fat tree, so the specialised spread is optimal and all reasonable
    routings are close.
    """
    _check_scale(scale)
    hosts = _scaled(128, scale, minimum=2)
    num_line = max(2, min(12, -(-hosts // 12)))
    b = FabricBuilder()
    chassis = _ChassisSwitch(b, "core", num_line=num_line, num_spine=12)
    for i in range(hosts):
        t = b.add_terminal(name=f"hca{i}")
        chassis.attach(t)
    b.metadata = {"family": "cluster", "system": "odin", "scale": scale, "hosts": hosts}
    return b.build()


def deimos(scale: float = 1.0) -> Fabric:
    """Deimos (TU Dresden): 724 nodes on three 288-port director switches
    in a chain with 30-cable trunks (paper Figure 11).

    Each director is modeled internally (24 line x 12 spine chips of the
    Voltaire ISR 9288); trunk cables land on specific line boards. The
    thin trunks and the internal stages are the congestion structure that
    SSSP's global balancing exploits in Section VI.
    """
    _check_scale(scale)
    per_switch = [_scaled(250, scale, 2), _scaled(224, scale, 2), _scaled(250, scale, 2)]
    trunk = _scaled(30, scale, 1)
    num_line = max(2, min(24, -(-(max(per_switch) + 2 * trunk) // 12)))
    num_spine = max(2, num_line // 2)
    b = FabricBuilder()
    chassis = [
        _ChassisSwitch(b, f"core{i}", num_line=num_line, num_spine=num_spine)
        for i in range(3)
    ]
    # Trunks between adjacent directors, spread over line boards: a trunk
    # cable occupies one external port on each side.
    for a, c in ((0, 1), (1, 2)):
        for _ in range(trunk):
            b.add_link(chassis[a].reserve_port(), chassis[c].reserve_port())
    idx = 0
    for ci, count in enumerate(per_switch):
        for _ in range(count):
            t = b.add_terminal(name=f"hca{idx}")
            chassis[ci].attach(t)
            idx += 1
    b.metadata = {
        "family": "cluster",
        "system": "deimos",
        "scale": scale,
        "hosts": sum(per_switch),
        "trunk": trunk,
    }
    return b.build()


def chic(scale: float = 1.0) -> Fabric:
    """CHiC (TU Chemnitz): 550 nodes, two-level fat tree of 24-port leaf
    switches (18 down / 6 up) with a pair of dual-homed storage nodes as
    the irregularity."""
    _check_scale(scale)
    hosts = _scaled(550, scale, 4)
    leaves_n = max(2, math.ceil(hosts / 18))
    spines_n = 6
    b = FabricBuilder()
    spines = [b.add_switch(name=f"spine{i}") for i in range(spines_n)]
    leaves = [b.add_switch(name=f"leaf{i}", radix=24) for i in range(leaves_n)]
    for leaf in leaves:
        for spine in spines:
            b.add_link(leaf, spine)
    idx = 0
    for li, leaf in enumerate(leaves):
        for _ in range(min(18, hosts - idx)):
            t = b.add_terminal(name=f"hca{idx}")
            b.add_link(t, leaf)
            idx += 1
    # Dual-homed storage servers (if at least two leaves exist).
    for s in range(2):
        t = b.add_terminal(name=f"storage{s}")
        b.add_link(t, spines[s % spines_n])
    b.metadata = {
        "family": "cluster",
        "system": "chic",
        "scale": scale,
        "hosts": idx + 2,
        "leaves": leaves_n,
    }
    return b.build()


def juropa(scale: float = 1.0) -> Fabric:
    """JUROPA/HPC-FF (FZ Jülich): 3288 nodes, QDR fat tree from 36-port
    switches with 2:1 oversubscription (24 hosts / 12 uplinks per leaf)."""
    _check_scale(scale)
    hosts = _scaled(3288, scale, 4)
    leaves_n = max(2, math.ceil(hosts / 24))
    spines_n = 12
    b = FabricBuilder()
    spines = [b.add_switch(name=f"spine{i}") for i in range(spines_n)]
    leaves = [b.add_switch(name=f"leaf{i}", radix=36) for i in range(leaves_n)]
    for leaf in leaves:
        for spine in spines:
            b.add_link(leaf, spine)
    idx = 0
    for leaf in leaves:
        for _ in range(min(24, hosts - idx)):
            t = b.add_terminal(name=f"hca{idx}")
            b.add_link(t, leaf)
            idx += 1
    # Lustre service nodes hang off the spines — the irregularity that
    # keeps JUROPA from being a pure fat tree.
    for s in range(2):
        t = b.add_terminal(name=f"lustre{s}")
        b.add_link(t, spines[s % spines_n])
    b.metadata = {
        "family": "cluster",
        "system": "juropa",
        "scale": scale,
        "hosts": idx + 2,
        "leaves": leaves_n,
    }
    return b.build()


def ranger(scale: float = 1.0) -> Fabric:
    """Ranger (TACC): 3936 nodes in 328 12-node chassis, dual-homed to two
    core "Magnum" fabrics of unequal width.

    Each Magnum is modeled as a two-level Clos (line switches x spines);
    core B has fewer line switches than core A — the asymmetry that lets
    globally balancing routers (SSSP/DFSSSP) gain the paper's 63% over
    locally balancing MinHop.
    """
    _check_scale(scale)
    chassis_n = _scaled(328, scale, 4)
    hosts_per_chassis = 12
    line_a = max(2, _scaled(28, scale, 2))
    line_b = max(2, _scaled(20, scale, 2))
    spines_a = max(2, _scaled(12, scale, 2))
    spines_b = max(2, _scaled(12, scale, 2))
    b = FabricBuilder()

    def build_magnum(tag: str, lines_n: int, spines_n: int) -> list[int]:
        spines = [b.add_switch(name=f"{tag}_spine{i}") for i in range(spines_n)]
        lines = [b.add_switch(name=f"{tag}_line{i}") for i in range(lines_n)]
        for line in lines:
            for spine in spines:
                b.add_link(line, spine)
        return lines

    lines_a = build_magnum("magA", line_a, spines_a)
    lines_b = build_magnum("magB", line_b, spines_b)
    idx = 0
    for ci in range(chassis_n):
        nem = b.add_switch(name=f"nem{ci}")
        b.add_link(nem, lines_a[ci % line_a])
        b.add_link(nem, lines_b[ci % line_b])
        for _ in range(hosts_per_chassis):
            t = b.add_terminal(name=f"hca{idx}")
            b.add_link(t, nem)
            idx += 1
    b.metadata = {
        "family": "cluster",
        "system": "ranger",
        "scale": scale,
        "hosts": idx,
        "chassis": chassis_n,
    }
    return b.build()


def tsubame(scale: float = 1.0) -> Fabric:
    """Tsubame (TokyoTech), 1430-endpoint configuration: big edge switches
    trunked unevenly to two cores — uneven trunks are the irregularity."""
    _check_scale(scale)
    hosts = _scaled(1430, scale, 4)
    edges_n = max(2, math.ceil(hosts / 143))
    per_edge = -(-hosts // edges_n)
    trunks_per_edge = max(2, _scaled(20, scale, 2))
    b = FabricBuilder()

    def chassis(tag: str, external: int) -> _ChassisSwitch:
        num_line = max(2, min(24, -(-external // 12)))
        return _ChassisSwitch(b, tag, num_line=num_line, num_spine=max(2, num_line // 2))

    cores = [chassis(f"core{i}", edges_n * trunks_per_edge) for i in range(2)]
    edges = [chassis(f"edge{i}", per_edge + trunks_per_edge) for i in range(edges_n)]
    for ei, edge in enumerate(edges):
        # Unbalanced trunk split between the two cores: deliberately
        # asymmetric (40/60 alternating), the system's irregularity.
        t0 = max(1, (trunks_per_edge * (2 if ei % 2 == 0 else 3)) // 5)
        t1 = trunks_per_edge - t0
        for _ in range(t0):
            b.add_link(edge.reserve_port(), cores[0].reserve_port())
        for _ in range(max(1, t1)):
            b.add_link(edge.reserve_port(), cores[1].reserve_port())
    idx = 0
    for edge in edges:
        for _ in range(min(per_edge, hosts - idx)):
            t = b.add_terminal(name=f"hca{idx}")
            edge.attach(t)
            idx += 1
    b.metadata = {
        "family": "cluster",
        "system": "tsubame",
        "scale": scale,
        "hosts": idx,
        "edges": edges_n,
    }
    return b.build()


def thunderbird(scale: float = 1.0) -> Fabric:
    """Thunderbird (Sandia, mentioned in §I): ≈4400 nodes on a half-
    bisection fat tree — leaf switches expose 16 host ports but only 8
    uplinks (the famous 2:1 taper), a second spine stage above."""
    _check_scale(scale)
    hosts = _scaled(4400, scale, 8)
    leaves_n = max(2, math.ceil(hosts / 16))
    spines_n = 8
    b = FabricBuilder()
    spines = [b.add_switch(name=f"spine{i}") for i in range(spines_n)]
    leaves = [b.add_switch(name=f"leaf{i}", radix=24) for i in range(leaves_n)]
    for leaf in leaves:
        for spine in spines:
            b.add_link(leaf, spine)
    idx = 0
    for leaf in leaves:
        for _ in range(min(16, hosts - idx)):
            t = b.add_terminal(name=f"hca{idx}")
            b.add_link(t, leaf)
            idx += 1
    b.metadata = {
        "family": "cluster",
        "system": "thunderbird",
        "scale": scale,
        "hosts": idx,
        "taper": "2:1",
    }
    return b.build()


def jaguar(scale: float = 1.0) -> Fabric:
    """Jaguar XT5 (ORNL, mentioned in §I): a 3D torus.

    The real machine is a 25x32x24 torus of SeaStar routers with ~19k
    endpoints; we scale the torus dimensions by the cube root of
    ``scale`` so the shape (and DOR-routability) is preserved.
    """
    _check_scale(scale)
    factor = scale ** (1.0 / 3.0)
    dims = tuple(max(3, int(round(d * factor))) for d in (25, 32, 24))
    from repro.network.topologies.torus import torus

    fabric = torus(dims, terminals_per_switch=1)
    fabric.metadata.update(
        {"system": "jaguar", "scale": scale, "hosts": fabric.num_terminals}
    )
    return fabric


CLUSTERS = {
    "odin": odin,
    "deimos": deimos,
    "chic": chic,
    "juropa": juropa,
    "ranger": ranger,
    "tsubame": tsubame,
    "thunderbird": thunderbird,
    "jaguar": jaguar,
}


def cluster(name: str, scale: float = 1.0) -> Fabric:
    """Build the named cluster lookalike (see :data:`CLUSTERS`)."""
    try:
        factory = CLUSTERS[name.lower()]
    except KeyError:
        raise FabricError(
            f"unknown cluster {name!r}; available: {sorted(CLUSTERS)}"
        ) from None
    return factory(scale=scale)
