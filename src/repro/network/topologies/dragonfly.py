"""Dragonfly topology — an extension beyond the paper's evaluation.

Dragonflies (Kim et al., ISCA 2008) are the canonical post-2011
low-diameter topology; they are *not* in the paper but are an obvious
"future work" target for DFSSSP: minimal routing on a dragonfly has
cyclic channel dependencies (local→global→local turns), so the paper's
layer assignment applies directly. We include the canonical balanced
configuration ``dragonfly(a, p, h)``:

* groups of ``a`` switches, fully connected inside a group,
* ``p`` terminals per switch,
* ``h`` global links per switch,
* ``g = a*h + 1`` groups, exactly one global cable between each group
  pair (the balanced maximum).
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def dragonfly(a: int, p: int, h: int) -> Fabric:
    """Balanced dragonfly with ``g = a*h + 1`` groups.

    The canonical recommendation is ``a = 2p = 2h``; we do not enforce it
    but reject configurations that cannot place one cable per group pair.
    """
    if a < 1 or p < 0 or h < 1:
        raise FabricError(f"invalid dragonfly parameters a={a}, p={p}, h={h}")
    g = a * h + 1
    num_switches = g * a
    if num_switches > 100_000:
        raise FabricError(f"dragonfly would create {num_switches} switches; refusing")
    b = FabricBuilder()
    groups: list[list[int]] = []
    for gi in range(g):
        members = [b.add_switch(name=f"sw_g{gi}_{ai}") for ai in range(a)]
        groups.append(members)
        for i in range(a):
            for j in range(i + 1, a):
                b.add_link(members[i], members[j])
    # Global links: group pair (g1, g2) with g1 < g2 uses consecutive global
    # port slots; slot s of group gi lives on switch s // h, port s % h.
    slot_next = [0] * g
    for g1 in range(g):
        for g2 in range(g1 + 1, g):
            s1, s2 = slot_next[g1], slot_next[g2]
            slot_next[g1] += 1
            slot_next[g2] += 1
            b.add_link(groups[g1][s1 // h], groups[g2][s2 // h])
    assert all(s == a * h for s in slot_next)
    for gi in range(g):
        for ai in range(a):
            for pi in range(p):
                t = b.add_terminal(name=f"hca_g{gi}_{ai}_{pi}")
                b.add_link(t, groups[gi][ai])
    b.metadata = {
        "family": "dragonfly",
        "a": a,
        "p": p,
        "h": h,
        "groups": g,
        "num_switches": num_switches,
        "num_terminals": g * a * p,
    }
    return b.build()
