"""Organically grown clusters — the paper's §I motivation as a generator.

"It is also common that supercomputers are extended later and topologies
grow with the machines. The properties of specialized routing algorithms
do not hold on such irregular network topologies."

This generator makes that concrete: it starts from a clean two-level fat
tree and then applies *growth phases*, each attaching a batch of new leaf
switches wherever spine ports remain — fewer uplinks than the original
leaves, possibly daisy-chained off other leaves once the spines fill up.
The result is exactly the irregular-but-realistic fabric the paper
targets: the fat-tree engine rejects it, Up*/Down* concentrates around
the old core, and DFSSSP keeps balancing.
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric
from repro.utils.prng import make_rng


def grown_cluster(
    base_leaves: int = 6,
    spines: int = 3,
    hosts_per_leaf: int = 6,
    growth_phases: int = 2,
    leaves_per_phase: int = 3,
    radix: int = 24,
    seed=None,
) -> Fabric:
    """A fat tree after ``growth_phases`` rounds of organic extension.

    Phase 0 is a clean 2-level tree: ``base_leaves`` leaf switches, each
    with ``hosts_per_leaf`` hosts and one uplink per spine. Every later
    phase adds ``leaves_per_phase`` new leaves; each new leaf gets only
    *two* uplinks, attached to whatever switches still have free ports —
    spines first, then existing leaves (daisy chaining). Set
    ``growth_phases=0`` for the pristine machine.
    """
    if base_leaves < 2 or spines < 1:
        raise FabricError("need at least 2 base leaves and 1 spine")
    if hosts_per_leaf < 1:
        raise FabricError("hosts_per_leaf must be >= 1")
    if hosts_per_leaf + spines > radix:
        raise FabricError(
            f"radix {radix} too small for {hosts_per_leaf} hosts + {spines} uplinks"
        )
    rng = make_rng(seed)
    b = FabricBuilder()
    spine_ids = [b.add_switch(name=f"spine{i}", radix=radix) for i in range(spines)]
    leaf_ids = [b.add_switch(name=f"leaf{i}", radix=radix) for i in range(base_leaves)]
    host = 0
    for leaf in leaf_ids:
        for spine in spine_ids:
            b.add_link(leaf, spine)
        for _ in range(hosts_per_leaf):
            t = b.add_terminal(name=f"hca{host}")
            b.add_link(t, leaf)
            host += 1

    attach_pool = list(spine_ids) + list(leaf_ids)
    for phase in range(1, growth_phases + 1):
        for j in range(leaves_per_phase):
            leaf = b.add_switch(name=f"ext{phase}_{j}", radix=radix)
            uplinks = 0
            candidates = [s for s in attach_pool if (b.ports_free(s) or 0) > 0]
            rng.shuffle(candidates)
            for target in candidates:
                if uplinks == 2:
                    break
                free = b.ports_free(leaf)
                if free is not None and free <= hosts_per_leaf:
                    break
                b.add_link(leaf, target)
                uplinks += 1
            if uplinks == 0:
                raise FabricError(
                    f"growth phase {phase}: no free ports anywhere to attach a new leaf"
                )
            for _ in range(hosts_per_leaf):
                t = b.add_terminal(name=f"hca{host}")
                b.add_link(t, leaf)
                host += 1
            attach_pool.append(leaf)

    b.metadata = {
        "family": "grown",
        "base_leaves": base_leaves,
        "spines": spines,
        "hosts_per_leaf": hosts_per_leaf,
        "growth_phases": growth_phases,
        "hosts": host,
    }
    return b.build()
