"""Binary hypercube generator.

A dimension-``n`` hypercube has ``2**n`` switches; switch ids differ by
one bit per cable. Coordinates are the bit vector, so dimension-ordered
routing (e-cube) applies and — unlike on tori — is already deadlock-free
without virtual channels, which makes the hypercube a useful control case
in the virtual-lane-count experiments.
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def hypercube(dimension: int, terminals_per_switch: int = 1) -> Fabric:
    """Binary ``dimension``-cube with endpoints on every switch."""
    if dimension < 1:
        raise FabricError(f"hypercube dimension must be >= 1, got {dimension}")
    if dimension > 16:
        raise FabricError(f"hypercube dimension {dimension} is unreasonably large")
    b = FabricBuilder()
    n = 1 << dimension
    switches = b.add_switches(n)
    for v in range(n):
        b.set_coordinates(switches[v], tuple((v >> k) & 1 for k in range(dimension)))
        for k in range(dimension):
            w = v ^ (1 << k)
            if w > v:
                b.add_link(switches[v], switches[w])
    for v in range(n):
        for j in range(terminals_per_switch):
            t = b.add_terminal(name=f"hca{v}_{j}")
            b.add_link(t, switches[v])
    b.metadata = {
        "family": "hypercube",
        "dimension": dimension,
        "terminals_per_switch": terminals_per_switch,
    }
    return b.build()
