"""Kautz-graph topologies (Figure 6, Table I).

The Kautz graph ``K(b, n)`` has ``(b+1) * b**(n-1)`` vertices — the words
of length ``n`` over an alphabet of ``b+1`` symbols in which adjacent
letters differ — and a directed edge ``u -> v`` whenever ``v`` is ``u``
shifted left by one with any admissible new last letter. It achieves the
smallest possible diameter (``n``) for its degree, which is why it was
used for HPC interconnects (e.g. SiCortex).

Our fabric model uses full-duplex cables, so we take the *underlying
undirected* Kautz graph: one cable per unordered switch pair that is
adjacent in either direction. Endpoints are distributed round-robin over
the switches, as in the paper ("endpoints are connected to them").
"""

from __future__ import annotations

from itertools import product

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def kautz_words(b: int, n: int) -> list[tuple[int, ...]]:
    """All Kautz words: length-``n`` strings over ``b+1`` symbols with no
    two equal adjacent symbols."""
    words = []
    for w in product(range(b + 1), repeat=n):
        if all(w[i] != w[i + 1] for i in range(n - 1)):
            words.append(w)
    return words


def kautz_num_switches(b: int, n: int) -> int:
    return (b + 1) * b ** (n - 1)


def kautz(b: int, n: int, num_terminals: int) -> Fabric:
    """Build a Kautz(b, n) switch fabric with ``num_terminals`` endpoints.

    Endpoints are attached round-robin (switch ``i`` gets terminal ``j``
    with ``j % num_switches == i``), so the per-switch endpoint counts
    differ by at most one.
    """
    if b < 2:
        raise FabricError(f"Kautz graph needs b >= 2, got b={b}")
    if n < 2:
        raise FabricError(f"Kautz graph needs n >= 2, got n={n}")
    if num_terminals < 0:
        raise FabricError("num_terminals must be >= 0")
    words = kautz_words(b, n)
    assert len(words) == kautz_num_switches(b, n)
    bld = FabricBuilder()
    ids = {w: bld.add_switch(name="sw" + "".join(map(str, w))) for w in words}

    cables: set[tuple[int, int]] = set()
    for w in words:
        u = ids[w]
        for x in range(b + 1):
            if x == w[-1]:
                continue
            v = ids[w[1:] + (x,)]
            if u == v:
                # K(b, 2) contains 2-cycles like (0,1)->(1,0)->(0,1) but a
                # word can never map to itself (adjacent letters differ).
                continue  # pragma: no cover - defensive
            key = (min(u, v), max(u, v))
            if key not in cables:
                cables.add(key)
                bld.add_link(u, v)

    switches = [ids[w] for w in words]
    for j in range(num_terminals):
        t = bld.add_terminal(name=f"hca{j}")
        bld.add_link(t, switches[j % len(switches)])
    bld.metadata = {
        "family": "kautz",
        "b": b,
        "n": n,
        "num_switches": len(words),
        "num_terminals": num_terminals,
    }
    return bld.build()
