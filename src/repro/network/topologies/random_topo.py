"""Random switch topologies (Figure 9 and the Section IV heuristic study).

The paper evaluates virtual-lane requirements on random fabrics: ``S``
switches of a given port radix, ``t`` endpoints per switch, and ``L``
random switch-to-switch cables. We guarantee connectivity by first
growing a uniform random attachment tree over the switches and then
adding the remaining ``L - (S-1)`` cables between uniformly drawn switch
pairs, rejecting pairs whose ports are exhausted.
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric
from repro.utils.prng import make_rng


def random_topology(
    num_switches: int,
    num_links: int,
    terminals_per_switch: int,
    radix: int | None = 32,
    seed=None,
    allow_parallel: bool = False,
) -> Fabric:
    """Connected random fabric.

    Parameters
    ----------
    num_switches:
        Number of switches ``S``.
    num_links:
        Total number of switch-to-switch cables; must be >= ``S - 1`` so a
        spanning tree exists.
    terminals_per_switch:
        Endpoints attached to every switch (16 in Figure 9).
    radix:
        Switch port count (32 in Figure 9); ``None`` disables the check.
    allow_parallel:
        Whether to permit parallel cables between a switch pair (trunks).
    """
    if num_switches < 2:
        raise FabricError(f"need >= 2 switches, got {num_switches}")
    if num_links < num_switches - 1:
        raise FabricError(
            f"{num_links} links cannot connect {num_switches} switches "
            f"(need >= {num_switches - 1})"
        )
    if radix is not None and terminals_per_switch >= radix:
        raise FabricError(
            f"radix {radix} leaves no switch ports after {terminals_per_switch} terminals"
        )
    rng = make_rng(seed)
    b = FabricBuilder()
    switches = b.add_switches(num_switches, radix=radix)
    # Terminals first so their ports are always reserved.
    for i, s in enumerate(switches):
        for j in range(terminals_per_switch):
            t = b.add_terminal(name=f"hca{i}_{j}")
            b.add_link(t, s)

    existing: set[tuple[int, int]] = set()

    def free(s: int) -> bool:
        left = b.ports_free(s)
        return left is None or left > 0

    # Random attachment tree: connect switch i to a uniformly random
    # earlier switch with a free port.
    order = rng.permutation(num_switches)
    for idx in range(1, num_switches):
        s = switches[order[idx]]
        candidates = [switches[order[j]] for j in range(idx) if free(switches[order[j]])]
        if not candidates:
            raise FabricError(
                "radix too small to connect all switches into a spanning tree"
            )
        other = candidates[rng.integers(len(candidates))]
        b.add_link(s, other)
        existing.add((min(s, other), max(s, other)))

    remaining = num_links - (num_switches - 1)
    attempts = 0
    max_attempts = 200 * max(remaining, 1)
    while remaining > 0:
        attempts += 1
        if attempts > max_attempts:
            raise FabricError(
                f"could not place {remaining} more random links "
                f"(radix or parallel-link constraints too tight)"
            )
        i, j = rng.integers(num_switches), rng.integers(num_switches)
        if i == j:
            continue
        u, v = switches[int(i)], switches[int(j)]
        key = (min(u, v), max(u, v))
        if not allow_parallel and key in existing:
            continue
        if not (free(u) and free(v)):
            continue
        b.add_link(u, v)
        existing.add(key)
        remaining -= 1

    b.metadata = {
        "family": "random",
        "num_switches": num_switches,
        "num_links": num_links,
        "terminals_per_switch": terminals_per_switch,
        "radix": radix,
    }
    return b.build()
