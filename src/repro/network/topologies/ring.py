"""Ring and chordal-ring topologies.

The plain ring is the paper's Section III motivating example (Figure 2):
with SSSP routing and a clockwise 2-hop-shift traffic pattern, the buffer
dependency closes a cycle and the network deadlocks. Chordal rings add
skip links and are a classic irregular-ish topology for stress-testing
cycle breaking.
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def ring(num_switches: int, terminals_per_switch: int = 1) -> Fabric:
    """Unidirectional-cycle cabling (each cable is still full duplex).

    Parameters
    ----------
    num_switches:
        Ring length; must be >= 3 so the cycle exists.
    terminals_per_switch:
        Endpoints attached to every switch.
    """
    if num_switches < 3:
        raise FabricError(f"a ring needs >= 3 switches, got {num_switches}")
    if terminals_per_switch < 0:
        raise FabricError("terminals_per_switch must be >= 0")
    b = FabricBuilder()
    switches = b.add_switches(num_switches)
    for i, s in enumerate(switches):
        b.add_link(s, switches[(i + 1) % num_switches])
        b.set_coordinates(s, (i,))
    for i, s in enumerate(switches):
        for j in range(terminals_per_switch):
            t = b.add_terminal(name=f"hca{i}_{j}")
            b.add_link(t, s)
    b.metadata = {
        "family": "ring",
        "num_switches": num_switches,
        "terminals_per_switch": terminals_per_switch,
    }
    return b.build()


def chordal_ring(num_switches: int, chords: tuple[int, ...] = (2,), terminals_per_switch: int = 1) -> Fabric:
    """Ring plus skip links of the given strides.

    ``chords=(2,)`` gives every switch an extra cable to the node two
    positions ahead. Strides are taken modulo the ring length; a stride
    equal to 0 or 1 (mod n) is rejected because it would duplicate ring
    cables or create self-loops.
    """
    if num_switches < 4:
        raise FabricError(f"a chordal ring needs >= 4 switches, got {num_switches}")
    b = FabricBuilder()
    switches = b.add_switches(num_switches)
    for i, s in enumerate(switches):
        b.add_link(s, switches[(i + 1) % num_switches])
        b.set_coordinates(s, (i,))
    added = set()
    for stride in chords:
        stride = stride % num_switches
        if stride in (0, 1, num_switches - 1):
            raise FabricError(f"chord stride {stride} duplicates ring cables")
        for i in range(num_switches):
            j = (i + stride) % num_switches
            key = (min(i, j), max(i, j), stride if stride <= num_switches // 2 else num_switches - stride)
            if key in added:
                continue
            added.add(key)
            b.add_link(switches[i], switches[j])
    for i, s in enumerate(switches):
        for j in range(terminals_per_switch):
            t = b.add_terminal(name=f"hca{i}_{j}")
            b.add_link(t, s)
    b.metadata = {
        "family": "chordal_ring",
        "num_switches": num_switches,
        "chords": tuple(chords),
        "terminals_per_switch": terminals_per_switch,
    }
    return b.build()
