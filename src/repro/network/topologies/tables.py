"""Table I of the paper: generator parameters per nominal endpoint count.

The paper sweeps the artificial topologies over nominal sizes
{64, 128, 256, 512, 1024, 2048, 4096} built from 36-port switches. The
printed table is partially garbled in our source text (e.g. a "6-ary
2-tree" listed for 64 endpoints, which has 36 hosts), so we derive
parameter sets that (a) respect the 36-port radix and (b) hit the nominal
endpoint count exactly where the family allows it, otherwise as closely
as possible:

* **XGFT** — exact host counts for every nominal size.
* **Kautz** — the paper's ``(b, n)`` pairs verbatim (endpoint counts are
  free parameters there: endpoints are attached round-robin).
* **k-ary n-tree** — host count is forced to ``k**n``; we pick the legal
  ``(k ≤ 18, n)`` closest to the nominal size.

EXPERIMENTS.md records the actual endpoint counts used in every run.
"""

from __future__ import annotations

from repro.exceptions import FabricError
from repro.network.fabric import Fabric
from repro.network.topologies.kautz import kautz
from repro.network.topologies.trees import kary_ntree, xgft

NOMINAL_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)

#: nominal endpoints -> (h, ms, ws); all switch radices <= 36 and
#: w1 = 1 (hosts are single-homed, as in physical installations; w1 > 1
#: would disconnect the switch-only graph, which Up*/Down* and LASH
#: cannot route).
XGFT_PARAMS: dict[int, tuple[int, tuple[int, ...], tuple[int, ...]]] = {
    64: (2, (8, 8), (1, 4)),
    128: (2, (16, 8), (1, 8)),
    256: (2, (16, 16), (1, 8)),
    512: (3, (8, 8, 8), (1, 4, 4)),
    1024: (3, (8, 8, 16), (1, 4, 8)),
    2048: (3, (8, 16, 16), (1, 4, 8)),
    4096: (3, (16, 16, 16), (1, 8, 8)),
}

#: nominal endpoints -> (b, n), straight from the paper's Table I.
KAUTZ_PARAMS: dict[int, tuple[int, int]] = {
    64: (2, 2),
    128: (2, 2),
    256: (2, 3),
    512: (3, 3),
    1024: (3, 3),
    2048: (4, 3),
    4096: (6, 3),
}

#: nominal endpoints -> (k, n); hosts = k**n, closest legal fit.
KTREE_PARAMS: dict[int, tuple[int, int]] = {
    64: (8, 2),
    128: (11, 2),  # 121 hosts; no k<=18 power equals 128
    256: (16, 2),
    512: (8, 3),
    1024: (10, 3),  # 1000 hosts
    2048: (13, 3),  # 2197 hosts
    4096: (16, 3),
}


def build_xgft(nominal: int) -> Fabric:
    """XGFT instance for a nominal endpoint count (exact hosts)."""
    try:
        h, ms, ws = XGFT_PARAMS[nominal]
    except KeyError:
        raise FabricError(f"no XGFT parameters for nominal size {nominal}") from None
    return xgft(h, ms, ws)


def build_kautz(nominal: int) -> Fabric:
    """Kautz instance for a nominal endpoint count (exact endpoints)."""
    try:
        b, n = KAUTZ_PARAMS[nominal]
    except KeyError:
        raise FabricError(f"no Kautz parameters for nominal size {nominal}") from None
    return kautz(b, n, num_terminals=nominal)


def build_ktree(nominal: int) -> Fabric:
    """k-ary n-tree instance closest to a nominal endpoint count."""
    try:
        k, n = KTREE_PARAMS[nominal]
    except KeyError:
        raise FabricError(f"no k-ary n-tree parameters for nominal size {nominal}") from None
    return kary_ntree(k, n)


FAMILIES = {
    "xgft": build_xgft,
    "kautz": build_kautz,
    "ktree": build_ktree,
}


def build_table1(family: str, nominal: int) -> Fabric:
    """Build the Table-I instance of ``family`` at ``nominal`` size."""
    try:
        factory = FAMILIES[family]
    except KeyError:
        raise FabricError(f"unknown family {family!r}; available: {sorted(FAMILIES)}") from None
    return factory(nominal)
