"""k-ary n-cube torus and mesh generators.

These are the classic structured topologies for which specialised
deadlock-free routings exist (Dally/Seitz dimension-ordered routing with
virtual channels). Switch coordinates are recorded on the fabric so
:mod:`repro.routing.dor` can run; DFSSSP of course needs no coordinates.
"""

from __future__ import annotations

from itertools import product

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def _grid(dims: tuple[int, ...], wrap: bool, terminals_per_switch: int, family: str) -> Fabric:
    if not dims:
        raise FabricError("torus/mesh needs at least one dimension")
    if any(d < 2 for d in dims):
        raise FabricError(f"all dimensions must be >= 2, got {dims}")
    b = FabricBuilder()
    coords = list(product(*(range(d) for d in dims)))
    index = {c: b.add_switch(name="sw" + "_".join(map(str, c))) for c in coords}
    for c, s in index.items():
        b.set_coordinates(s, c)
    for c in coords:
        for axis, size in enumerate(dims):
            # Connect to the +1 neighbor along each axis exactly once.
            if c[axis] + 1 < size:
                nxt = list(c)
                nxt[axis] += 1
                b.add_link(index[c], index[tuple(nxt)])
            elif wrap and size > 2:
                nxt = list(c)
                nxt[axis] = 0
                b.add_link(index[c], index[tuple(nxt)])
            # size == 2 with wrap would duplicate the single cable.
    for c in coords:
        for j in range(terminals_per_switch):
            t = b.add_terminal(name="hca" + "_".join(map(str, c)) + f"_{j}")
            b.add_link(t, index[c])
    b.metadata = {
        "family": family,
        "dims": tuple(dims),
        "terminals_per_switch": terminals_per_switch,
        "wraparound": wrap,
    }
    return b.build()


def torus(dims: tuple[int, ...], terminals_per_switch: int = 1) -> Fabric:
    """k-ary n-cube with wraparound links.

    ``dims=(4, 4, 4)`` is a 4-ary 3-cube (64 switches). Dimensions of
    size 2 get a single cable (wrap would duplicate it), matching physical
    installations.
    """
    return _grid(tuple(dims), wrap=True, terminals_per_switch=terminals_per_switch, family="torus")


def mesh(dims: tuple[int, ...], terminals_per_switch: int = 1) -> Fabric:
    """Mesh (torus without wraparound links)."""
    return _grid(tuple(dims), wrap=False, terminals_per_switch=terminals_per_switch, family="mesh")
