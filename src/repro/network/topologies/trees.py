"""Fat-tree-family generators: k-ary n-trees and extended generalized fat
trees (XGFT).

Both families appear in the paper's artificial-topology evaluation
(Figures 5 and 7, Table I). The generators record each switch's tree
level in ``fabric.metadata["switch_levels"]``; the fat-tree routing engine
and the Up*/Down* ranking use it, while DFSSSP ignores it.

Definitions
-----------
* **k-ary n-tree** (Petrini/Vanneschi): ``k**n`` hosts, ``n`` switch
  levels of ``k**(n-1)`` switches each. A switch is addressed
  ``(level l, word w)`` with ``w ∈ {0..k-1}**(n-1)``; switches
  ``(l, w)`` and ``(l+1, w')`` are cabled iff ``w`` and ``w'`` agree on
  every position except possibly position ``l``.
* **XGFT(h; m1..mh; w1..wh)** (Öhring et al.): ``h+1`` levels, level 0
  are the ``∏ mi`` hosts. A level-``i`` node is addressed
  ``(x_{i+1..h}, y_{1..i})``; it has ``m_i`` children (choices of
  ``x_i``) and ``w_{i+1}`` parents (choices of ``y_{i+1}``).
"""

from __future__ import annotations

from itertools import product

from repro.exceptions import FabricError
from repro.network.builder import FabricBuilder
from repro.network.fabric import Fabric


def kary_ntree(k: int, n: int) -> Fabric:
    """Build a k-ary n-tree with ``k**n`` hosts.

    Root switches use only their ``k`` down ports (half radix), matching
    physical installations built from ``2k``-port switches.
    """
    if k < 2:
        raise FabricError(f"k-ary n-tree needs k >= 2, got k={k}")
    if n < 1:
        raise FabricError(f"k-ary n-tree needs n >= 1, got n={n}")
    if k**n > 200_000:
        raise FabricError(f"k={k}, n={n} would create {k**n} hosts; refusing")
    b = FabricBuilder()
    words = list(product(range(k), repeat=n - 1))
    # switch_ids[(level, word)] ; level 1 (leaf) .. n (root)
    switch_ids: dict[tuple[int, tuple[int, ...]], int] = {}
    levels: dict[int, int] = {}
    for level in range(1, n + 1):
        for w in words:
            sid = b.add_switch(name=f"sw_l{level}_" + "".join(map(str, w)))
            switch_ids[(level, w)] = sid
            levels[sid] = level
    # Inter-switch cables: (l, w) -- (l+1, w') iff words agree off position l-1.
    # With our level convention (leaf=1), the varying position for the
    # boundary between levels l and l+1 is index l-1 of the word.
    for level in range(1, n):
        pos = level - 1
        for w in words:
            for digit in range(k):
                w_up = list(w)
                w_up[pos] = digit
                b.add_link(switch_ids[(level, w)], switch_ids[(level + 1, tuple(w_up))])
    # Hosts: host digits (d0, d1, .., d_{n-1}); attached to leaf switch with
    # word (d1..d_{n-1}); d0 selects the port.
    for digits in product(range(k), repeat=n):
        t = b.add_terminal(name="hca" + "".join(map(str, digits)))
        leaf = switch_ids[(1, tuple(digits[1:]))]
        b.add_link(t, leaf)
    b.metadata = {
        "family": "kary_ntree",
        "k": k,
        "n": n,
        "num_hosts": k**n,
        "switch_levels": levels,
    }
    return b.build()


def xgft(h: int, ms: tuple[int, ...], ws: tuple[int, ...]) -> Fabric:
    """Build XGFT(h; ms; ws).

    Parameters
    ----------
    h:
        Number of switch levels (level 0 are the hosts).
    ms:
        ``(m1..mh)`` children counts per level.
    ws:
        ``(w1..wh)`` parent counts per level.
    """
    ms = tuple(int(m) for m in ms)
    ws = tuple(int(w) for w in ws)
    if h < 1:
        raise FabricError(f"XGFT needs h >= 1, got h={h}")
    if len(ms) != h or len(ws) != h:
        raise FabricError(
            f"XGFT(h={h}) needs exactly h children/parent counts, got {len(ms)}/{len(ws)}"
        )
    if any(m < 1 for m in ms) or any(w < 1 for w in ws):
        raise FabricError("XGFT m_i and w_i must all be >= 1")
    num_hosts = 1
    for m in ms:
        num_hosts *= m
    if num_hosts > 200_000:
        raise FabricError(f"XGFT would create {num_hosts} hosts; refusing")

    b = FabricBuilder()
    levels: dict[int, int] = {}

    def addresses(level: int):
        """All addresses (x_{level+1..h}, y_{1..level}) of one level."""
        xs = [range(ms[j]) for j in range(level, h)]  # x_{level+1} .. x_h
        ys = [range(ws[j]) for j in range(level)]  # y_1 .. y_level
        return product(product(*xs), product(*ys))

    ids: dict[tuple[int, tuple, tuple], int] = {}
    for level in range(h + 1):
        for x, y in addresses(level):
            if level == 0:
                nid = b.add_terminal(name="hca" + "".join(map(str, x)))
            else:
                nid = b.add_switch(
                    name=f"sw_l{level}_x" + "".join(map(str, x)) + "_y" + "".join(map(str, y))
                )
                levels[nid] = level
            ids[(level, x, y)] = nid

    # Cables between level i-1 and level i: child (x_i, x_{i+1..h}, y_{1..i-1})
    # connects to parent (x_{i+1..h}, y_{1..i-1}, y_i) for every y_i.
    for level in range(1, h + 1):
        for x, y in addresses(level - 1):
            # x = (x_level, x_{level+1}, ..., x_h) at child level level-1
            x_rest = x[1:]  # parent's x coordinates
            for y_new in range(ws[level - 1]):
                parent = ids[(level, x_rest, y + (y_new,))]
                b.add_link(ids[(level - 1, x, y)], parent)

    b.metadata = {
        "family": "xgft",
        "h": h,
        "ms": ms,
        "ws": ws,
        "num_hosts": num_hosts,
        "switch_levels": levels,
    }
    return b.build()
