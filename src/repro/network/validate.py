"""Fabric sanity checks shared by generators, loaders and routing engines.

Destination-based routing requires the fabric to be connected (every
terminal reachable from every node). The checks here are cheap —
one BFS over the undirected cable graph — and are run by every routing
engine before it starts, so misconfigured topologies fail with a clear
message instead of producing partial forwarding tables.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import DisconnectedFabricError, FabricError
from repro.network.fabric import Fabric


def check_connected(fabric: Fabric) -> None:
    """Raise :class:`DisconnectedFabricError` unless the fabric is connected.

    Because every cable is bidirectional, weak connectivity of the channel
    graph equals strong connectivity; a single BFS suffices.
    """
    if fabric.num_nodes == 0:
        raise FabricError("fabric has no nodes")
    if fabric.num_nodes == 1:
        return
    seen = np.zeros(fabric.num_nodes, dtype=bool)
    queue: deque[int] = deque([0])
    seen[0] = True
    found = 1
    while queue:
        v = queue.popleft()
        for c in fabric.out_channels(v):
            w = int(fabric.channels.dst[c])
            if not seen[w]:
                seen[w] = True
                found += 1
                queue.append(w)
    if found != fabric.num_nodes:
        missing = np.flatnonzero(~seen)[:5].tolist()
        raise DisconnectedFabricError(
            f"fabric is disconnected: {fabric.num_nodes - found} unreachable nodes "
            f"(e.g. {missing})"
        )


def check_terminals_attached(fabric: Fabric) -> None:
    """Every terminal must have at least one cable (to a switch)."""
    for t in fabric.terminals:
        if fabric.degree(int(t)) == 0:
            raise FabricError(f"terminal {int(t)} ({fabric.names[int(t)]}) has no cables")


def check_routable(fabric: Fabric) -> None:
    """Combined precondition used by routing engines."""
    if fabric.num_terminals < 2:
        raise FabricError(
            f"fabric has {fabric.num_terminals} terminals; routing needs at least 2"
        )
    check_terminals_attached(fabric)
    check_connected(fabric)


def switch_degree_histogram(fabric: Fabric) -> dict[int, int]:
    """Histogram {degree: count} over switches (analysis helper)."""
    hist: dict[int, int] = {}
    for s in fabric.switches:
        d = fabric.degree(int(s))
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
