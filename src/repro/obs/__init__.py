"""Observability: metrics, tracing and profiling hooks.

One coherent layer across the routing/deadlock/simulator stack:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram in a named
  registry, exported as Prometheus text or JSON;
* :mod:`repro.obs.tracing` — nestable ``span()`` phases with pluggable
  sinks (null by default, JSONL for ``--trace``, in-memory for tests);
* :mod:`repro.obs.profiling` — raw per-event hooks
  (``on_iteration`` / ``on_cycle_broken`` / ``on_layer_closed``).

See ``docs/observability.md`` for the metric names and span taxonomy.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profiling import ProfilingHooks, get_hooks
from repro.obs.tracing import (
    InMemorySink,
    JsonlSink,
    NullSink,
    Span,
    current_span,
    get_sink,
    set_sink,
    span,
    use_sink,
)

__all__ = [
    "COUNT_BUCKETS",
    "DURATION_BUCKETS",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "ProfilingHooks",
    "get_hooks",
    "InMemorySink",
    "JsonlSink",
    "NullSink",
    "Span",
    "current_span",
    "get_sink",
    "set_sink",
    "span",
    "use_sink",
]
