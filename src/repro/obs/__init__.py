"""Observability: metrics, tracing and profiling hooks.

One coherent layer across the routing/deadlock/simulator stack:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram in a named
  registry, exported as Prometheus text or JSON;
* :mod:`repro.obs.tracing` — nestable ``span()`` phases with pluggable
  sinks (null by default, JSONL for ``--trace``, in-memory for tests);
* :mod:`repro.obs.profiling` — raw per-event hooks
  (``on_iteration`` / ``on_cycle_broken`` / ``on_layer_closed``);
* :mod:`repro.obs.telemetry` — request-scoped correlation
  (``request_scope``) and span propagation across process pools;
* :mod:`repro.obs.recorder` — the flight recorder (bounded ring of
  structured events, atomic post-mortem dumps);
* :mod:`repro.obs.slo` — declarative SLOs judged from recorded metrics
  (``health`` CLI, soak health reports, sliding-window ``SLOEngine``);
* :mod:`repro.obs.export` — trace-tree rendering and the ``serve --top``
  live view.

See ``docs/observability.md`` for the metric names, span taxonomy and
flight-recorder event catalogue.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from_buckets,
    quantile_from_entry,
    set_registry,
)
from repro.obs.profiling import ProfilingHooks, get_hooks
from repro.obs.recorder import (
    FlightRecorder,
    get_recorder,
    install_signal_dump,
    record_event,
    set_recorder,
    use_recorder,
)
from repro.obs.slo import (
    DEFAULT_CHAOS_SLOS,
    DEFAULT_FLEET_SLOS,
    DEFAULT_SERVICE_SLOS,
    SLO,
    HealthReport,
    SLOEngine,
    evaluate_slos,
)
from repro.obs.telemetry import (
    capture_spans,
    export_context,
    new_request_id,
    replay_spans,
    request_scope,
)
from repro.obs.tracing import (
    InMemorySink,
    JsonlSink,
    NullSink,
    Span,
    current_request_id,
    current_span,
    get_sink,
    set_sink,
    span,
    use_sink,
)

__all__ = [
    "COUNT_BUCKETS",
    "DURATION_BUCKETS",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "quantile_from_buckets",
    "quantile_from_entry",
    "ProfilingHooks",
    "get_hooks",
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "record_event",
    "install_signal_dump",
    "SLO",
    "SLOEngine",
    "HealthReport",
    "DEFAULT_SERVICE_SLOS",
    "DEFAULT_CHAOS_SLOS",
    "DEFAULT_FLEET_SLOS",
    "evaluate_slos",
    "new_request_id",
    "request_scope",
    "current_request_id",
    "export_context",
    "capture_spans",
    "replay_spans",
    "InMemorySink",
    "JsonlSink",
    "NullSink",
    "Span",
    "current_span",
    "get_sink",
    "set_sink",
    "span",
    "use_sink",
]
