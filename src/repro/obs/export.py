"""Trace/telemetry analysis: JSONL trace trees and the live `top` view.

Pure render-to-string functions over recorded telemetry, shared by the
CLI (``stats --trace-tree``, ``serve --top``) and tests:

* :func:`read_trace` / :func:`build_trace_tree` /
  :func:`render_trace_tree` — parse a ``--trace`` JSONL file, rebuild
  the span forest (optionally restricted to one ``request_id``; every
  span inside a :func:`~repro.obs.telemetry.request_scope` carries that
  attribute, including replayed worker spans), and draw it with
  box-drawing indentation. Ordering and durations come from the
  monotonic ``perf``/``duration_s`` fields — never wall-clock ``ts``
  (see :mod:`repro.obs.tracing`).
* :func:`render_top` — one screenful of service health: supervisor
  state, SLO table from the latest :class:`~repro.obs.slo.HealthReport`,
  and the flight recorder's newest events. The serve CLI clears the
  terminal and reprints it after every batch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: spans with a start but no stop record (crash, still open at dump time)
OPEN = "open"


def read_trace(path) -> list[dict]:
    """Parse a ``--trace`` JSONL file (blank lines skipped)."""
    records = []
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


@dataclass
class TraceNode:
    """One span in a rebuilt trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    ts: float
    perf: float
    duration_s: float | None
    status: str
    attrs: dict
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def request_id(self) -> str | None:
        return self.attrs.get("request_id")


def build_trace_tree(records: list[dict], request_id: str | None = None) -> list[TraceNode]:
    """Rebuild the span forest from trace records, roots in perf order.

    Stop records are authoritative (final attrs, re-anchored clocks);
    spans that only ever started — the process died first — appear with
    ``status="open"`` and no duration. With ``request_id`` given, only
    spans stamped with that id are kept (the full causal tree of one
    request, workers included).
    """
    nodes: dict[int, TraceNode] = {}
    for rec in records:
        attrs = rec.get("attrs", {})
        if request_id is not None and attrs.get("request_id") != request_id:
            continue
        sid = rec["span"]
        node = nodes.get(sid)
        if node is None:
            node = TraceNode(
                span_id=sid, parent_id=rec.get("parent"), name=rec["name"],
                ts=rec.get("ts", 0.0), perf=rec.get("perf", 0.0),
                duration_s=None, status=OPEN, attrs=attrs,
            )
            nodes[sid] = node
        if rec.get("event") == "stop":
            node.ts = rec.get("ts", node.ts)
            node.perf = rec.get("perf", node.perf)
            node.duration_s = rec.get("duration_s")
            node.status = rec.get("status", "ok")
            node.attrs = attrs
    roots: list[TraceNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.perf, n.span_id))
    roots.sort(key=lambda n: (n.perf, n.span_id))
    return roots


def _node_label(node: TraceNode, show_attrs: tuple[str, ...]) -> str:
    dur = f"{node.duration_s * 1000:.2f}ms" if node.duration_s is not None else OPEN
    label = f"{node.name}  {dur}"
    if node.status not in ("ok", OPEN):
        label += f"  [{node.status}]"
    shown = {
        k: v for k, v in node.attrs.items()
        if (not show_attrs or k in show_attrs) and k != "request_id"
    }
    if shown:
        label += "  (" + ", ".join(f"{k}={v}" for k, v in sorted(shown.items())) + ")"
    return label


def render_trace_tree(
    roots: list[TraceNode], *, show_attrs: tuple[str, ...] = ()
) -> str:
    """Draw a span forest with box-drawing branches.

    ``show_attrs`` restricts which attributes print per span (default:
    all except the repetitive ``request_id``, which heads the output via
    the caller).
    """
    lines: list[str] = []

    def walk(node: TraceNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_node_label(node, show_attrs))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + _node_label(node, show_attrs))
            child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)


def trace_request_ids(records: list[dict]) -> list[str]:
    """Distinct request ids in a trace, in first-seen order."""
    seen: dict[str, None] = {}
    for rec in records:
        rid = rec.get("attrs", {}).get("request_id")
        if rid is not None and rid not in seen:
            seen[rid] = None
    return list(seen)


# ----------------------------------------------------------------------
# `top`-style live view
# ----------------------------------------------------------------------
def _fmt_value(v: float | None) -> str:
    if v is None:
        return "-"
    return f"{v:.4g}"


def render_top(
    *,
    served=None,
    report=None,
    recorder=None,
    batches: int = 0,
    events: int = 0,
    tail: int = 8,
) -> str:
    """One screenful of service health (pure string; caller clears screen).

    Parameters are all optional so the view degrades gracefully early in
    a run: ``served`` is a :class:`~repro.service.supervisor.ServedRouting`,
    ``report`` the latest :class:`~repro.obs.slo.HealthReport`,
    ``recorder`` a :class:`~repro.obs.recorder.FlightRecorder`.
    """
    lines = ["repro-route serve — live health", ""]
    if served is not None:
        stale = "stale" if served.stale else "fresh"
        lines.append(
            f"state={served.state}  version={served.version} ({stale})  "
            f"pending={served.pending_events}  batches={batches}  events={events}"
        )
        lines.append("")
    if report is not None:
        lines.append(
            f"SLOs: {len(report.evaluated)} evaluated, "
            f"{len(report.violations)} violated "
            f"(compliance {report.compliance_ratio:.0%})"
        )
        header = f"  {'SLO':<24} {'value':>10} {'target':>10} {'burn':>7}  verdict"
        lines.append(header)
        for r in report.results:
            verdict = "SKIP" if r.compliant is None else ("ok" if r.compliant else "VIOLATED")
            burn = f"{r.burn_rate:.2f}" if r.burn_rate is not None else "-"
            lines.append(
                f"  {r.name:<24} {_fmt_value(r.value):>10} "
                f"{_fmt_value(r.threshold):>10} {burn:>7}  {verdict}"
            )
        lines.append("")
    if recorder is not None and len(recorder):
        lines.append(f"flight recorder (last {min(tail, len(recorder))} of "
                     f"{recorder.recorded} events):")
        for event in recorder.last(tail):
            extras = {
                k: v for k, v in event.items()
                if k not in ("seq", "ts", "mono", "kind", "request_id")
            }
            detail = " ".join(f"{k}={v}" for k, v in extras.items())
            rid = event.get("request_id") or "-"
            lines.append(f"  #{event['seq']:<5} {event['kind']:<18} {rid:<16} {detail}")
    return "\n".join(lines) + "\n"
