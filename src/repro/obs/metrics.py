"""Process-local metrics primitives with a named registry.

The paper's quantitative internals — SSSP's per-destination weight
updates, DFSSSP's cycle/eviction counts, the simulators' flit flow — are
recorded as :class:`Counter`, :class:`Gauge` and :class:`Histogram`
instances in a :class:`MetricsRegistry`. The registry exports either
Prometheus text format (``render_prometheus``) or JSON
(``render_json``), which the CLI's ``--metrics`` flag and the
``repro-route stats`` subcommand consume.

Design notes
------------
* Metrics are identified by ``(name, labels)``; ``registry.counter(...)``
  is get-or-create, so instrumented code can simply ask for its metric
  on every run and keep incrementing the same instance.
* Everything is process-local and synchronous: increments are plain
  attribute updates (no I/O, no sampling), cheap enough for per-Dijkstra
  call sites. Registration takes a lock; updates do not (CPython
  container/attribute ops are sufficient for our single-writer use).
* A module-global default registry backs the engines; tests swap it with
  :func:`set_registry` or wipe it with ``registry.reset()``.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections.abc import Sequence

#: Default histogram buckets for wall-clock durations in seconds.
DURATION_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)

#: Default histogram buckets for event/occupancy counts.
COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
    10000, 50000, 100000, float("inf"),
)

#: Default histogram buckets for fractions in [0, 1] (e.g. the share of
#: destinations an incremental repair had to recompute).
RATIO_BUCKETS: tuple[float, ...] = (
    0.0, 0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 0.9, 1.0, float("inf"),
)

Labels = tuple[tuple[str, str], ...]


class Metric:
    """Base: a named value with optional key=value labels."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels")

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        self.name = name
        self.help = help
        self.labels = labels

    def _label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"

    def to_entry(self) -> dict:
        """JSON-export form (overridden by Histogram)."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,  # type: ignore[attr-defined]
        }


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self):
        return self._value


class Gauge(Metric):
    """A value that can go up and down (sizes, last-seen levels)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        super().__init__(name, help, labels)
        self._value = 0

    def set(self, value: int | float) -> None:
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self._value -= amount

    @property
    def value(self):
        return self._value


class Histogram(Metric):
    """Bucketed distribution with exact count/sum/min/max.

    ``buckets`` are upper bounds (``observe(v)`` lands in the first
    bucket with ``v <= le``); a trailing ``+Inf`` bucket is appended if
    missing, Prometheus-style.
    """

    kind = "histogram"
    __slots__ = ("buckets", "_bucket_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Labels = (),
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(name, help, labels)
        bs = tuple(buckets) if buckets is not None else DURATION_BUCKETS
        if list(bs) != sorted(bs):
            raise ValueError(f"histogram {name} buckets must be sorted: {bs}")
        if not bs or bs[-1] != float("inf"):
            bs = bs + (float("inf"),)
        self.buckets = bs
        self._bucket_counts = [0] * len(bs)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: int | float) -> None:
        self._bucket_counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(le, cumulative count) per bucket — the Prometheus layout."""
        out, acc = [], 0
        for le, n in zip(self.buckets, self._bucket_counts):
            acc += n
            out.append((le, acc))
        return out

    def quantile(self, q: float) -> float:
        """Quantile estimate with linear interpolation inside the bucket
        holding the q-th observation (Prometheus ``histogram_quantile``
        semantics), clamped to the exact observed min/max. ``q=0`` and
        ``q=1`` return the exact extremes."""
        return quantile_from_buckets(
            self.cumulative_buckets(), q,
            minimum=self.minimum if self._count else None,
            maximum=self.maximum if self._count else None,
        )

    def to_entry(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {_fmt_le(le): acc for le, acc in self.cumulative_buckets()},
        }


def _fmt_le(le: float) -> str:
    if le == float("inf"):
        return "+Inf"
    return f"{le:g}"


def _parse_le(text: str) -> float:
    return float("inf") if text == "+Inf" else float(text)


def quantile_from_buckets(
    cumulative: Sequence[tuple[float, int]],
    q: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Interpolated quantile from ``(le, cumulative count)`` pairs.

    Linear interpolation inside the bucket holding the q-th observation:
    the bucket's lower edge is the previous ``le`` (or ``minimum`` for
    the first occupied bucket, ``0.0`` when unknown), its upper edge the
    bucket's ``le`` (or ``maximum`` for the ``+Inf`` bucket, else the
    last finite edge). Results are clamped to ``[minimum, maximum]``
    when those are known, so small histograms never report a value
    outside what was actually observed. Works on live histograms
    (exact ``minimum``/``maximum`` tracked) and on exported/delta'd
    snapshots alike (pass what you have; ``None`` degrades gracefully).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    cumulative = list(cumulative)
    count = cumulative[-1][1] if cumulative else 0
    if count == 0:
        return 0.0
    if q == 0.0 and minimum is not None:
        return minimum
    if q == 1.0 and maximum is not None:
        return maximum
    target = q * count
    prev_le: float | None = None
    prev_acc = 0
    for le, acc in cumulative:
        if acc >= target:
            in_bucket = acc - prev_acc
            pos = (target - prev_acc) / in_bucket if in_bucket else 0.0
            if prev_le is None:
                lo = minimum if minimum is not None else min(0.0, le)
            else:
                lo = prev_le
            if le == float("inf"):
                hi = maximum if maximum is not None else (prev_le or 0.0)
            else:
                hi = le
            value = lo + pos * (hi - lo)
            if minimum is not None:
                value = max(value, minimum)
            if maximum is not None:
                value = min(value, maximum)
            return value
        prev_le, prev_acc = le, acc
    # Unreachable with a trailing +Inf bucket; be safe for foreign data.
    return maximum if maximum is not None else (prev_le or 0.0)  # pragma: no cover


def _entry_key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))


def _entry_delta(old: dict | None, new: dict) -> dict:
    """``new - old`` for one exported metric entry (see snapshot_delta)."""
    if new["type"] == "gauge" or old is None or old.get("type") != new["type"]:
        return json.loads(json.dumps(new))  # deep copy, decouple from caller
    if new["type"] == "histogram":
        count = max(0, new["count"] - old["count"])
        total = max(0.0, new["sum"] - old["sum"])
        old_buckets = old.get("buckets", {})
        buckets = {
            le: max(0, acc - old_buckets.get(le, 0))
            for le, acc in new.get("buckets", {}).items()
        }
        return {
            "name": new["name"],
            "type": "histogram",
            "labels": dict(new.get("labels", {})),
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            # Whole-run extremes: valid outer bounds for the window, but
            # not tight — a window cannot re-observe the run's minimum.
            "min": new["min"] if count else 0.0,
            "max": new["max"] if count else 0.0,
            "buckets": buckets,
        }
    # counter (and any future monotone kind)
    out = dict(new)
    out["labels"] = dict(new.get("labels", {}))
    out["value"] = max(0, new["value"] - old["value"])
    return out


def quantile_from_entry(entry: dict, q: float) -> float:
    """Interpolated quantile from an exported histogram entry (a dict in
    the ``--metrics`` dump / :meth:`MetricsRegistry.snapshot` shape)."""
    if entry.get("type") != "histogram":
        raise ValueError(f"{entry.get('name')!r} is not a histogram entry")
    cumulative = sorted(
        ((_parse_le(le), acc) for le, acc in entry.get("buckets", {}).items()),
        key=lambda p: p[0],
    )
    count = entry.get("count", 0)
    return quantile_from_buckets(
        cumulative, q,
        minimum=entry.get("min") if count else None,
        maximum=entry.get("max") if count else None,
    )


class MetricsRegistry:
    """Named collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        self._lock = threading.Lock()

    # -- creation ------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels: dict, **kwargs) -> Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = cls(name, help, key[1], **kwargs)
                self._metrics[key] = m
            elif type(m) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {m.kind}, not {cls.kind}"
                )
            return m

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- access --------------------------------------------------------
    def get(self, name: str, **labels) -> Metric | None:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._metrics.get(key)

    def value(self, name: str, default=None, **labels):
        """Counter/gauge value (or histogram count) by name, for tests
        and quick assertions; ``default`` when absent."""
        m = self.get(name, **labels)
        if m is None:
            return default
        if isinstance(m, Histogram):
            return m.count
        return m.value  # type: ignore[attr-defined]

    def metrics(self) -> list[Metric]:
        """All metrics, sorted by (name, labels) for stable output."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests; fresh CLI runs share one process)."""
        with self._lock:
            self._metrics.clear()

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time copy of every metric, in the ``--metrics`` JSON
        dump shape (``{"metrics": [entry, ...]}``). Entries are plain
        dicts decoupled from the live objects, so two snapshots bracket
        an interval and :meth:`snapshot_delta` diffs them."""
        return self.to_json()

    @staticmethod
    def snapshot_delta(old: dict, new: dict) -> dict:
        """Difference of two :meth:`snapshot` dumps (``new - old``).

        Counters and histogram counts/sums/buckets subtract (clamped at
        zero, so a registry reset between snapshots degrades to ``new``
        rather than going negative); gauges keep ``new``'s value (they
        are levels, not totals); histogram ``min``/``max``/``mean`` are
        recomputed for the window where possible (``mean`` exactly,
        ``min``/``max`` approximated by ``new``'s whole-run extremes —
        still valid outer bounds for the window). Metrics absent from
        ``old`` are treated as starting at zero; metrics absent from
        ``new`` are dropped. This is the one place soaks and the SLO
        engine get windowed rates from cumulative metrics.
        """
        old_by_key = {_entry_key(e): e for e in old.get("metrics", [])}
        out = []
        for entry in new.get("metrics", []):
            prev = old_by_key.get(_entry_key(entry))
            out.append(_entry_delta(prev, entry))
        return {"metrics": out}

    # -- export --------------------------------------------------------
    def to_json(self) -> dict:
        return {"metrics": [m.to_entry() for m in self.metrics()]}

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one HELP/TYPE per name)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for m in self.metrics():
            if m.name not in seen_header:
                seen_header.add(m.name)
                if m.help:
                    lines.append(f"# HELP {m.name} {m.help}")
                lines.append(f"# TYPE {m.name} {m.kind}")
            ls = m._label_str()
            if isinstance(m, Histogram):
                base = dict(m.labels)
                for le, acc in m.cumulative_buckets():
                    bl = ",".join(
                        f'{k}="{v}"' for k, v in (*sorted(base.items()), ("le", _fmt_le(le)))
                    )
                    lines.append(f"{m.name}_bucket{{{bl}}} {acc}")
                lines.append(f"{m.name}_sum{ls} {m.sum:g}")
                lines.append(f"{m.name}_count{ls} {m.count}")
            else:
                lines.append(f"{m.name}{ls} {m.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the engines record into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old
