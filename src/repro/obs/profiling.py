"""Opt-in profiling hooks the engines call at key algorithmic points.

Where metrics aggregate and spans time, hooks expose the *raw events*
for callers who want every data point — e.g. plotting per-iteration
edge-weight evolution of Algorithm 1, or logging each cycle Algorithm 2
breaks. With no subscriber an emit is a single truthiness check, so the
engines can call these unconditionally.

Events
------
``iteration``     — one SSSP destination routed
                    (engine, iteration, dest, weight_updates, ...)
``cycle_broken``  — Algorithm 2 evicted one cycle edge
                    (layer, edge, paths_moved, heuristic)
``layer_closed``  — a virtual layer became final/acyclic
                    (layer, paths, edges)

Subscribers receive a single dict; extra keys may appear over time, so
handlers should take ``event: dict`` and ignore what they don't know.
"""

from __future__ import annotations

from collections.abc import Callable

Handler = Callable[[dict], None]

EVENTS = ("iteration", "cycle_broken", "layer_closed")


class ProfilingHooks:
    """A set of subscriber lists, one per event type."""

    def __init__(self) -> None:
        self._subs: dict[str, list[Handler]] = {e: [] for e in EVENTS}

    # -- subscription --------------------------------------------------
    def subscribe(self, event: str, handler: Handler) -> Handler:
        if event not in self._subs:
            raise ValueError(f"unknown event {event!r}; known: {EVENTS}")
        self._subs[event].append(handler)
        return handler

    def unsubscribe(self, event: str, handler: Handler) -> None:
        self._subs[event].remove(handler)

    def on_iteration(self, handler: Handler) -> Handler:
        """Register for per-SSSP-destination events (decorator-friendly)."""
        return self.subscribe("iteration", handler)

    def on_cycle_broken(self, handler: Handler) -> Handler:
        return self.subscribe("cycle_broken", handler)

    def on_layer_closed(self, handler: Handler) -> Handler:
        return self.subscribe("layer_closed", handler)

    def clear(self) -> None:
        for subs in self._subs.values():
            subs.clear()

    def active(self, event: str) -> bool:
        """Whether anyone is listening (lets engines skip building
        expensive event payloads)."""
        return bool(self._subs[event])

    # -- emission (called by instrumented engines) ---------------------
    def _emit(self, event: str, data: dict) -> None:
        subs = self._subs[event]
        if not subs:
            return
        data["event"] = event
        for handler in subs:
            handler(data)

    def iteration(self, **data) -> None:
        self._emit("iteration", data)

    def cycle_broken(self, **data) -> None:
        self._emit("cycle_broken", data)

    def layer_closed(self, **data) -> None:
        self._emit("layer_closed", data)


_hooks = ProfilingHooks()


def get_hooks() -> ProfilingHooks:
    """The process-wide hook set the engines emit into."""
    return _hooks
