"""Flight recorder: a bounded ring buffer of structured events.

Metrics aggregate and spans time, but neither answers the post-mortem
question *"what were the last N things that happened before the
crash?"*. The :class:`FlightRecorder` keeps exactly that: a fixed-size
in-memory ring of small structured events — supervisor state
transitions, escalation-rung failures, budget exhaustions,
circuit-breaker trips, cache hits/misses, fault injections — each
stamped with both clocks and the ambient request id. Recording is a
deque append; nothing touches disk until :meth:`dump`.

Dumps are atomic (:func:`repro.utils.atomicio.atomic_write_text`), so a
dump racing a crash leaves either the previous dump or the new one,
never a torn file. The routing supervisor dumps alongside every
checkpoint and on batch failure; the serve CLI dumps on its simulated
SIGKILL and via :func:`install_signal_dump` on SIGTERM — the resulting
file's last events explain the kill.

A module-global default recorder backs :func:`record_event` so call
sites stay one-liners; tests swap it with :func:`set_recorder` /
:func:`use_recorder`.
"""

from __future__ import annotations

import json
import signal
import time
from collections import deque
from contextlib import contextmanager

from repro.obs.tracing import current_request_id
from repro.utils.atomicio import atomic_write_text

#: default ring capacity — small enough to dump in one write, large
#: enough to cover several repair batches of events
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Fixed-capacity ring of structured events (oldest evicted first).

    Each event is a dict: ``seq`` (monotone, never reused — gaps reveal
    evictions), ``ts`` (wall clock), ``mono`` (``perf_counter``),
    ``kind``, ``request_id`` (ambient, may be ``None``) plus the
    caller's fields. Values should be JSON-serialisable; anything else
    is stringified at dump time.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns it (mostly for tests)."""
        self._seq += 1
        event = {
            "seq": self._seq,
            "ts": time.time(),
            "mono": time.perf_counter(),
            "kind": kind,
            "request_id": current_request_id(),
            **fields,
        }
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len()``; difference = evicted)."""
        return self._seq

    @property
    def evicted(self) -> int:
        return self._seq - len(self._events)

    def snapshot(self) -> list[dict]:
        """The retained events, oldest first (copies — safe to mutate)."""
        return [dict(e) for e in self._events]

    def last(self, n: int) -> list[dict]:
        """The newest ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        events = list(self._events)
        return [dict(e) for e in events[-n:]]

    def clear(self) -> None:
        self._events.clear()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "evicted": self.evicted,
            "events": self.snapshot(),
        }

    def dump(self, path) -> dict:
        """Atomically write the ring as JSON; returns the dumped dict."""
        data = self.to_dict()
        atomic_write_text(path, json.dumps(data, indent=1, default=str) + "\n")
        return data


_default_recorder = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process-wide default flight recorder."""
    return _default_recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the default recorder; returns the previous one."""
    global _default_recorder
    old = _default_recorder
    _default_recorder = recorder
    return old


@contextmanager
def use_recorder(recorder: FlightRecorder):
    """Temporarily install ``recorder`` (tests)."""
    old = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(old)


def record_event(kind: str, **fields) -> dict:
    """Record one event into the default recorder."""
    return _default_recorder.record(kind, **fields)


# ----------------------------------------------------------------------
# signal integration
# ----------------------------------------------------------------------
def _make_dump_handler(path, previous):
    def _handler(signum, frame):
        recorder = get_recorder()
        recorder.record("signal", signum=int(signum),
                        name=signal.Signals(signum).name)
        try:
            recorder.dump(path)
        except OSError:  # pragma: no cover - dump target vanished
            pass
        if callable(previous):
            previous(signum, frame)
        else:
            # Default disposition for SIGTERM & friends is to terminate;
            # exit with the conventional 128+signum status.
            raise SystemExit(128 + int(signum))

    return _handler


def install_signal_dump(path, signals=(signal.SIGTERM,)) -> None:
    """Dump the default recorder to ``path`` when a signal arrives.

    After dumping, any previously installed Python handler is chained;
    otherwise the process exits with the conventional ``128 + signum``
    status. Only callable from the main thread (CPython restriction on
    ``signal.signal``).
    """
    for sig in signals:
        previous = signal.getsignal(sig)
        signal.signal(sig, _make_dump_handler(path, previous))
