"""Declarative SLOs evaluated from recorded metrics.

The paper's operational pitch — DFSSSP inside a subnet manager — only
holds if the service can be *judged* mechanically: is p99 reroute
latency under the deadline, are repairs succeeding, how stale is what we
serve? This module turns those questions into data:

* :class:`SLO` — one declarative objective. ``kind="quantile"`` bounds a
  histogram quantile (``metric``, ``q``, ``threshold``); ``kind="ratio"``
  bounds an error budget (``bad_metric / total_metric <= max_ratio``,
  counters summed across label sets).
* :func:`evaluate_slos` — evaluate a list of SLOs against a metrics dump
  in the ``--metrics`` / :meth:`MetricsRegistry.snapshot` JSON shape.
  Works offline (the ``health`` CLI reads a dump from disk) and online
  (the soaks evaluate the live registry).
* :class:`SLOEngine` — sliding-window evaluation for long-running
  services: each :meth:`~SLOEngine.tick` snapshots the registry, diffs
  against the oldest retained snapshot (:meth:`MetricsRegistry.snapshot_delta`),
  evaluates the SLOs over that window, publishes
  ``slo_compliance_ratio`` / ``slo_burn_rate{slo=...}`` gauges, and
  records an ``slo_violation`` flight-recorder event per newly violated
  objective.

An SLO with too little data is *skipped* (``compliant is None``), never
violated — a service that has not yet served a request is not failing
its latency target. ``burn_rate`` is how much of the objective is being
consumed: ``observed / threshold`` (1.0 = exactly at target, above =
burning); ``None`` when the threshold is zero and nothing sensible can
be reported.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.obs.metrics import get_registry, quantile_from_entry
from repro.utils.atomicio import atomic_write_text

QUANTILE = "quantile"
RATIO = "ratio"

KINDS = (QUANTILE, RATIO)


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective (JSON round-trippable)."""

    name: str
    kind: str
    description: str = ""
    #: quantile kind: histogram metric name, quantile, max allowed value
    metric: str | None = None
    q: float = 0.99
    threshold: float | None = None
    #: ratio kind: bad/total counter names, max allowed bad/total
    bad_metric: str | None = None
    total_metric: str | None = None
    max_ratio: float | None = None
    #: below this many samples the SLO is skipped, not judged
    min_samples: int = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"SLO kind must be one of {KINDS}, got {self.kind!r}")
        if self.kind == QUANTILE:
            if not self.metric or self.threshold is None:
                raise ValueError(f"quantile SLO {self.name!r} needs metric + threshold")
            if not 0.0 <= self.q <= 1.0:
                raise ValueError(f"SLO {self.name!r}: q must be in [0, 1], got {self.q}")
        else:
            if not self.bad_metric or not self.total_metric or self.max_ratio is None:
                raise ValueError(
                    f"ratio SLO {self.name!r} needs bad_metric + total_metric + max_ratio"
                )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SLO":
        return cls(**data)


@dataclass
class SLOResult:
    """One SLO judged against one metrics window."""

    name: str
    kind: str
    description: str
    objective: str
    value: float | None
    threshold: float
    samples: int
    compliant: bool | None  # None = skipped (insufficient data)
    burn_rate: float | None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class HealthReport:
    """All SLO results for one window, plus the overall verdict."""

    results: list[SLOResult] = field(default_factory=list)

    @property
    def evaluated(self) -> list[SLOResult]:
        return [r for r in self.results if r.compliant is not None]

    @property
    def violations(self) -> list[SLOResult]:
        return [r for r in self.results if r.compliant is False]

    @property
    def healthy(self) -> bool:
        """No evaluated SLO violated (skipped SLOs do not count)."""
        return not self.violations

    @property
    def compliance_ratio(self) -> float:
        """Fraction of *evaluated* SLOs met (1.0 when none evaluated)."""
        evaluated = self.evaluated
        if not evaluated:
            return 1.0
        met = sum(1 for r in evaluated if r.compliant)
        return met / len(evaluated)

    def to_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "compliance_ratio": self.compliance_ratio,
            "evaluated": len(self.evaluated),
            "violated": len(self.violations),
            "slos": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> None:
        """Atomically write the machine-readable health report."""
        atomic_write_text(path, self.to_json() + "\n")


# ----------------------------------------------------------------------
# evaluation over a metrics dump
# ----------------------------------------------------------------------
def _entries(dump: dict, name: str) -> list[dict]:
    return [e for e in dump.get("metrics", []) if e.get("name") == name]


def _sum_counters(dump: dict, name: str) -> tuple[float, bool]:
    """Sum a counter across its label sets; ``found`` False when absent."""
    entries = [e for e in _entries(dump, name) if e.get("type") != "histogram"]
    return sum(e.get("value", 0) for e in entries), bool(entries)


def _merge_histograms(dump: dict, name: str) -> dict | None:
    """Merge same-name histogram entries across label sets into one."""
    entries = [e for e in _entries(dump, name) if e.get("type") == "histogram"]
    if not entries:
        return None
    if len(entries) == 1:
        return entries[0]
    merged = {
        "name": name, "type": "histogram", "labels": {},
        "count": 0, "sum": 0.0, "buckets": {},
        "min": float("inf"), "max": float("-inf"),
    }
    for e in entries:
        merged["count"] += e.get("count", 0)
        merged["sum"] += e.get("sum", 0.0)
        if e.get("count", 0):
            merged["min"] = min(merged["min"], e.get("min", float("inf")))
            merged["max"] = max(merged["max"], e.get("max", float("-inf")))
        for le, acc in e.get("buckets", {}).items():
            merged["buckets"][le] = merged["buckets"].get(le, 0) + acc
    if not merged["count"]:
        merged["min"] = merged["max"] = 0.0
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
    return merged


def _burn(value: float, threshold: float) -> float | None:
    if threshold > 0:
        return value / threshold
    return 0.0 if value <= 0 else None  # at a zero budget, any burn is total


def evaluate_slo(slo: SLO, dump: dict) -> SLOResult:
    """Judge one SLO against one metrics dump/window."""
    if slo.kind == QUANTILE:
        entry = _merge_histograms(dump, slo.metric)
        samples = entry.get("count", 0) if entry is not None else 0
        objective = f"p{slo.q * 100:g}({slo.metric}) <= {slo.threshold:g}"
        if samples < slo.min_samples:
            return SLOResult(slo.name, slo.kind, slo.description, objective,
                             None, slo.threshold, samples, None, None)
        value = quantile_from_entry(entry, slo.q)
        return SLOResult(
            slo.name, slo.kind, slo.description, objective,
            value, slo.threshold, samples,
            value <= slo.threshold, _burn(value, slo.threshold),
        )
    bad, _ = _sum_counters(dump, slo.bad_metric)
    total, found = _sum_counters(dump, slo.total_metric)
    objective = f"{slo.bad_metric}/{slo.total_metric} <= {slo.max_ratio:g}"
    samples = int(total)
    if not found or samples < slo.min_samples:
        return SLOResult(slo.name, slo.kind, slo.description, objective,
                         None, slo.max_ratio, samples, None, None)
    value = bad / total if total else 0.0
    return SLOResult(
        slo.name, slo.kind, slo.description, objective,
        value, slo.max_ratio, samples,
        value <= slo.max_ratio, _burn(value, slo.max_ratio),
    )


def evaluate_slos(slos: list[SLO], dump: dict) -> HealthReport:
    """Judge every SLO against one metrics dump; see :class:`HealthReport`."""
    return HealthReport(results=[evaluate_slo(s, dump) for s in slos])


def load_slos(path) -> list[SLO]:
    """Read SLO definitions from a JSON file (a list of SLO dicts)."""
    data = json.loads(open(path, encoding="utf-8").read())
    if not isinstance(data, list):
        raise ValueError(f"{path}: SLO file must be a JSON list of objects")
    return [SLO.from_dict(d) for d in data]


# ----------------------------------------------------------------------
# default objectives
# ----------------------------------------------------------------------
#: Service-mode defaults — deadlines match ServicePolicy's defaults.
DEFAULT_SERVICE_SLOS: tuple[SLO, ...] = (
    SLO(
        name="route_latency_p99", kind=QUANTILE,
        description="p99 repair-batch latency stays under the full-reroute deadline",
        metric="service_batch_seconds", q=0.99, threshold=30.0,
    ),
    SLO(
        name="repair_failure_budget", kind=RATIO,
        description="at most 10% of repair batches may exhaust the ladder",
        bad_metric="service_batch_failures", total_metric="service_batches",
        max_ratio=0.10,
    ),
    SLO(
        name="staleness_budget", kind=RATIO,
        description="at most half of served routings may be stale",
        bad_metric="service_stale_serves_total", total_metric="service_serves_total",
        max_ratio=0.50,
    ),
    SLO(
        name="timeout_budget", kind=RATIO,
        description="at most half of ladder attempts may hit their compute deadline",
        bad_metric="service_timeouts", total_metric="service_attempts",
        max_ratio=0.50,
    ),
)

#: Chaos-mode defaults — the soak verifies correctness itself; these
#: judge latency and survival.
DEFAULT_CHAOS_SLOS: tuple[SLO, ...] = (
    SLO(
        name="repair_latency_p99", kind=QUANTILE,
        description="p99 incremental-repair latency",
        metric="repair_seconds", q=0.99, threshold=5.0,
    ),
    SLO(
        name="engine_survival", kind=RATIO,
        description="no chaos event may kill the engine",
        bad_metric="chaos_engine_deaths", total_metric="chaos_events_applied",
        max_ratio=0.0,
    ),
)


#: Fleet-mode defaults — the front door may degrade, never drop.
DEFAULT_FLEET_SLOS: tuple[SLO, ...] = (
    SLO(
        name="fleet_latency_p99", kind=QUANTILE,
        description="p99 front-end request latency",
        metric="fleet_request_seconds", q=0.99, threshold=5.0,
    ),
    SLO(
        name="unserved_budget", kind=RATIO,
        description="no request may go unserved (degraded answers are serves)",
        bad_metric="fleet_requests_failed_total",
        total_metric="fleet_requests_total",
        max_ratio=0.0,
    ),
    SLO(
        name="degraded_budget", kind=RATIO,
        description="at most half of requests may be served degraded",
        bad_metric="fleet_degraded_total", total_metric="fleet_requests_total",
        max_ratio=0.50,
    ),
)


def slos_for(mode: str) -> list[SLO]:
    """Default SLO set by mode name (``service`` | ``chaos`` | ``fleet``)."""
    if mode == "service":
        return list(DEFAULT_SERVICE_SLOS)
    if mode == "chaos":
        return list(DEFAULT_CHAOS_SLOS)
    if mode == "fleet":
        return list(DEFAULT_FLEET_SLOS)
    raise ValueError(
        f"unknown SLO mode {mode!r} (expected 'service', 'chaos' or 'fleet')"
    )


# ----------------------------------------------------------------------
# sliding-window engine
# ----------------------------------------------------------------------
class SLOEngine:
    """Sliding-window SLO evaluation over the live registry.

    Each :meth:`tick` appends a registry snapshot to a bounded window of
    the last ``window`` ticks, evaluates the SLOs over the delta between
    the window's oldest snapshot and now, publishes the
    ``slo_compliance_ratio`` gauge and a ``slo_burn_rate{slo=...}``
    gauge per objective, and records one ``slo_violation`` flight event
    per objective that is violated this tick but was not on the previous
    tick (edge-triggered, so a persistently bad SLO does not flood the
    ring buffer).
    """

    def __init__(self, slos: list[SLO] | None = None, *, registry=None, window: int = 8):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.slos = list(slos) if slos is not None else list(DEFAULT_SERVICE_SLOS)
        self._registry = registry
        self.window = window
        self._snapshots: list[dict] = []
        self._violated: set[str] = set()
        self.ticks = 0

    @property
    def registry(self):
        return self._registry if self._registry is not None else get_registry()

    def tick(self) -> HealthReport:
        from repro.obs.recorder import record_event

        reg = self.registry
        now = reg.snapshot()
        self._snapshots.append(now)
        if len(self._snapshots) > self.window:
            self._snapshots.pop(0)
        # Window = oldest retained snapshot → now. On the first tick the
        # oldest *is* now, which would make every delta zero — judge the
        # whole run instead.
        oldest = self._snapshots[0]
        dump = now if oldest is now else reg.snapshot_delta(oldest, now)
        report = evaluate_slos(self.slos, dump)
        self.ticks += 1

        reg.gauge(
            "slo_compliance_ratio", "fraction of evaluated SLOs currently met"
        ).set(report.compliance_ratio)
        for result in report.results:
            if result.burn_rate is not None:
                reg.gauge(
                    "slo_burn_rate", "observed value / threshold per SLO",
                    slo=result.name,
                ).set(result.burn_rate)
        violated_now = {r.name for r in report.violations}
        for result in report.violations:
            if result.name not in self._violated:
                record_event(
                    "slo_violation", slo=result.name, value=result.value,
                    threshold=result.threshold, burn_rate=result.burn_rate,
                )
        self._violated = violated_now
        return report
