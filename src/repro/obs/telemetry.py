"""Request-scoped trace correlation, across threads *and* processes.

The supervisor (``repro.service``), the parallel executor
(``repro.parallel``) and the routing cache each emit spans, but until a
request id ties them together a JSONL trace is a bag of fragments. This
module provides:

* :func:`request_scope` — open a *request root span* and make its
  ``request_id`` ambient: every span created inside the scope (in this
  context) is stamped with a ``request_id`` attribute, so one query over
  the trace sink reconstructs the request's full causal tree.
* :func:`export_context` / :func:`capture_spans` / :func:`replay_spans`
  — carry the request context over a process-pool boundary. The parent
  serializes a small *carrier* dict into each task; the worker captures
  its spans locally (under the shipped request id) and returns them as
  plain dicts with the task result; the parent replays them into its own
  sink, **re-parented** under the live span that consumed the result.
  Worker span records are pure data (no live ``Span`` objects cross the
  boundary), so this works under both fork and spawn start methods.

Request ids are free-form strings. :func:`new_request_id` makes an
unguessable one; the routing supervisor instead derives sequential ids
from a persisted ``(service_id, request_seq)`` pair so ids stay unique
across checkpoint/restore.
"""

from __future__ import annotations

import secrets
from contextlib import contextmanager

from repro.obs import tracing
from repro.obs.tracing import Span, current_span

__all__ = [
    "new_request_id",
    "request_scope",
    "current_request_id",
    "export_context",
    "capture_spans",
    "replay_spans",
]

current_request_id = tracing.current_request_id


def new_request_id(prefix: str = "req") -> str:
    """A fresh request id: ``<prefix>-<8 hex chars>``."""
    return f"{prefix}-{secrets.token_hex(4)}"


class request_scope:
    """Context manager: a request root span with an ambient request id.

    >>> from repro.obs import InMemorySink, span, use_sink
    >>> with use_sink(InMemorySink()) as sink:
    ...     with request_scope("req-1234", kind="demo") as req:
    ...         with span("inner") as sp:
    ...             pass
    >>> req.attrs["request_id"], sp.attrs["request_id"]
    ('req-1234', 'req-1234')

    ``request_id=None`` generates one via :func:`new_request_id`. The
    yielded object is the root :class:`~repro.obs.tracing.Span`; read
    ``.attrs["request_id"]`` for the effective id. Scopes nest: an inner
    scope's id shadows the outer one until it exits.
    """

    __slots__ = ("_request_id", "_name", "_attrs", "_span_cm", "_token")

    def __init__(self, request_id: str | None = None, name: str = "request", **attrs):
        self._request_id = request_id or new_request_id()
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._token = tracing.set_request_id(self._request_id)
        self._span_cm = tracing.span(self._name, **self._attrs)
        return self._span_cm.__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self._span_cm.__exit__(exc_type, exc, tb)
        finally:
            tracing.reset_request_id(self._token)


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
def export_context() -> dict:
    """Serializable trace context for shipping into a worker process.

    ``capture`` tells the worker whether span capture is worth the
    bookkeeping at all — when the parent's sink is disabled nobody will
    ever see the records, so workers skip span creation entirely and
    the parallel hot path stays unchanged.
    """
    sp = current_span()
    return {
        "request_id": tracing.current_request_id(),
        "parent_span": sp.span_id if sp is not None else None,
        "capture": tracing.get_sink().enabled,
    }


class _CaptureSink:
    """Worker-side sink: serialize finished spans to plain dicts.

    ``local_id``/``local_parent`` are the worker's own span ids — valid
    only for reconstructing the *shape* of the tree; :func:`replay_spans`
    assigns fresh ids in the parent.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def start(self, span: Span) -> None:
        pass

    def stop(self, span: Span) -> None:
        self.records.append(
            {
                "local_id": span.span_id,
                "local_parent": span.parent_id,
                "name": span.name,
                "ts": span.start_wall,
                "perf": span.start_perf,
                "duration_s": span.duration,
                "status": span.status,
                "attrs": dict(span.attrs),
            }
        )

    def close(self) -> None:
        pass


@contextmanager
def capture_spans(carrier: dict | None = None):
    """Worker side: record spans locally under the shipped request context.

    Replaces the worker's sink for the duration (under fork the worker
    inherits the parent's sink — possibly a ``JsonlSink`` sharing a file
    descriptor; capturing instead of writing avoids interleaved output).
    Yields the capture sink; ship ``sink.records`` back with the result.
    """
    carrier = carrier or {}
    sink = _CaptureSink()
    old = tracing.set_sink(sink)
    token = tracing.set_request_id(carrier.get("request_id"))
    # The forked/inherited "current span" (if any) belongs to the parent
    # process; isolate so captured roots have local_parent outside the
    # captured set and re-parent cleanly.
    span_token = tracing._current.set(None)
    try:
        yield sink
    finally:
        tracing._current.reset(span_token)
        tracing.reset_request_id(token)
        tracing.set_sink(old)


def replay_spans(records: list[dict], parent: Span | None = None) -> list[Span]:
    """Parent side: re-emit captured worker spans, re-parented.

    Fresh span ids are assigned from the parent's counter; the captured
    tree shape (``local_parent`` links within ``records``) is preserved,
    and any captured root — or orphan whose parent record was lost to a
    timeout — hangs off ``parent`` (default: the current span). Start
    and stop events are emitted parents-before-children / reverse, so
    in-memory sinks see a well-nested bracket sequence. Returns the
    replayed spans in start order.
    """
    if not records:
        return []
    if parent is None:
        parent = current_span()
    by_id = {rec["local_id"]: rec for rec in records}
    spans: dict[int, Span] = {}

    def materialise(rec: dict) -> Span:
        sid = rec["local_id"]
        got = spans.get(sid)
        if got is not None:
            return got
        parent_rec = by_id.get(rec["local_parent"])
        up = materialise(parent_rec) if parent_rec is not None else parent
        sp = Span(rec["name"], dict(rec["attrs"]), up)
        sp.start_wall = rec["ts"]
        sp.start_perf = rec["perf"]
        sp.duration = rec["duration_s"]
        sp.status = rec["status"]
        spans[sid] = sp
        return sp

    ordered = [
        materialise(rec)
        for rec in sorted(records, key=lambda r: (r["perf"], r["local_id"]))
    ]
    sink = tracing.get_sink()
    if sink.enabled:
        for sp in ordered:
            sink.start(sp)
        for sp in reversed(ordered):
            sink.stop(sp)
    return ordered
