"""Nestable structured spans with pluggable sinks.

``with span("dfsssp.layers", heuristic="weakest") as sp:`` measures a
phase, links it to the enclosing span, and emits structured start/stop
events to the active sink:

* :class:`NullSink` (default) — events are dropped; the only cost of an
  instrumented region is one small object and two ``perf_counter``
  calls, so engines stay fast when nobody is watching.
* :class:`InMemorySink` — collects events and finished spans; used by
  tests and interactive inspection.
* :class:`JsonlSink` — one JSON object per line per event, the format
  behind the CLI's ``--trace FILE`` flag.

Spans always measure elapsed time regardless of sink (callers such as
DFSSSP read ``sp.duration`` for their stats dict). Durations come from
``time.perf_counter`` — monotonic, so NTP steps or daylight-saving
jumps mid-phase cannot produce negative or wildly wrong timings.
``Span.start_wall`` (``time.time``) anchors the span on the human
calendar and is stamped *together with* ``start_perf`` (one adjacent
pair of clock reads), so exported records carry a coherent
(wall, monotonic) pair. The monotonic side is authoritative: ordering
and arithmetic use ``perf``/``duration_s``; ``ts`` exists to correlate
traces with external logs. Nesting is tracked per-context via
:mod:`contextvars`, so spans stay correctly parented under threads or
async tasks.

When a request id is active (see :mod:`repro.obs.telemetry`), every
span created in that context is stamped with a ``request_id``
attribute, so one grep over a JSONL trace recovers a request's whole
causal tree.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from contextvars import ContextVar

_ids = itertools.count(1)

#: Ambient request id — set by :func:`repro.obs.telemetry.request_scope`
#: (or :func:`set_request_id` directly); every span created while it is
#: set carries a ``request_id`` attribute. Lives here rather than in
#: :mod:`repro.obs.telemetry` so ``Span.__init__`` needs no imports.
_request_id: ContextVar[str | None] = ContextVar("repro_obs_request_id", default=None)


def current_request_id() -> str | None:
    """The ambient request id in this context, if any."""
    return _request_id.get()


def set_request_id(request_id: str | None):
    """Set the ambient request id; returns a token for :func:`reset_request_id`."""
    return _request_id.set(request_id)


def reset_request_id(token) -> None:
    _request_id.reset(token)


class Span:
    """One timed phase. ``duration`` is None until the span closes.

    ``start_perf`` (``perf_counter``) is the monotonic anchor the
    duration is measured from and is **authoritative** for ordering and
    arithmetic; ``start_wall`` (``time.time``) is the wall-clock
    annotation stamped in the same instant, used only to correlate
    traces with external logs — stepped system clocks cannot skew
    durations.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent", "start_wall", "start_perf",
        "duration", "status",
    )

    def __init__(self, name: str, attrs: dict, parent: "Span | None"):
        self.name = name
        rid = _request_id.get()
        if rid is not None and "request_id" not in attrs:
            attrs["request_id"] = rid
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent = parent
        # One adjacent pair of clock reads — keep wall and perf coherent.
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.duration: float | None = None
        self.status = "ok"

    @property
    def parent_id(self) -> int | None:
        return self.parent.span_id if self.parent is not None else None

    def set_attr(self, key: str, value) -> None:
        """Attach/overwrite an attribute mid-span (appears in the stop event)."""
        self.attrs[key] = value

    def effective_attrs(self) -> dict:
        """Own attributes merged over every ancestor's (child wins) —
        the "inherited context" view of attribute propagation."""
        chain: list[Span] = []
        node: Span | None = self
        while node is not None:
            chain.append(node)
            node = node.parent
        merged: dict = {}
        for s in reversed(chain):
            merged.update(s.attrs)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration:.6f}s" if self.duration is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


# ----------------------------------------------------------------------
class NullSink:
    """Discards everything (the near-zero-overhead default)."""

    enabled = False

    def start(self, span: Span) -> None:
        pass

    def stop(self, span: Span) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink:
    """Keeps events and finished spans in lists (tests, notebooks)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[tuple[str, Span]] = []
        self.spans: list[Span] = []

    def start(self, span: Span) -> None:
        self.events.append(("start", span))

    def stop(self, span: Span) -> None:
        self.events.append(("stop", span))
        self.spans.append(span)

    def close(self) -> None:
        pass

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]


class JsonlSink:
    """Writes one JSON object per event line (the ``--trace`` format).

    ``target`` is a path (opened/closed by the sink) or an open
    file-like object (left open on :meth:`close` — e.g. stdout).

    Every record stamps both clocks: ``ts`` is the span's wall-clock
    start (correlates traces with external logs) and ``perf`` the
    matching monotonic (``perf_counter``) anchor. The monotonic side is
    authoritative — ``duration_s`` is measured on it, and *stop*
    records carry the re-anchored pair taken right before the span body
    ran (start records carry the provisional pair from span creation,
    so ``stop.ts >= start.ts`` by a hair). Tools that order or compare
    spans must use ``perf``/``duration_s``, never ``ts``.
    """

    enabled = True

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._fp = target
            self._owns = False
        else:
            self._fp = open(target, "w", encoding="utf-8")
            self._owns = True

    def _emit(self, record: dict) -> None:
        self._fp.write(json.dumps(record, default=str) + "\n")

    def start(self, span: Span) -> None:
        self._emit(
            {
                "event": "start",
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": span.start_wall,
                "perf": span.start_perf,
                "attrs": span.attrs,
            }
        )

    def stop(self, span: Span) -> None:
        self._emit(
            {
                "event": "stop",
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": span.start_wall,
                "perf": span.start_perf,
                "duration_s": span.duration,
                "status": span.status,
                "attrs": span.attrs,
            }
        )

    def close(self) -> None:
        self._fp.flush()
        if self._owns:
            self._fp.close()


NULL_SINK = NullSink()

_sink: NullSink | InMemorySink | JsonlSink = NULL_SINK
_current: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)


def get_sink():
    return _sink


def set_sink(sink) -> object:
    """Install a sink; returns the previous one. ``None`` → NullSink."""
    global _sink
    old = _sink
    _sink = sink if sink is not None else NULL_SINK
    return old


@contextmanager
def use_sink(sink):
    """Temporarily install ``sink`` (tests)."""
    old = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(old)


def current_span() -> Span | None:
    """The innermost open span in this context, if any."""
    return _current.get()


class span:
    """Context manager: time a named phase and emit start/stop events.

    >>> with span("phase", size=3) as sp:
    ...     pass
    >>> sp.duration is not None
    True
    """

    __slots__ = ("_name", "_attrs", "_span", "_token")

    def __init__(self, name: str, **attrs):
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        s = Span(self._name, self._attrs, _current.get())
        self._span = s
        self._token = _current.set(s)
        sink = _sink
        if sink.enabled:
            sink.start(s)
        # Re-anchor after the sink call so its I/O never counts as phase
        # time. Both clocks move together so the (wall, perf) pair in
        # stop records stays coherent; stop records are authoritative.
        s.start_wall = time.time()
        s.start_perf = time.perf_counter()
        return s

    def __exit__(self, exc_type, exc, tb) -> None:
        s = self._span
        assert s is not None, "span.__exit__ without __enter__"
        s.duration = time.perf_counter() - s.start_perf
        _current.reset(self._token)
        if exc_type is not None:
            s.status = "error"
            s.attrs.setdefault("exception", exc_type.__name__)
        sink = _sink
        if sink.enabled:
            sink.stop(s)
