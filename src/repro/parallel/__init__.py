"""Parallel routing kernels and the process-pool execution layer.

``repro.parallel`` makes the SSSP/DFSSSP hot path scale without changing
a single output bit:

* :mod:`repro.parallel.kernel` — the vectorized (numpy) Dijkstra and BFS
  kernels, selectable on the engines via ``kernel="numpy" | "python"``;
* :mod:`repro.parallel.executor` — the process pool that fans out
  per-destination columns in deterministic batches
  (``SSSPEngine(workers=N)`` / ``DFSSSPEngine(workers=N)``);
* :mod:`repro.parallel.reduction` — the exact reduction that replays the
  serial weight-update order and *proves* every column equal to the
  serial engine's, falling back to a full Dijkstra otherwise.

The determinism contract and the worker model are documented in
``docs/parallel.md``; the differential suite in ``tests/parallel``
certifies every parallel path against the serial oracle on every
topology family.
"""

from repro.parallel.kernel import (
    KERNELS,
    dijkstra_to_dest_numpy,
    hops_to_dest,
    resolve_kernel,
)
from repro.parallel.reduction import ExactReduction
from repro.parallel.executor import run_parallel_sssp

__all__ = [
    "KERNELS",
    "dijkstra_to_dest_numpy",
    "hops_to_dest",
    "resolve_kernel",
    "ExactReduction",
    "run_parallel_sssp",
]
