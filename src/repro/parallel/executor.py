"""Process-pool execution layer for SSSP/DFSSSP routing.

The fan-out/reduce split mirrors how per-destination routing
parallelizes in practice (cf. the Angara graph-routing work): what can
run concurrently is exactly the *weight-independent* part of each
destination's column. Workers therefore compute **hop columns** —
minimum hop counts toward each destination, which no balancing update
can invalidate — while the parent performs the weight-dependent
refinement serially, in the engine's fixed destination order, through
:class:`repro.parallel.reduction.ExactReduction`. Validation with
Dijkstra fallback makes the combined result bit-identical to the serial
engine on every fabric, which ``tests/parallel`` asserts property-based
and per topology family.

Scheduling is deterministic: the ordered destination list is cut into
fixed-size batches, each batch into per-worker contiguous chunks, and
results are consumed in submission order — worker count and OS
scheduling can change timing only, never output. Batch ``b+1`` is
dispatched before batch ``b`` is reduced, so workers stay busy while the
parent reduces.

Two transports move the fabric out and the hop columns back
(``use_shm``, default on): the **shared-memory** path maps the fabric
CSR arrays and two rotating per-batch column blocks into every process
(:mod:`repro.parallel.shm` — zero pickling per batch, workers write
result rows in place), while the **pickling** path ships columns through
the pool's result queue. They are observationally identical — the
differential suite runs both against serial — the shm path is simply the
one that survives 100k-endpoint fabrics.

Compute budgets (:mod:`repro.service.budget`) are context-local and do
not cross process boundaries, so the parent snapshots the active
budget's remaining seconds into every task; workers re-arm an equivalent
deadline and poll it from the kernels' inner loops. A worker-side
:class:`~repro.exceptions.ComputeTimeoutError` is shipped back as a
plain tuple and re-raised in the parent, preserving the supervisor's
escalation semantics end to end.

Observability: one ``parallel.run`` span per engine run, one
``parallel.batch`` span per batch — and, when a sink is live, one
``parallel.hop_column`` span per destination *inside each worker
process*, captured there and replayed re-parented under the consuming
batch span (see :mod:`repro.obs.telemetry`; the shipped carrier's
``capture`` flag keeps workers span-free when nobody is tracing) —
plus ``routing_parallel_*`` metrics
(workers, batches, columns, validation fallbacks, worker timeouts,
per-batch wall time) — see ``docs/observability.md``.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from repro.exceptions import ComputeTimeoutError
from repro.network.fabric import Fabric
from repro.obs import DURATION_BUCKETS, get_registry, span
from repro.obs.telemetry import capture_spans, export_context, replay_spans
from repro.parallel.kernel import INT64_INF, hops_to_dest, resolve_kernel
from repro.parallel.reduction import ExactReduction
from repro.service.budget import active_budget, check_budget, compute_budget

#: default hop columns per batch, per worker (batches of ``4 * workers``).
BATCH_COLUMNS_PER_WORKER = 4

# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_worker_state: dict = {"fabric": None, "kernel": "numpy", "columns": None, "pins": ()}


def _init_worker(fabric: Fabric | None, kernel: str,
                 fabric_spec: dict | None = None,
                 column_specs: Sequence[dict] | None = None) -> None:
    """Pool initializer: pin the (immutable) fabric and kernel choice.

    The shm transport passes ``fabric=None`` plus segment specs; the
    worker maps the shared fabric arena into a
    :class:`~repro.parallel.shm.FabricView` and the rotating column
    blocks into writable row arrays, pinning the mappings for the
    process lifetime (``pins`` keeps the SharedMemory objects alive).
    """
    pins = []
    if fabric_spec is not None:
        from repro.parallel.shm import attach_fabric

        fabric, shm = attach_fabric(fabric_spec)
        pins.append(shm)
    _worker_state["fabric"] = fabric
    _worker_state["kernel"] = kernel
    columns = None
    if column_specs is not None:
        from repro.parallel.shm import attach_columns

        columns = []
        for spec in column_specs:
            arr, shm = attach_columns(spec)
            columns.append(arr)
            pins.append(shm)
    _worker_state["columns"] = columns
    _worker_state["pins"] = tuple(pins)


def _hop_column(dest: int) -> np.ndarray:
    """One destination's hop column with the configured kernel.

    The ``python`` kernel literally fans out
    :func:`repro.core.sssp.dijkstra_to_dest` on uniform unit weights
    (whose distances *are* hop counts); ``numpy`` runs the BFS kernel and
    ``native`` the jitted one (degrading to ``python`` without numba).
    All return identical columns.
    """
    fabric = _worker_state["fabric"]
    kernel = _worker_state["kernel"]
    if kernel == "native":
        from repro.parallel.native import hops_to_dest_native

        return hops_to_dest_native(fabric, dest)
    if kernel == "python":
        from repro.core.sssp import dijkstra_to_dest

        ones = np.ones(fabric.num_channels, dtype=np.int64)
        dist, _ = dijkstra_to_dest(fabric, dest, ones)
        return np.where(dist == INT64_INF, -1, dist).astype(np.int32)
    return hops_to_dest(fabric, dest)


def _hop_columns_task(dests: Sequence[int], budget_s, budget_label: str,
                      carrier: dict | None = None):
    """Compute hop columns for a chunk of destinations, under a deadline.

    Returns ``("ok", [columns...], records)`` or ``("timeout", info,
    records)`` — shipping the timeout as data keeps the payload picklable
    regardless of how the exception type evolves. ``records`` are the
    worker's captured span dicts (one ``parallel.hop_column`` per
    destination, stamped with the shipped request id and this worker's
    pid) when the ``carrier`` asks for capture, else empty; the parent
    replays them re-parented under its ``parallel.batch`` span. A
    timed-out chunk still ships what it captured — the aborted column's
    span arrives with ``status="error"`` and explains the timeout.
    """
    capture = bool(carrier and carrier.get("capture"))
    ctx = capture_spans(carrier) if capture else nullcontext()
    records: list[dict] = []

    def columns() -> list[np.ndarray]:
        out = []
        for d in dests:
            if capture:
                with span("parallel.hop_column", dest=int(d), pid=os.getpid()):
                    out.append(_hop_column(int(d)))
            else:
                out.append(_hop_column(int(d)))
        return out

    with ctx as sink:
        if capture:
            records = sink.records
        try:
            if budget_s is not None:
                with compute_budget(budget_s, label=budget_label):
                    return ("ok", columns(), records)
            return ("ok", columns(), records)
        except ComputeTimeoutError as err:
            return ("timeout", (str(err), err.label, err.limit_s, err.elapsed_s), records)


def _hop_columns_shm_task(dest_rows: Sequence[tuple[int, int]], block: int,
                          budget_s, budget_label: str,
                          carrier: dict | None = None):
    """Shared-memory variant of :func:`_hop_columns_task`.

    ``dest_rows`` pairs each destination with its row in column block
    ``block`` (an index into the initializer's ``column_specs``); the
    column lands in shared memory, so the return payload is just the
    completed-row count. Timeout/trace semantics are identical to the
    pickling task — a timed-out chunk may have written some rows, but the
    parent discards the whole batch by re-raising, so partial rows are
    never consumed.
    """
    capture = bool(carrier and carrier.get("capture"))
    ctx = capture_spans(carrier) if capture else nullcontext()
    records: list[dict] = []
    out = _worker_state["columns"][block]

    def fill() -> int:
        done = 0
        for dest, row in dest_rows:
            if capture:
                with span("parallel.hop_column", dest=int(dest), pid=os.getpid()):
                    out[row, :] = _hop_column(int(dest))
            else:
                out[row, :] = _hop_column(int(dest))
            done += 1
        return done

    with ctx as sink:
        if capture:
            records = sink.records
        try:
            if budget_s is not None:
                with compute_budget(budget_s, label=budget_label):
                    return ("ok", fill(), records)
            return ("ok", fill(), records)
        except ComputeTimeoutError as err:
            return ("timeout", (str(err), err.label, err.limit_s, err.elapsed_s), records)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _mp_context():
    """Fork when the platform has it (cheap, fabric shared copy-on-write);
    spawn otherwise (fabric pickled once per worker via the initializer)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _chunks(items: list, n: int) -> list[list]:
    """Split ``items`` into at most ``n`` contiguous, near-equal chunks."""
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _budget_snapshot():
    """(remaining seconds, label) of the active budget, for worker re-arm."""
    budget = active_budget()
    if budget is None or budget.deadline is None:
        return None, "compute"
    return budget.remaining(), budget.label


def run_parallel_sssp(
    fabric: Fabric,
    order: np.ndarray,
    *,
    workers: int,
    kernel: str = "python",
    batch: int | None = None,
    count_switch_sources: bool = False,
    engine_name: str = "sssp",
    use_shm: bool = True,
):
    """Parallel SSSP: fan out hop columns, reduce exactly in ``order``.

    Returns ``(next_channel, weights)`` bit-identical to
    :meth:`repro.core.sssp.SSSPEngine._run` on the same fabric and
    destination order. ``use_shm`` selects the shared-memory transport
    (module docstring); both transports produce the same arrays.
    """
    from repro.core.sssp import update_weights_for_dest_fast

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    fallback_dijkstra = resolve_kernel(kernel)
    T = fabric.num_terminals
    w0 = T * T + 1
    weights = np.full(fabric.num_channels, w0, dtype=np.int64)
    next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
    is_term = fabric.kinds == 1  # NodeKind.TERMINAL

    reg = get_registry()
    reg.gauge(
        "routing_parallel_workers", "process-pool size of the last parallel run",
        engine=engine_name,
    ).set(workers)
    m_batches = reg.counter(
        "routing_parallel_batches", "hop-column batches dispatched", engine=engine_name
    )
    m_columns = reg.counter(
        "routing_parallel_columns", "hop columns computed by workers", engine=engine_name
    )
    m_fallbacks = reg.counter(
        "routing_parallel_fallbacks",
        "reduction columns that failed validation and re-ran full Dijkstra",
        engine=engine_name,
    )
    m_timeouts = reg.counter(
        "routing_parallel_worker_timeouts",
        "worker tasks aborted by the polled compute deadline",
        engine=engine_name,
    )
    m_seconds = reg.histogram(
        "routing_parallel_batch_seconds", "wall time per fan-out/reduce batch",
        buckets=DURATION_BUCKETS,
    )
    m_sources = reg.counter(
        "sssp_sources_routed", "destination terminals routed (one Dijkstra each)"
    )
    m_updates = reg.counter(
        "sssp_edge_weight_updates", "per-channel weight increments applied after Dijkstras"
    )

    jobs = [(int(t_idx), int(fabric.terminals[t_idx])) for t_idx in order]
    batch_size = batch or workers * BATCH_COLUMNS_PER_WORKER
    if batch_size < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    batches = [jobs[i : i + batch_size] for i in range(0, len(jobs), batch_size)]
    reduction = ExactReduction(fabric)

    with span(
        "parallel.run",
        engine=engine_name,
        workers=workers,
        kernel=kernel,
        destinations=int(T),
        batches=len(batches),
        transport="shm" if use_shm else "pickle",
    ):
        if not batches:
            return next_channel, weights
        arena = None
        blocks: list = []
        if use_shm:
            from repro.parallel.shm import ColumnBlock, FabricArena

            arena = FabricArena(fabric)
            # Two rotating blocks: the parent reduces batch b (block b%2)
            # only after all of b's chunks returned, while workers fill
            # batch b+1 into the other block — never the same rows.
            blocks = [ColumnBlock(batch_size, fabric.num_nodes) for _ in range(2)]
            initargs = (None, kernel, arena.spec, [b.spec for b in blocks])
        else:
            initargs = (fabric, kernel)
        ctx = _mp_context()
        try:
            with ctx.Pool(workers, initializer=_init_worker, initargs=initargs) as pool:
                handles: list = [None] * len(batches)

                def dispatch(index: int) -> None:
                    if index >= len(batches):
                        return
                    budget_s, label = _budget_snapshot()
                    carrier = export_context()
                    if use_shm:
                        rows = [
                            (dest, row)
                            for row, (_, dest) in enumerate(batches[index])
                        ]
                        handles[index] = [
                            pool.apply_async(
                                _hop_columns_shm_task,
                                (chunk, index % 2, budget_s, label, carrier),
                            )
                            for chunk in _chunks(rows, workers)
                        ]
                    else:
                        handles[index] = [
                            pool.apply_async(
                                _hop_columns_task,
                                ([dest for _, dest in chunk], budget_s, label, carrier),
                            )
                            for chunk in _chunks(batches[index], workers)
                        ]

                dispatch(0)
                for index, batch_jobs in enumerate(batches):
                    dispatch(index + 1)  # keep workers busy while reducing
                    with span(
                        "parallel.batch", engine=engine_name, batch=index,
                        columns=len(batch_jobs),
                    ) as sp:
                        columns: list[np.ndarray] | None = None if use_shm else []
                        for handle in handles[index]:
                            status, payload, records = handle.get()
                            # Re-parent the worker's captured spans under this
                            # batch span (even for a timed-out chunk — its
                            # error span is the explanation).
                            replay_spans(records)
                            if status == "timeout":
                                message, label, limit_s, elapsed_s = payload
                                m_timeouts.inc()
                                raise ComputeTimeoutError(
                                    f"parallel worker: {message}",
                                    label=label, limit_s=limit_s, elapsed_s=elapsed_s,
                                )
                            if not use_shm:
                                columns.extend(payload)
                        handles[index] = None  # free the batch's column memory
                        block = blocks[index % 2].array if use_shm else None
                        for row, (t_idx, dest) in enumerate(batch_jobs):
                            check_budget()  # parent-side deadline between columns
                            hops = block[row] if use_shm else columns[row]
                            dist, parent = reduction.refine(dest, hops, weights)
                            if not reduction.validate(dest, dist, parent, weights):
                                m_fallbacks.inc()
                                dist, parent = fallback_dijkstra(fabric, dest, weights)
                            next_channel[:, t_idx] = parent
                            update_weights_for_dest_fast(
                                fabric, dest, dist, parent, weights, is_term,
                                count_switch_sources=count_switch_sources,
                            )
                            m_sources.inc()
                            m_updates.inc(int(np.count_nonzero(parent >= 0)))
                    m_batches.inc()
                    m_columns.inc(len(batch_jobs))
                    m_seconds.observe(sp.duration)
        finally:
            # Parent owns every segment: unlink as soon as the pool is
            # gone (workers hold plain mappings, closed at process exit).
            for b in blocks:
                b.destroy()
            if arena is not None:
                arena.destroy()
    return next_channel, weights
