"""Vectorized routing kernels.

Two interchangeable implementations of the per-destination shortest-path
primitive drive the SSSP/DFSSSP engines:

* ``"python"`` — the reference binary-heap Dijkstra
  (:func:`repro.core.sssp.dijkstra_to_dest`), one relaxation at a time;
* ``"numpy"`` — :func:`dijkstra_to_dest_numpy`, a masked-argmin frontier
  over the fabric's flat channel arrays.

The numpy kernel settles *every* node at the current minimum tentative
distance in one step (their final distances are equal, so Dijkstra's
invariant holds for the whole group) and relaxes all of the group's
predecessor channels with one ``lexsort`` over ``(distance, channel id)``.
That reproduces the heap kernel's tie-breaking exactly: at convergence
``parent[v]`` is the lowest channel id among the channels ``(v -> u)``
that minimise ``dist[u] + weight[c]`` — a property of the *fixpoint*, not
of the relaxation order — so the two kernels are bit-identical, which the
differential suite (``tests/parallel``) asserts on every topology family.

:func:`hops_to_dest` is the weight-independent sibling: plain BFS levels
toward a destination, equal to Dijkstra distances under uniform weights.
The parallel executor fans it out to worker processes because hop columns
never go stale (see :mod:`repro.parallel.executor`).
"""

from __future__ import annotations

import numpy as np

from repro.network.fabric import Fabric
from repro.service.budget import check_budget

#: Kernel names accepted by the engines and the CLI ``--kernel`` flag.
KERNELS = ("python", "numpy", "native")

INT64_INF = np.iinfo(np.int64).max


def resolve_kernel(name: str):
    """Map a kernel name to its ``(fabric, dest, weights)`` callable.

    ``"native"`` resolves to the numba-jit CSR kernel when numba is
    importable and otherwise **degrades to the ``"python"`` reference**
    after a one-time :class:`RuntimeWarning` — callers never need to
    probe numba themselves, and results are bit-identical either way
    (see :mod:`repro.parallel.native`).
    """
    if name == "python":
        from repro.core.sssp import dijkstra_to_dest

        return dijkstra_to_dest
    if name == "numpy":
        return dijkstra_to_dest_numpy
    if name == "native":
        from repro.parallel import native

        if native.numba_available():
            return native.dijkstra_to_dest_native
        native.warn_native_fallback()
        from repro.core.sssp import dijkstra_to_dest

        return dijkstra_to_dest
    raise ValueError(f"kernel must be one of {KERNELS}, got {name!r}")


def dijkstra_to_dest_numpy(fabric: Fabric, dest: int, weights: np.ndarray):
    """Weighted shortest paths to ``dest``, vectorized.

    Bit-identical to :func:`repro.core.sssp.dijkstra_to_dest`: same
    ``(dist, parent)`` arrays, including the (distance, node id, channel
    id) tie-breaking and the terminals-never-forward rule.
    """
    n = fabric.num_nodes
    dist = np.full(n, INT64_INF, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int32)
    dist[dest] = 0
    settled = np.zeros(n, dtype=bool)
    forwards = fabric.kinds == 0  # NodeKind.SWITCH
    forwards = forwards.copy()
    forwards[dest] = True
    out_ptr = fabric.out_ptr
    out_chan = fabric.out_chan
    reverse = fabric.channels.reverse
    chan_dst = fabric.channels.dst
    # `frontier_key` mirrors dist but flips to INF once a node settles, so
    # the masked argmin is a single vector min per step.
    frontier_key = dist.copy()
    while True:
        check_budget()  # cooperative deadline, once per settled group
        d = frontier_key.min()
        if d == INT64_INF:
            break
        group = np.flatnonzero(frontier_key == d)
        settled[group] = True
        frontier_key[group] = INT64_INF
        senders = group[forwards[group]]
        if not len(senders):
            continue
        # Gather the out-channel CSR slices of every sender at once.
        starts = out_ptr[senders]
        lens = (out_ptr[senders + 1] - starts).astype(np.int64)
        total = int(lens.sum())
        if not total:
            continue
        flat = np.repeat(starts, lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        c_out = out_chan[flat]  # channels (u -> v), u in senders
        c_in = reverse[c_out]  # forward channels (v -> u)
        v = chan_dst[c_out]
        keep = ~settled[v]
        c_in = c_in[keep]
        v = v[keep]
        if not len(v):
            continue
        nd = d + weights[c_in]
        # Best (distance, channel) candidate per predecessor node: group by
        # node, order each group by (distance, channel id), take the first.
        order = np.lexsort((c_in, nd, v))
        v_sorted = v[order]
        first = np.ones(len(v_sorted), dtype=bool)
        first[1:] = v_sorted[1:] != v_sorted[:-1]
        v_best = v_sorted[first]
        nd_best = nd[order][first]
        c_best = c_in[order][first]
        improves = (nd_best < dist[v_best]) | (
            (nd_best == dist[v_best]) & (c_best < parent[v_best])
        )
        v_upd = v_best[improves]
        dist[v_upd] = nd_best[improves]
        parent[v_upd] = c_best[improves].astype(np.int32)
        frontier_key[v_upd] = dist[v_upd]
    return dist, parent


def hops_to_dest(fabric: Fabric, dest: int) -> np.ndarray:
    """Minimum hop count from every node to ``dest`` (-1 if unreachable).

    Equals ``dijkstra_to_dest(fabric, dest, ones)[0]`` (with unreachable
    mapped to -1): BFS levels are Dijkstra distances under uniform unit
    weights. Terminals never forward, exactly as in the weighted kernels.
    """
    n = fabric.num_nodes
    hops = np.full(n, -1, dtype=np.int32)
    hops[dest] = 0
    forwards = fabric.kinds == 0
    forwards = forwards.copy()
    forwards[dest] = True
    out_ptr = fabric.out_ptr
    out_chan = fabric.out_chan
    chan_dst = fabric.channels.dst
    frontier = np.array([dest], dtype=np.int64)
    level = 0
    while len(frontier):
        check_budget()
        senders = frontier[forwards[frontier]]
        if not len(senders):
            break
        starts = out_ptr[senders]
        lens = (out_ptr[senders + 1] - starts).astype(np.int64)
        total = int(lens.sum())
        if not total:
            break
        flat = np.repeat(starts, lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        v = chan_dst[out_chan[flat]]  # predecessors reached via (v -> sender)
        v = v[hops[v] < 0]
        if not len(v):
            break
        frontier = np.unique(v)
        level += 1
        hops[frontier] = level
    return hops
