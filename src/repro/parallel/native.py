"""Native (numba-jit) routing kernels with a graceful pure-python fallback.

``kernel="native"`` compiles the two per-destination hot loops — the CSR
binary-heap Dijkstra and the BFS hop-column sweep — to machine code with
numba. Numba is an *optional* dependency (``pip install repro[native]``):
when it is not importable the kernels degrade to the reference
``"python"`` implementations with a one-time :class:`RuntimeWarning`, and
every caller keeps producing bit-identical results — the degradation is
an implementation detail, never a behaviour change
(``tests/parallel/test_native_fallback.py`` asserts both halves).

Bit-identity of the jitted kernels does not rely on replicating
``heapq``'s exact pop order: with strictly positive weights the final
``(dist, parent)`` pair is the unique Bellman fixpoint under the
``(distance, channel id)`` tie-break — a property of the fixpoint, not
of the relaxation schedule — so any correct Dijkstra that applies the
same relaxation predicate (``nd < dist[v] or (nd == dist[v] and
c < parent[v])``) lands on the same arrays (see
:mod:`repro.parallel.kernel` for the same argument applied to the numpy
kernel; the differential suite asserts it per call).

The jitted functions operate on flat arrays only (no Fabric object
crosses the jit boundary), so they run unchanged against shared-memory
fabric views (:mod:`repro.parallel.shm`) inside pool workers.
"""

from __future__ import annotations

import warnings

import numpy as np

INT64_INF = np.iinfo(np.int64).max

#: resolved lazily by :func:`numba_available` / :func:`load_native`
_STATE: dict = {"checked": False, "impl": None, "warned": False}


def numba_available() -> bool:
    """True iff numba imports (cached after the first probe)."""
    return load_native() is not None


def reset_probe_for_tests() -> None:
    """Forget the cached probe result (test hook)."""
    _STATE.update(checked=False, impl=None, warned=False)


def warn_native_fallback() -> None:
    """Emit the one-time 'native degraded to python' warning."""
    if not _STATE["warned"]:
        _STATE["warned"] = True
        warnings.warn(
            "numba is not importable; kernel='native' falls back to the "
            "pure-python reference kernels (install the 'native' extra: "
            "pip install repro[native]). Results are bit-identical either way.",
            RuntimeWarning,
            stacklevel=3,
        )


def load_native():
    """The compiled kernel namespace, or ``None`` when numba is absent.

    The first call probes ``import numba`` and, on success, defines and
    caches the jitted functions; later calls return the cached namespace.
    Compilation itself is deferred to the first *invocation* (numba
    lazy-compiles per signature) and cached on disk (``cache=True``).
    """
    if _STATE["checked"]:
        return _STATE["impl"]
    _STATE["checked"] = True
    try:
        import numba
    except ImportError:
        _STATE["impl"] = None
        return None
    _STATE["impl"] = _build_kernels(numba)
    return _STATE["impl"]


def _build_kernels(numba):
    """Define the jitted kernels (only runs when numba is importable)."""
    njit = numba.njit

    @njit(cache=True, nogil=True)
    def _dijkstra_csr(
        n, dest, kinds, out_ptr, out_chan, chan_dst, reverse, weights
    ):  # pragma: no cover - requires numba
        dist = np.full(n, INT64_INF, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int32)
        settled = np.zeros(n, dtype=np.uint8)
        dist[dest] = 0
        # Array-backed binary min-heap of (dist, node), lazy deletion.
        cap = 4 * n + 8
        heap_d = np.empty(cap, dtype=np.int64)
        heap_v = np.empty(cap, dtype=np.int64)
        size = 0
        heap_d[0] = 0
        heap_v[0] = dest
        size = 1
        while size > 0:
            d = heap_d[0]
            u = heap_v[0]
            size -= 1
            heap_d[0] = heap_d[size]
            heap_v[0] = heap_v[size]
            # sift down
            i = 0
            while True:
                left = 2 * i + 1
                if left >= size:
                    break
                small = left
                right = left + 1
                if right < size and (
                    heap_d[right] < heap_d[left]
                    or (heap_d[right] == heap_d[left] and heap_v[right] < heap_v[left])
                ):
                    small = right
                if heap_d[small] < heap_d[i] or (
                    heap_d[small] == heap_d[i] and heap_v[small] < heap_v[i]
                ):
                    heap_d[i], heap_d[small] = heap_d[small], heap_d[i]
                    heap_v[i], heap_v[small] = heap_v[small], heap_v[i]
                    i = small
                else:
                    break
            if settled[u]:
                continue
            settled[u] = 1
            if u != dest and kinds[u] != 0:
                continue  # terminals never forward traffic for others
            for k in range(out_ptr[u], out_ptr[u + 1]):
                c_out = out_chan[k]
                c = reverse[c_out]
                v = chan_dst[c_out]
                if settled[v]:
                    continue
                nd = d + weights[c]
                if nd < dist[v] or (nd == dist[v] and c < parent[v]):
                    dist[v] = nd
                    parent[v] = c
                    if size >= cap:  # grow (rare: lazy deletions pile up)
                        new_cap = cap * 2
                        nh_d = np.empty(new_cap, dtype=np.int64)
                        nh_v = np.empty(new_cap, dtype=np.int64)
                        nh_d[:size] = heap_d[:size]
                        nh_v[:size] = heap_v[:size]
                        heap_d = nh_d
                        heap_v = nh_v
                        cap = new_cap
                    # sift up
                    i = size
                    heap_d[i] = nd
                    heap_v[i] = v
                    size += 1
                    while i > 0:
                        up = (i - 1) // 2
                        if heap_d[i] < heap_d[up] or (
                            heap_d[i] == heap_d[up] and heap_v[i] < heap_v[up]
                        ):
                            heap_d[i], heap_d[up] = heap_d[up], heap_d[i]
                            heap_v[i], heap_v[up] = heap_v[up], heap_v[i]
                            i = up
                        else:
                            break
        return dist, parent

    @njit(cache=True, nogil=True)
    def _hops_csr(
        n, dest, kinds, out_ptr, out_chan, chan_dst
    ):  # pragma: no cover - requires numba
        hops = np.full(n, -1, dtype=np.int32)
        hops[dest] = 0
        queue = np.empty(n, dtype=np.int64)
        queue[0] = dest
        head = 0
        tail = 1
        while head < tail:
            u = queue[head]
            head += 1
            if u != dest and kinds[u] != 0:
                continue
            level = hops[u] + 1
            for k in range(out_ptr[u], out_ptr[u + 1]):
                v = chan_dst[out_chan[k]]
                if hops[v] < 0:
                    hops[v] = level
                    queue[tail] = v
                    tail += 1
        return hops

    @njit(cache=True, nogil=True)
    def _update_weights_csr(
        dest, dist, parent, weights, cnt, chan_dst, order
    ):  # pragma: no cover - requires numba
        # ``order`` holds the finite-distance nodes farthest-first; the
        # caller precomputed it (argsort stays in numpy for exactness).
        for idx in range(order.shape[0]):
            v = order[idx]
            c = parent[v]
            if c < 0:
                continue
            weights[c] += cnt[v]
            cnt[chan_dst[c]] += cnt[v]

    class _Kernels:
        dijkstra_csr = staticmethod(_dijkstra_csr)
        hops_csr = staticmethod(_hops_csr)
        update_weights_csr = staticmethod(_update_weights_csr)

    return _Kernels


# ----------------------------------------------------------------------
# Fabric-level wrappers (the engine/executor entry points)
# ----------------------------------------------------------------------
def dijkstra_to_dest_native(fabric, dest: int, weights: np.ndarray):
    """Weighted shortest paths to ``dest`` with the jitted CSR kernel.

    Falls back to :func:`repro.core.sssp.dijkstra_to_dest` (after a
    one-time warning) when numba is absent — same ``(dist, parent)``
    either way.
    """
    impl = load_native()
    if impl is None:
        from repro.core.sssp import dijkstra_to_dest

        warn_native_fallback()
        return dijkstra_to_dest(fabric, dest, weights)
    return impl.dijkstra_csr(
        fabric.num_nodes,
        dest,
        fabric.kinds,
        fabric.out_ptr,
        fabric.out_chan,
        fabric.channels.dst,
        fabric.channels.reverse,
        weights,
    )


def hops_to_dest_native(fabric, dest: int) -> np.ndarray:
    """BFS hop column with the jitted kernel.

    Without numba this degrades — like every ``"native"`` entry point —
    to the ``"python"`` reference: the heap Dijkstra on unit weights,
    whose distances *are* hop counts.
    """
    impl = load_native()
    if impl is None:
        from repro.core.sssp import dijkstra_to_dest

        warn_native_fallback()
        ones = np.ones(fabric.num_channels, dtype=np.int64)
        dist, _ = dijkstra_to_dest(fabric, dest, ones)
        return np.where(dist == INT64_INF, -1, dist).astype(np.int32)
    return impl.hops_csr(
        fabric.num_nodes,
        dest,
        fabric.kinds,
        fabric.out_ptr,
        fabric.out_chan,
        fabric.channels.dst,
    )
