"""Exact, order-preserving reduction for fanned-out routing columns.

The data dependency that makes SSSP hard to parallelize is the balancing
weights: destination *t*'s Dijkstra runs on weights updated by every
destination before it, so per-destination trees cannot simply be computed
concurrently. The reduction here resolves that dependency *exactly*:

1. Workers ship back the **hop column** per destination — minimum hop
   counts, which do not depend on the weights at all and therefore never
   go stale (see :mod:`repro.parallel.executor`).
2. In the fixed serial destination order, :meth:`ExactReduction.refine`
   rebuilds the weighted tree *restricted to the min-hop DAG* under the
   current weights — a handful of vectorized level sweeps instead of a
   full Dijkstra. Because SSSP's initial weight ``W0 = T**2 + 1``
   dominates any accumulated balancing weight, the weighted shortest
   paths are hop-minimal in practice, and the DAG-restricted optimum
   coincides with the unrestricted one.
3. :meth:`ExactReduction.validate` then *proves* the candidate column is
   exactly what serial Dijkstra would produce: with strictly positive
   weights, ``(dist, parent)`` is the serial answer **iff** it is the
   unique Bellman fixpoint with the lowest-channel-id tie-break
   (``parent[v]`` = min channel id among minimisers of
   ``dist[u] + weight[c]`` over channels ``(v -> u)`` into forwarding
   nodes). That is one vectorized O(E) pass. If validation ever fails
   (e.g. a pathological fabric where balancing weight overwhelms ``W0``),
   the caller falls back to a full per-destination Dijkstra — so the
   parallel engine is bit-identical to the serial one *unconditionally*,
   not merely when the hop-minimality heuristic holds.

``weights`` are then advanced with the ordinary
:func:`repro.core.sssp.update_weights_for_dest`, keeping the weight
stream byte-for-byte equal to the serial engine's.
"""

from __future__ import annotations

import numpy as np

from repro.network.fabric import Fabric

INT64_INF = np.iinfo(np.int64).max


class ExactReduction:
    """Per-run scratch state for the refine/validate steps.

    Groups the fabric's channels by their source node once (reusing the
    CSR out-channel layout) so each per-destination step is pure vector
    arithmetic.
    """

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        # Channels grouped by src node, lowest channel id first — exactly
        # the CSR out-channel ordering.
        self.chan = fabric.out_chan.astype(np.int64)
        self.chan_src = fabric.channels.src[self.chan]
        self.chan_dst = fabric.channels.dst[self.chan]
        self.dst_is_switch = fabric.kinds[self.chan_dst] == 0  # NodeKind.SWITCH

    # ------------------------------------------------------------------
    def refine(self, dest: int, hops: np.ndarray, weights: np.ndarray):
        """Weighted ``(dist, parent)`` column restricted to the min-hop DAG.

        ``hops`` is the worker-computed hop column for ``dest``. The
        result is a *candidate* — callers must :meth:`validate` it.
        """
        n = self.fabric.num_nodes
        dist = np.full(n, INT64_INF, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int32)
        dist[dest] = 0
        hv = hops[self.chan_src]
        hu = hops[self.chan_dst]
        receives = self.dst_is_switch | (self.chan_dst == dest)
        dag = receives & (hu >= 0) & (hv == hu + 1)
        w = weights[self.chan]
        max_hop = int(hops.max())
        for level in range(1, max_hop + 1):
            sel = np.flatnonzero(dag & (hv == level))
            if not len(sel):
                continue
            cand = dist[self.chan_dst[sel]] + w[sel]
            c_ids = self.chan[sel]
            v_ids = self.chan_src[sel]
            order = np.lexsort((c_ids, cand, v_ids))
            v_sorted = v_ids[order]
            first = np.ones(len(v_sorted), dtype=bool)
            first[1:] = v_sorted[1:] != v_sorted[:-1]
            v_best = v_sorted[first]
            dist[v_best] = cand[order][first]
            parent[v_best] = c_ids[order][first].astype(np.int32)
        return dist, parent

    # ------------------------------------------------------------------
    def validate(
        self, dest: int, dist: np.ndarray, parent: np.ndarray, weights: np.ndarray
    ) -> bool:
        """True iff ``(dist, parent)`` is exactly the serial Dijkstra answer.

        Checks the Bellman fixpoint with the serial tie-break in one
        vectorized pass: for every node ``v != dest``,
        ``dist[v] == min(dist[u] + w[c])`` over channels ``c = (v -> u)``
        into forwarding nodes, and ``parent[v]`` is the lowest channel id
        attaining that minimum (with unreachable nodes at INF / -1).
        """
        receives = self.dst_is_switch | (self.chan_dst == dest)
        du = dist[self.chan_dst]
        usable = receives & (du < INT64_INF)
        # The inner where keeps INF + w from overflowing on masked lanes.
        cand = np.where(usable, du + np.where(usable, weights[self.chan], 0), INT64_INF)
        order = np.lexsort((self.chan, cand, self.chan_src))
        v_sorted = self.chan_src[order]
        first = np.ones(len(v_sorted), dtype=bool)
        first[1:] = v_sorted[1:] != v_sorted[:-1]
        v_best = v_sorted[first]
        d_best = cand[order][first]
        c_best = self.chan[order][first]
        n = self.fabric.num_nodes
        fix_d = np.full(n, INT64_INF, dtype=np.int64)
        fix_c = np.full(n, -1, dtype=np.int64)
        fix_d[v_best] = d_best
        reached = d_best < INT64_INF
        fix_c[v_best[reached]] = c_best[reached]
        fix_d[dest] = 0
        fix_c[dest] = -1
        if not np.array_equal(fix_d, dist):
            return False
        return bool(np.array_equal(fix_c, parent.astype(np.int64)))
