"""Shared-memory plumbing for the parallel executor.

Pickling dominates the fan-out cost of :mod:`repro.parallel.executor` at
scale: every batch used to ship its hop columns back through the result
queue (``num_nodes * 4`` bytes per destination), and under the spawn
start method each worker also deserialised the whole fabric. This module
replaces both copies with :mod:`multiprocessing.shared_memory`:

* :class:`FabricArena` — the parent packs the fabric's routing-relevant
  CSR arrays (node kinds, channel endpoint/reverse columns, out-channel
  CSR, terminal list) into **one** shared segment; workers map it and
  wrap the views in a :class:`FabricView`, a duck-typed stand-in that the
  kernels accept wherever a :class:`~repro.network.fabric.Fabric` goes.
* :class:`ColumnBlock` — a ``rows x num_nodes`` int32 segment per
  in-flight batch. Workers write each destination's hop column straight
  into its assigned row; the parent reads the same physical pages during
  reduction. The executor rotates two blocks (batch ``b+1`` fills one
  while batch ``b`` is being reduced), which is race-free because the
  parent only reads a batch's rows after every chunk of that batch has
  returned, and by then the writers have moved on to the other block.

Nothing about the *values* changes — workers run the same kernels on the
same arrays, rows land in the same deterministic order, and the parent's
ExactReduction consumes them in submission order — so the executor's
bit-identity contract survives unchanged (``tests/parallel`` asserts the
shm and pickling paths equal serial per topology family).

Lifecycle: the parent owns every segment and is the only process that
``unlink``s, in a ``finally`` as soon as the run ends (crashed runs leak
at most until the interpreter exits, where atexit unlinking still runs
via the arena's finalizer). Workers merely ``close()`` their mappings at
process exit. Attaching in a worker deliberately *unregisters* the
segment from that process's ``resource_tracker``: before Python 3.13
(``track=False``) every attach re-registered the name, and the first
worker to exit would tear the segment down under everyone else.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory

import numpy as np

#: fabric arrays shipped to workers, in packing order
_FABRIC_FIELDS = (
    ("kinds", np.int8),
    ("chan_src", np.int32),
    ("chan_dst", np.int32),
    ("chan_reverse", np.int32),
    ("out_ptr", np.int64),
    ("out_chan", np.int32),
    ("terminals", np.int32),
)

_ALIGN = 64  # cache-line align each packed array


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Python 3.13 grew ``track=False``; earlier versions register every
    attach with the per-process resource tracker, which then unlinks the
    segment when *any* attaching process exits (spawn children get their
    own tracker and "clean up" the parent's live segment; fork children
    share the parent's tracker, where an extra register/unregister pair
    corrupts its bookkeeping). Suppressing the register during the attach
    — the documented pre-3.13 workaround — restores single-owner
    semantics: only the creating parent's register/unlink pair ever
    reaches a tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register

        def _skip_shm_register(rname, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                orig_register(rname, rtype)

        resource_tracker.register = _skip_shm_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register


class _Segment:
    """A created shared-memory segment with guaranteed parent cleanup."""

    def __init__(self, size: int):
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, size))
        self.name = self.shm.name
        self._finalizer = atexit.register(self.destroy)

    def destroy(self) -> None:
        """Close and unlink (idempotent)."""
        if self.shm is None:
            return
        shm, self.shm = self.shm, None
        try:
            atexit.unregister(self.destroy)
        except Exception:  # pragma: no cover
            pass
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class FabricView:
    """Duck-typed fabric over shared (or any) flat arrays.

    Provides exactly the surface the routing kernels touch: the CSR
    arrays, ``channels.src/dst/reverse``, the node/channel counts and the
    ``is_switch``/``out_channels`` accessors. Kind semantics follow
    :class:`~repro.network.fabric.NodeKind` (0 = switch, 1 = terminal).
    """

    class _Channels:
        __slots__ = ("src", "dst", "reverse")

        def __init__(self, src, dst, reverse):
            self.src = src
            self.dst = dst
            self.reverse = reverse

    def __init__(self, kinds, chan_src, chan_dst, chan_reverse, out_ptr, out_chan, terminals):
        self.kinds = kinds
        self.channels = self._Channels(chan_src, chan_dst, chan_reverse)
        self.out_ptr = out_ptr
        self.out_chan = out_chan
        self.terminals = terminals
        self.num_nodes = len(kinds)
        self.num_channels = len(chan_src)

    @property
    def num_terminals(self) -> int:
        return len(self.terminals)

    def is_switch(self, node: int) -> bool:
        return self.kinds[node] == 0

    def out_channels(self, node: int) -> np.ndarray:
        return self.out_chan[self.out_ptr[node] : self.out_ptr[node + 1]]


def _pack_layout(arrays: dict[str, np.ndarray]):
    """(total size, {field: (offset, length, dtype-str)}) for one segment."""
    offset = 0
    layout = {}
    for field, arr in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        layout[field] = (offset, len(arr), arr.dtype.str)
        offset += arr.nbytes
    return offset, layout


class FabricArena:
    """Parent-side shared-memory snapshot of a fabric's routing arrays.

    ``spec`` is a small picklable dict shipped to pool initializers;
    workers rebuild a :class:`FabricView` with :func:`attach_fabric`.
    """

    def __init__(self, fabric):
        arrays = {
            "kinds": np.ascontiguousarray(fabric.kinds, dtype=np.int8),
            "chan_src": np.ascontiguousarray(fabric.channels.src, dtype=np.int32),
            "chan_dst": np.ascontiguousarray(fabric.channels.dst, dtype=np.int32),
            "chan_reverse": np.ascontiguousarray(fabric.channels.reverse, dtype=np.int32),
            "out_ptr": np.ascontiguousarray(fabric.out_ptr, dtype=np.int64),
            "out_chan": np.ascontiguousarray(fabric.out_chan, dtype=np.int32),
            "terminals": np.ascontiguousarray(fabric.terminals, dtype=np.int32),
        }
        assert set(arrays) == {f for f, _ in _FABRIC_FIELDS}
        size, layout = _pack_layout(arrays)
        self._segment = _Segment(size)
        buf = self._segment.shm.buf
        for field, (off, length, dstr) in layout.items():
            view = np.ndarray((length,), dtype=np.dtype(dstr), buffer=buf, offset=off)
            view[:] = arrays[field]
        self.spec = {"name": self._segment.name, "layout": layout}

    def destroy(self) -> None:
        self._segment.destroy()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.destroy()
        return False


def attach_fabric(spec: dict):
    """Worker-side: map a :class:`FabricArena` spec into a FabricView.

    Returns ``(view, shm)`` — the caller must keep ``shm`` referenced for
    as long as the view's arrays are in use (the executor pins it in the
    worker-process state for the process lifetime).
    """
    shm = _untracked_attach(spec["name"])
    views = {}
    for field, (off, length, dstr) in spec["layout"].items():
        views[field] = np.ndarray((length,), dtype=np.dtype(dstr), buffer=shm.buf, offset=off)
    return FabricView(**views), shm


class ColumnBlock:
    """Parent-side ``rows x num_nodes`` int32 result block.

    ``array`` is the parent's view; workers attach by :attr:`spec` and
    write one row per destination (:func:`attach_columns`).
    """

    def __init__(self, rows: int, num_nodes: int):
        self._segment = _Segment(rows * num_nodes * 4)
        self.array = np.ndarray(
            (rows, num_nodes), dtype=np.int32, buffer=self._segment.shm.buf
        )
        self.spec = {"name": self._segment.name, "rows": rows, "num_nodes": num_nodes}

    def destroy(self) -> None:
        self._segment.destroy()


def attach_columns(spec: dict):
    """Worker-side: map a :class:`ColumnBlock` spec to its 2-D array.

    Returns ``(array, shm)``; keep ``shm`` referenced while writing.
    """
    shm = _untracked_attach(spec["name"])
    arr = np.ndarray((spec["rows"], spec["num_nodes"]), dtype=np.int32, buffer=shm.buf)
    return arr, shm
