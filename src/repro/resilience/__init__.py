"""Fail-in-place resilience: fault-event streams, incremental repair and
the chaos soak harness.

The paper motivates DFSSSP with fabrics that degrade in place — links
die, switches fail, and the subnet manager must keep routing
deadlock-free. This package turns the repo from "route once" into
"route, degrade, repair, verify — forever":

* :mod:`repro.resilience.events` — seeded :class:`FaultEvent` streams
  (link-down, switch-down, link-up) over one healthy baseline, with the
  map algebra that lets consecutive degraded fabrics compose;
* :mod:`repro.resilience.repair` — incremental repair that re-routes
  only the destinations whose forwarding entries traverse dead channels
  and re-verifies per-layer CDG acyclicity, escalating paths to other
  layers (or to a full DFSSSP run) only when a cycle would re-appear;
* :mod:`repro.resilience.chaos` — the :class:`ChaosRunner` soak harness
  replaying fault sequences against any registered engine, with
  JSON-serialisable survival/repair reports, plus
  :func:`run_service_soak`, the same stream driving a supervised
  :class:`~repro.service.supervisor.RoutingSupervisor` (serve mode).

See ``docs/resilience.md`` for the fault model and escalation rules, and
``docs/service.md`` for the supervised (serve-mode) runtime.
"""

from repro.resilience.chaos import (
    ChaosEventRecord,
    ChaosReport,
    ChaosRunner,
    ServiceSoakReport,
    run_service_soak,
)
from repro.resilience.events import (
    LINK_DOWN,
    LINK_UP,
    SWITCH_DOWN,
    FaultEvent,
    FaultInjector,
    random_fault_sequence,
    relative_degradation,
)
from repro.resilience.repair import repair_routing, translate_tables

__all__ = [
    "ChaosEventRecord",
    "ChaosReport",
    "ChaosRunner",
    "ServiceSoakReport",
    "run_service_soak",
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_DOWN",
    "FaultEvent",
    "FaultInjector",
    "random_fault_sequence",
    "relative_degradation",
    "repair_routing",
    "translate_tables",
]
