"""Chaos soak harness: replay fault sequences against a routing engine.

``route once`` becomes ``route, degrade, repair, verify — forever``: the
:class:`ChaosRunner` drives any registered engine through a seeded
:class:`~repro.resilience.events.FaultInjector` stream, repairs after
every event (incrementally where the engine supports it, via
:meth:`~repro.routing.base.RoutingEngine.reroute`), and *independently*
verifies after every event that

* every surviving terminal pair still routes (path extraction is the
  completeness check), and
* every virtual layer's CDG is still acyclic (deadlock-freedom).

The per-event records and the summary are JSON-serialisable so CI can
publish a soak report as a build artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

from repro.deadlock.verify import verify_deadlock_free
from repro.exceptions import ReproError
from repro.network.fabric import Fabric
from repro.obs import get_registry, span
from repro.resilience.events import LINK_UP, FaultInjector, relative_degradation
from repro.routing.base import RoutingEngine, RoutingResult
from repro.routing.paths import extract_paths
from repro.utils.atomicio import atomic_write_text


@dataclass
class ChaosEventRecord:
    """Outcome of one fault event (JSON-friendly)."""

    index: int
    kind: str
    detail: str
    action: str  # "repair" | "full" | "dead"
    seconds: float
    switches: int
    cables: int
    deadlock_free: bool | None = None
    layers_used: int | None = None
    destinations_repaired: int | None = None
    destinations_total: int | None = None
    escalations: int | None = None
    error: str | None = None


@dataclass
class ChaosReport:
    """Everything a soak run learned, plus aggregate statistics."""

    engine: str
    fabric: str
    seed: int | None
    events_requested: int
    records: list[ChaosEventRecord] = field(default_factory=list)
    survived: bool = True
    failure: str | None = None

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        repairs = fulls = escalations = 0
        repaired = examined = 0
        repair_s = full_s = 0.0
        for r in self.records:
            by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
            if r.action == "repair":
                repairs += 1
                repair_s += r.seconds
                repaired += r.destinations_repaired or 0
                examined += r.destinations_total or 0
                escalations += r.escalations or 0
            elif r.action == "full":
                fulls += 1
                full_s += r.seconds
        return {
            "engine": self.engine,
            "fabric": self.fabric,
            "seed": self.seed,
            "events_requested": self.events_requested,
            "events_applied": len(self.records),
            "survived": self.survived,
            "failure": self.failure,
            "events_by_kind": by_kind,
            "incremental_repairs": repairs,
            "full_reroutes": fulls,
            "escalations": escalations,
            "destinations_repaired": repaired,
            "destinations_examined": examined,
            "repair_fraction_mean": (repaired / examined) if examined else None,
            "mean_repair_seconds": (repair_s / repairs) if repairs else None,
            "mean_full_reroute_seconds": (full_s / fulls) if fulls else None,
        }

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "events": [asdict(r) for r in self.records]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> None:
        """Atomically write the full report (summary + events) as JSON."""
        atomic_write_text(path, self.to_json() + "\n")


class ChaosRunner:
    """Replay seeded fault sequences against one routing engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.routing.base.RoutingEngine` instance. Engines
        without incremental repair (everything except SSSP/DFSSSP) do a
        full reroute per event; engines that reject degraded fabrics
        (DOR, fat-tree) die on their first structural failure, which the
        report records instead of raising.
    verify:
        Independently re-verify reachability and per-layer acyclicity
        after every event (default; the whole point of the harness).
    """

    def __init__(self, engine: RoutingEngine, verify: bool = True):
        self.engine = engine
        self.verify = verify

    def run(
        self,
        fabric: Fabric,
        num_events: int = 50,
        seed: int | None = None,
        p_switch_down: float = 0.15,
        p_link_up: float = 0.2,
        switch_links_only: bool = True,
    ) -> ChaosReport:
        reg = get_registry()
        m_events = reg.counter("chaos_events_applied", "fault events applied during chaos soaks")
        m_deaths = reg.counter(
            "chaos_engine_deaths", "chaos soaks ended by an engine failure",
            engine=self.engine.name,
        )
        report = ChaosReport(
            engine=self.engine.name,
            fabric=repr(fabric),
            seed=seed,
            events_requested=num_events,
        )
        injector = FaultInjector(
            fabric,
            seed=seed,
            p_switch_down=p_switch_down,
            p_link_up=p_link_up,
            switch_links_only=switch_links_only,
        )
        with span("chaos.run", engine=self.engine.name, events=num_events):
            try:
                result = self.engine.route(fabric)
            except ReproError as err:
                report.survived = False
                report.failure = f"initial route failed: {type(err).__name__}: {err}"
                m_deaths.inc()
                return report
            self._verify(result, report, record=None)
            if not report.survived:
                m_deaths.inc()
                return report

            prev_state = injector.current
            for index in range(num_events):
                stepped = injector.step()
                if stepped is None:
                    break  # nothing left to fail or repair
                event, cur_state = stepped
                rel = relative_degradation(prev_state, cur_state)
                record = ChaosEventRecord(
                    index=index,
                    kind=event.kind,
                    detail=event.describe(fabric),
                    action="full",
                    seconds=0.0,
                    switches=cur_state.fabric.num_switches,
                    cables=cur_state.fabric.num_channels // 2,
                )
                t0 = time.perf_counter()
                try:
                    if event.kind == LINK_UP:
                        # Link-up means new channels: rebuild from scratch.
                        result = self.engine.route(cur_state.fabric)
                    else:
                        result = self.engine.reroute(result, rel)
                except ReproError as err:
                    record.seconds = time.perf_counter() - t0
                    record.action = "dead"
                    record.error = f"{type(err).__name__}: {err}"
                    report.records.append(record)
                    report.survived = False
                    report.failure = f"event {index} ({record.detail}): {record.error}"
                    m_deaths.inc()
                    break
                record.seconds = time.perf_counter() - t0
                repair = result.stats.get("repair")
                if repair is not None:
                    record.action = "repair"
                    record.destinations_repaired = repair["destinations_repaired"]
                    record.destinations_total = repair["destinations_total"]
                    record.escalations = repair["escalations"]
                self._verify(result, report, record)
                report.records.append(record)
                m_events.inc()
                if not report.survived:
                    m_deaths.inc()
                    break
                prev_state = cur_state
        return report

    # ------------------------------------------------------------------
    def _verify(self, result: RoutingResult, report: ChaosReport, record) -> None:
        if not self.verify:
            return
        try:
            paths = extract_paths(result.tables)
        except ReproError as err:
            report.survived = False
            report.failure = f"unreachable pair: {err}"
            if record is not None:
                record.error = report.failure
            return
        if result.layered is not None:
            vr = verify_deadlock_free(result.layered, paths)
            if record is not None:
                record.deadlock_free = vr.deadlock_free
                record.layers_used = result.layered.layers_used
            if not vr.deadlock_free:
                report.survived = False
                report.failure = f"cyclic layer CDG: layers {sorted(vr.cycles)}"
                if record is not None:
                    record.error = report.failure


# ----------------------------------------------------------------------
# Service-mode soak: the chaos stream driving a RoutingSupervisor
# ----------------------------------------------------------------------
@dataclass
class ServiceSoakReport:
    """Outcome of a supervised (service-mode) soak run.

    ``records`` holds one dict per processed batch: the supervisor's
    :class:`~repro.service.supervisor.BatchOutcome` plus the independent
    verification of what :meth:`~repro.service.supervisor.RoutingSupervisor.serving`
    returned *after* the batch. ``survived`` means a valid (fresh or
    explicitly stale) routing was served after every event — the
    acceptance bar for service mode.
    """

    engine: str
    fabric: str
    seed: int | None
    events_requested: int
    events_submitted: int = 0
    skipped_events: int = 0
    records: list[dict] = field(default_factory=list)
    survived: bool = True
    failure: str | None = None
    final_state: str | None = None
    final_version: int | None = None

    def summary(self) -> dict:
        by_action: dict[str, int] = {}
        timeouts = attempts = stale_served = 0
        for r in self.records:
            by_action[r["action"]] = by_action.get(r["action"], 0) + 1
            timeouts += r.get("timeouts", 0)
            attempts += r.get("attempts", 0)
            if r.get("served_stale"):
                stale_served += 1
        return {
            "mode": "service",
            "engine": self.engine,
            "fabric": self.fabric,
            "seed": self.seed,
            "events_requested": self.events_requested,
            "events_submitted": self.events_submitted,
            "skipped_events": self.skipped_events,
            "batches": len(self.records),
            "batches_by_action": by_action,
            "ladder_attempts": attempts,
            "compute_timeouts": timeouts,
            "stale_serves": stale_served,
            "survived": self.survived,
            "failure": self.failure,
            "final_state": self.final_state,
            "final_version": self.final_version,
        }

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "batches": self.records}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> None:
        """Atomically write the full report as JSON."""
        atomic_write_text(path, self.to_json() + "\n")


def run_service_soak(
    supervisor,
    num_events: int,
    *,
    seed: int | None = None,
    p_switch_down: float = 0.15,
    p_link_up: float = 0.2,
    switch_links_only: bool = True,
    burst_max: int = 1,
    inject_timeout_at: set[int] | frozenset[int] = frozenset(),
    kill_after: int | None = None,
    kill_fn=None,
    on_batch=None,
) -> ServiceSoakReport:
    """Drive a :class:`~repro.service.supervisor.RoutingSupervisor` through
    a seeded fault stream, verifying what it *serves* after every batch.

    The injector replays deterministically from ``seed`` over the
    supervisor's healthy baseline, so a restored supervisor resumes the
    same stream: events already consumed before the crash (the
    supervisor's ``events_submitted``) are fast-forwarded past, not
    re-applied.

    Parameters
    ----------
    burst_max:
        Submit up to this many events before each :meth:`process` call
        (exercises coalescing; bursts sized by the stream's own RNG).
    inject_timeout_at:
        Event indices at which the incremental-repair deadline is forced
        to zero — the repair rung times out and the ladder escalates.
    kill_after / kill_fn:
        Once at least ``kill_after`` events have been submitted (and
        checkpointed), call ``kill_fn`` — the serve CLI passes a hard
        ``os._exit`` to simulate SIGKILL mid-soak.
    on_batch:
        Called with each batch's record dict right after serving was
        verified — the serve CLI hooks its SLO-engine tick and live
        ``--top`` redraw here.
    """
    from repro.deadlock.verify import verify_deadlock_free as _verify_df

    baseline = supervisor.baseline
    injector = FaultInjector(
        baseline,
        seed=seed,
        p_switch_down=p_switch_down,
        p_link_up=p_link_up,
        switch_links_only=switch_links_only,
    )
    skip = supervisor.events_submitted
    for _ in range(skip):
        if injector.step() is None:  # pragma: no cover - stream exhausted early
            break
    report = ServiceSoakReport(
        engine=supervisor.engine.name,
        fabric=repr(baseline),
        seed=seed,
        events_requested=num_events,
        events_submitted=skip,
        skipped_events=skip,
    )
    supervisor.extra["soak"] = {
        "seed": seed,
        "num_events": num_events,
        "p_switch_down": p_switch_down,
        "p_link_up": p_link_up,
        "switch_links_only": switch_links_only,
        "burst_max": burst_max,
    }

    def verify_serving(record: dict | None) -> bool:
        served = supervisor.serving()
        try:
            paths = extract_paths(served.result.tables)
        except ReproError as err:
            report.survived = False
            report.failure = f"served unroutable tables: {err}"
            return False
        deadlock_free = None
        if served.result.layered is not None:
            vr = _verify_df(served.result.layered, paths)
            deadlock_free = vr.deadlock_free
            if not vr.deadlock_free:
                report.survived = False
                report.failure = f"served cyclic layer CDG: layers {sorted(vr.cycles)}"
                return False
        if record is not None:
            record["served_stale"] = served.stale
            record["served_version"] = served.version
            record["served_state"] = served.state
            record["served_deadlock_free"] = deadlock_free
        return True

    with span("chaos.service_soak", engine=supervisor.engine.name, events=num_events):
        if not verify_serving(None):  # pragma: no cover - ctor verifies already
            return _finalise(report, supervisor)
        while report.events_submitted < num_events:
            room = num_events - report.events_submitted
            # Burst size derives from the event index, not an RNG draw, so
            # a restored run replays the exact submit/process cadence.
            burst = 1 if burst_max <= 1 else 1 + report.events_submitted % burst_max
            events = []
            for _ in range(min(burst, room)):
                stepped = injector.step()
                if stepped is None:
                    break
                events.append(stepped[0])
            if not events:
                break  # fully degraded; nothing left to fail or repair
            first_index = report.events_submitted
            for event in events:
                supervisor.submit(event)
            report.events_submitted += len(events)

            injected = any(
                first_index + i in inject_timeout_at for i in range(len(events))
            )
            saved_policy = supervisor.policy
            if injected:
                supervisor.policy = saved_policy.with_(repair_deadline_s=0.0)
            try:
                outcome = supervisor.process()
            finally:
                supervisor.policy = saved_policy
            record = outcome.to_dict() if outcome is not None else {"action": "none"}
            record["events_range"] = [first_index, report.events_submitted - 1]
            record["injected_timeout"] = injected
            ok = verify_serving(record)
            report.records.append(record)
            if on_batch is not None:
                on_batch(record)
            if not ok:
                break
            if (
                kill_after is not None
                and kill_fn is not None
                and report.events_submitted >= kill_after
            ):
                kill_fn()  # usually never returns (os._exit)
                break  # pragma: no cover - test doubles return
    return _finalise(report, supervisor)


def _finalise(report: ServiceSoakReport, supervisor) -> ServiceSoakReport:
    served = supervisor.serving()
    report.final_state = served.state
    report.final_version = served.version
    return report
