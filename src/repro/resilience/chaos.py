"""Chaos soak harness: replay fault sequences against a routing engine.

``route once`` becomes ``route, degrade, repair, verify — forever``: the
:class:`ChaosRunner` drives any registered engine through a seeded
:class:`~repro.resilience.events.FaultInjector` stream, repairs after
every event (incrementally where the engine supports it, via
:meth:`~repro.routing.base.RoutingEngine.reroute`), and *independently*
verifies after every event that

* every surviving terminal pair still routes (path extraction is the
  completeness check), and
* every virtual layer's CDG is still acyclic (deadlock-freedom).

The per-event records and the summary are JSON-serialisable so CI can
publish a soak report as a build artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

from repro.deadlock.verify import verify_deadlock_free
from repro.exceptions import ReproError
from repro.network.fabric import Fabric
from repro.obs import get_registry, span
from repro.resilience.events import LINK_UP, FaultInjector, relative_degradation
from repro.routing.base import RoutingEngine, RoutingResult
from repro.routing.paths import extract_paths


@dataclass
class ChaosEventRecord:
    """Outcome of one fault event (JSON-friendly)."""

    index: int
    kind: str
    detail: str
    action: str  # "repair" | "full" | "dead"
    seconds: float
    switches: int
    cables: int
    deadlock_free: bool | None = None
    layers_used: int | None = None
    destinations_repaired: int | None = None
    destinations_total: int | None = None
    escalations: int | None = None
    error: str | None = None


@dataclass
class ChaosReport:
    """Everything a soak run learned, plus aggregate statistics."""

    engine: str
    fabric: str
    seed: int | None
    events_requested: int
    records: list[ChaosEventRecord] = field(default_factory=list)
    survived: bool = True
    failure: str | None = None

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        repairs = fulls = escalations = 0
        repaired = examined = 0
        repair_s = full_s = 0.0
        for r in self.records:
            by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
            if r.action == "repair":
                repairs += 1
                repair_s += r.seconds
                repaired += r.destinations_repaired or 0
                examined += r.destinations_total or 0
                escalations += r.escalations or 0
            elif r.action == "full":
                fulls += 1
                full_s += r.seconds
        return {
            "engine": self.engine,
            "fabric": self.fabric,
            "seed": self.seed,
            "events_requested": self.events_requested,
            "events_applied": len(self.records),
            "survived": self.survived,
            "failure": self.failure,
            "events_by_kind": by_kind,
            "incremental_repairs": repairs,
            "full_reroutes": fulls,
            "escalations": escalations,
            "destinations_repaired": repaired,
            "destinations_examined": examined,
            "repair_fraction_mean": (repaired / examined) if examined else None,
            "mean_repair_seconds": (repair_s / repairs) if repairs else None,
            "mean_full_reroute_seconds": (full_s / fulls) if fulls else None,
        }

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "events": [asdict(r) for r in self.records]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class ChaosRunner:
    """Replay seeded fault sequences against one routing engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.routing.base.RoutingEngine` instance. Engines
        without incremental repair (everything except SSSP/DFSSSP) do a
        full reroute per event; engines that reject degraded fabrics
        (DOR, fat-tree) die on their first structural failure, which the
        report records instead of raising.
    verify:
        Independently re-verify reachability and per-layer acyclicity
        after every event (default; the whole point of the harness).
    """

    def __init__(self, engine: RoutingEngine, verify: bool = True):
        self.engine = engine
        self.verify = verify

    def run(
        self,
        fabric: Fabric,
        num_events: int = 50,
        seed: int | None = None,
        p_switch_down: float = 0.15,
        p_link_up: float = 0.2,
        switch_links_only: bool = True,
    ) -> ChaosReport:
        reg = get_registry()
        m_events = reg.counter("chaos_events_applied", "fault events applied during chaos soaks")
        m_deaths = reg.counter(
            "chaos_engine_deaths", "chaos soaks ended by an engine failure",
            engine=self.engine.name,
        )
        report = ChaosReport(
            engine=self.engine.name,
            fabric=repr(fabric),
            seed=seed,
            events_requested=num_events,
        )
        injector = FaultInjector(
            fabric,
            seed=seed,
            p_switch_down=p_switch_down,
            p_link_up=p_link_up,
            switch_links_only=switch_links_only,
        )
        with span("chaos.run", engine=self.engine.name, events=num_events):
            try:
                result = self.engine.route(fabric)
            except ReproError as err:
                report.survived = False
                report.failure = f"initial route failed: {type(err).__name__}: {err}"
                m_deaths.inc()
                return report
            self._verify(result, report, record=None)
            if not report.survived:
                m_deaths.inc()
                return report

            prev_state = injector.current
            for index in range(num_events):
                stepped = injector.step()
                if stepped is None:
                    break  # nothing left to fail or repair
                event, cur_state = stepped
                rel = relative_degradation(prev_state, cur_state)
                record = ChaosEventRecord(
                    index=index,
                    kind=event.kind,
                    detail=event.describe(fabric),
                    action="full",
                    seconds=0.0,
                    switches=cur_state.fabric.num_switches,
                    cables=cur_state.fabric.num_channels // 2,
                )
                t0 = time.perf_counter()
                try:
                    if event.kind == LINK_UP:
                        # Link-up means new channels: rebuild from scratch.
                        result = self.engine.route(cur_state.fabric)
                    else:
                        result = self.engine.reroute(result, rel)
                except ReproError as err:
                    record.seconds = time.perf_counter() - t0
                    record.action = "dead"
                    record.error = f"{type(err).__name__}: {err}"
                    report.records.append(record)
                    report.survived = False
                    report.failure = f"event {index} ({record.detail}): {record.error}"
                    m_deaths.inc()
                    break
                record.seconds = time.perf_counter() - t0
                repair = result.stats.get("repair")
                if repair is not None:
                    record.action = "repair"
                    record.destinations_repaired = repair["destinations_repaired"]
                    record.destinations_total = repair["destinations_total"]
                    record.escalations = repair["escalations"]
                self._verify(result, report, record)
                report.records.append(record)
                m_events.inc()
                if not report.survived:
                    m_deaths.inc()
                    break
                prev_state = cur_state
        return report

    # ------------------------------------------------------------------
    def _verify(self, result: RoutingResult, report: ChaosReport, record) -> None:
        if not self.verify:
            return
        try:
            paths = extract_paths(result.tables)
        except ReproError as err:
            report.survived = False
            report.failure = f"unreachable pair: {err}"
            if record is not None:
                record.error = report.failure
            return
        if result.layered is not None:
            vr = verify_deadlock_free(result.layered, paths)
            if record is not None:
                record.deadlock_free = vr.deadlock_free
                record.layers_used = result.layered.layers_used
            if not vr.deadlock_free:
                report.survived = False
                report.failure = f"cyclic layer CDG: layers {sorted(vr.cycles)}"
                if record is not None:
                    record.error = report.failure
