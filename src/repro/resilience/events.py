"""Fault-event stream model layered on :mod:`repro.network.faults`.

Fail-in-place operation is a *sequence*: cables die one at a time,
switches drop with all their cables, technicians occasionally bring a
cable back. :class:`FaultInjector` models that sequence as a seeded
stream of :class:`FaultEvent` steps over one healthy baseline fabric.
Every event is identified by healthy-fabric ids (cable keys / node ids),
so arbitrary histories compose: the cumulative dead sets are re-applied
to the baseline via :func:`repro.network.faults.degrade`, and
:func:`relative_degradation` derives the step-to-step node/channel maps
that :mod:`repro.resilience.repair` needs to splice forwarding tables.

Events that would make the fabric unroutable (disconnect it or orphan a
terminal) are never emitted — a real subnet manager would drop the dead
partition's endpoints, but our experiments keep the terminal population
fixed, matching :func:`repro.network.faults.fail_switches`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.network.fabric import Fabric
from repro.obs.recorder import record_event
from repro.network.faults import (
    DegradedFabric,
    cable_keys,
    degrade,
    identity_degradation,
)
from repro.network.validate import check_routable
from repro.utils.prng import make_rng

#: event kinds in stream order of preference checks
LINK_DOWN = "link_down"
SWITCH_DOWN = "switch_down"
LINK_UP = "link_up"


@dataclass(frozen=True)
class FaultEvent:
    """One step of a fault sequence, in healthy-fabric coordinates.

    ``cable`` is a :func:`repro.network.faults.cable_keys` key for
    link events; ``switch`` a healthy node id for switch events.
    """

    kind: str
    cable: tuple[int, int] | None = None
    switch: int | None = None

    def describe(self, fabric: Fabric) -> str:
        if self.kind == SWITCH_DOWN:
            return f"switch_down {fabric.names[self.switch]}"
        cid = self.cable[0]
        a = int(fabric.channels.src[cid])
        b = int(fabric.channels.dst[cid])
        return f"{self.kind} {fabric.names[a]}<->{fabric.names[b]}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cable": list(self.cable) if self.cable is not None else None,
            "switch": self.switch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (checkpoints persist queued events)."""
        if data.get("kind") not in (LINK_DOWN, SWITCH_DOWN, LINK_UP):
            raise ReproError(f"unknown fault-event kind {data.get('kind')!r}")
        cable = data.get("cable")
        return cls(
            kind=data["kind"],
            cable=tuple(int(c) for c in cable) if cable is not None else None,
            switch=int(data["switch"]) if data.get("switch") is not None else None,
        )


def relative_degradation(prev: DegradedFabric, cur: DegradedFabric) -> DegradedFabric:
    """Compose two degradations of the same baseline into a prev→cur map.

    Both arguments must derive from one healthy fabric (as produced by
    :class:`FaultInjector`). The result maps ``prev.fabric`` ids to
    ``cur.fabric`` ids — exactly what incremental repair consumes. A
    resurrected cable (dead in ``prev``, alive in ``cur``) leaves the
    result with more channels than the map's image; repair detects that
    and demands a full reroute.
    """
    if len(prev.node_map) != len(cur.node_map):
        raise ReproError("degradations derive from different baselines")
    node_map = np.full(prev.fabric.num_nodes, -1, dtype=np.int64)
    alive_nodes = prev.node_map >= 0
    node_map[prev.node_map[alive_nodes]] = cur.node_map[alive_nodes]
    channel_map = np.full(prev.fabric.num_channels, -1, dtype=np.int64)
    alive_chans = prev.channel_map >= 0
    channel_map[prev.channel_map[alive_chans]] = cur.channel_map[alive_chans]
    removed_switches = int(np.count_nonzero(node_map[prev.fabric.switches] < 0))
    removed_cables = int(np.count_nonzero(channel_map < 0)) // 2
    return DegradedFabric(
        fabric=cur.fabric,
        node_map=node_map,
        removed_cables=removed_cables,
        removed_switches=removed_switches,
        channel_map=channel_map,
    )


class FaultInjector:
    """Seeded stream of routability-preserving fault events.

    Parameters
    ----------
    fabric:
        The healthy baseline. Never mutated.
    seed:
        Stream seed; the same seed replays the same event sequence.
    p_switch_down / p_link_up:
        Per-step probabilities of preferring a switch failure or a cable
        resurrection over the default cable failure. When the preferred
        kind has no viable candidate the injector falls through to the
        other kinds before giving up on the step.
    switch_links_only:
        Restrict cable failures to switch-to-switch cables (terminal
        cables only die with their switch), like
        :func:`repro.network.faults.fail_links`.
    max_attempts:
        Candidates probed per kind and step before declaring the kind
        unviable (each probe costs one fabric rebuild).
    """

    def __init__(
        self,
        fabric: Fabric,
        seed=None,
        p_switch_down: float = 0.15,
        p_link_up: float = 0.2,
        switch_links_only: bool = True,
        max_attempts: int = 16,
    ):
        check_routable(fabric)
        self.healthy = fabric
        self.rng = make_rng(seed)
        self.p_switch_down = p_switch_down
        self.p_link_up = p_link_up
        self.switch_links_only = switch_links_only
        self.max_attempts = max_attempts
        self.dead_cables: set[tuple[int, int]] = set()
        self.dead_switches: set[int] = set()
        self.state = identity_degradation(fabric)
        self.history: list[FaultEvent] = []
        self._all_keys = cable_keys(fabric)

    # ------------------------------------------------------------------
    @property
    def current(self) -> DegradedFabric:
        """Cumulative degradation (healthy → now)."""
        return self.state

    def _cable_alive(self, key: tuple[int, int]) -> bool:
        if key in self.dead_cables:
            return False
        a = int(self.healthy.channels.src[key[0]])
        b = int(self.healthy.channels.dst[key[0]])
        return a not in self.dead_switches and b not in self.dead_switches

    def _candidates(self, kind: str) -> list:
        if kind == LINK_DOWN:
            return [
                key
                for key in self._all_keys
                if self._cable_alive(key)
                and (not self.switch_links_only or self.healthy.is_switch_channel[key[0]])
            ]
        if kind == LINK_UP:
            out = []
            for key in self.dead_cables:
                a = int(self.healthy.channels.src[key[0]])
                b = int(self.healthy.channels.dst[key[0]])
                if a not in self.dead_switches and b not in self.dead_switches:
                    out.append(key)
            return sorted(out)
        return [int(s) for s in self.healthy.switches if int(s) not in self.dead_switches]

    def _try_kind(self, kind: str) -> tuple[FaultEvent, DegradedFabric] | None:
        candidates = self._candidates(kind)
        if not candidates:
            return None
        order = self.rng.permutation(len(candidates))[: self.max_attempts]
        for i in order:
            pick = candidates[int(i)]
            cables = set(self.dead_cables)
            switches = set(self.dead_switches)
            if kind == LINK_DOWN:
                cables.add(pick)
                event = FaultEvent(kind, cable=pick)
            elif kind == LINK_UP:
                cables.discard(pick)
                event = FaultEvent(kind, cable=pick)
            else:
                switches.add(pick)
                event = FaultEvent(kind, switch=pick)
            tentative = degrade(self.healthy, switches, cables)
            try:
                check_routable(tentative.fabric)
            except ReproError:
                continue  # would disconnect or orphan a terminal
            self.dead_cables = cables
            self.dead_switches = switches
            self.state = tentative
            self.history.append(event)
            record_event(
                "fault_injected", fault=kind, detail=event.describe(self.healthy),
                dead_cables=len(cables), dead_switches=len(switches),
            )
            return event, tentative
        return None

    def step(self) -> tuple[FaultEvent, DegradedFabric] | None:
        """Advance the stream by one event.

        Returns ``(event, cumulative_degradation)`` or ``None`` when no
        viable event remains (fully degraded down to a tree with every
        remaining element load-bearing).
        """
        r = float(self.rng.random())
        if r < self.p_switch_down:
            preference = SWITCH_DOWN
        elif r < self.p_switch_down + self.p_link_up:
            preference = LINK_UP
        else:
            preference = LINK_DOWN
        kinds = [preference] + [k for k in (LINK_DOWN, LINK_UP, SWITCH_DOWN) if k != preference]
        for kind in kinds:
            stepped = self._try_kind(kind)
            if stepped is not None:
                return stepped
        return None


def random_fault_sequence(
    fabric: Fabric,
    count: int,
    seed=None,
    **injector_kwargs,
) -> list[tuple[FaultEvent, DegradedFabric]]:
    """Materialise up to ``count`` events of a seeded fault stream."""
    injector = FaultInjector(fabric, seed=seed, **injector_kwargs)
    out = []
    for _ in range(count):
        stepped = injector.step()
        if stepped is None:
            break
        out.append(stepped)
    return out
