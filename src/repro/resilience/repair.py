"""Incremental repair: splice a prior routing onto a degraded fabric.

A full DFSSSP recompute after every dead cable is the scaling wall of
fail-in-place operation — the subnet stalls for the whole reroute even
though one link failure typically invalidates a handful of destination
columns. :func:`repair_routing` instead

1. translates the surviving forwarding entries onto the degraded fabric
   (node and channel ids are renumbered by the rebuild; the
   :class:`~repro.network.faults.DegradedFabric` maps drive the splice),
2. re-runs Dijkstra *only* for the destinations whose columns lost an
   entry, reusing the surviving balancing weights so the repaired routes
   stay globally balanced and hop-minimal (the §II weight argument is
   unaffected: total accumulated weight stays below ``W0``),
3. re-verifies deadlock-freedom incrementally: the untouched paths keep
   their virtual layers (any subset of an acyclic CDG is acyclic), and
   each repaired path is re-inserted into its old layer first, escalating
   to another layer only when staying put would re-introduce a cycle.

If the repaired paths exhaust the layer budget the
:class:`~repro.exceptions.InsufficientLayersError` propagates and the
engines fall back to a full DFSSSP run — correctness never depends on the
repair succeeding.
"""

from __future__ import annotations

import numpy as np

from repro.core.sssp import dijkstra_to_dest, update_weights_for_dest
from repro.deadlock.verify import build_layer_cdgs, verify_deadlock_free
from repro.exceptions import InsufficientLayersError, RepairError, RoutingError
from repro.network.faults import DegradedFabric
from repro.network.validate import check_routable
from repro.obs import DURATION_BUCKETS, RATIO_BUCKETS, get_registry, span
from repro.routing.base import LayeredRouting, RoutingResult, RoutingTables
from repro.routing.paths import extract_paths
from repro.service.budget import check_budget


def count_fallback(engine: str, reason: str = "") -> None:
    """Record that an engine abandoned incremental repair for a full run."""
    get_registry().counter(
        "repair_full_fallbacks",
        "incremental repairs abandoned in favour of a full reroute",
        engine=engine,
        reason=reason,
    ).inc()


def _check_degradation(prior: RoutingResult, degraded: DegradedFabric) -> None:
    old = prior.tables.fabric
    new = degraded.fabric
    if degraded.channel_map is None:
        raise RepairError("degradation carries no channel map; rebuild it via repro.network.faults")
    if len(degraded.node_map) != old.num_nodes or len(degraded.channel_map) != old.num_channels:
        raise RepairError("degradation does not derive from the routed fabric")
    if new.num_terminals != old.num_terminals:
        raise RepairError(
            f"terminal population changed ({old.num_terminals} -> {new.num_terminals}); "
            "incremental repair keeps destinations fixed"
        )
    if int(np.count_nonzero(degraded.channel_map >= 0)) != new.num_channels:
        raise RepairError("fabric gained channels (link-up); a full reroute is required")
    if not np.array_equal(degraded.node_map[old.terminals], new.terminals):
        raise RepairError("terminal renumbering is not order-preserving")


def translate_tables(prior: RoutingResult, degraded: DegradedFabric):
    """Map the prior forwarding tables onto the degraded fabric.

    Returns ``(next_channel, affected)`` where ``next_channel`` has the
    degraded fabric's shape with dead entries as -1, and ``affected`` is
    the sorted array of destination terminal indices whose column lost at
    least one entry (these must be re-routed; all other columns are
    complete, loop-free and still hop-minimal — removing edges can only
    grow the BFS distance, and the surviving path's length bounds it from
    above).
    """
    old = prior.tables.fabric
    new = degraded.fabric
    nmap = degraded.node_map
    cmap = degraded.channel_map
    old_nc = prior.tables.next_channel
    mapped = np.where(old_nc >= 0, cmap[np.maximum(old_nc, 0)], -1).astype(np.int32)
    surviving = np.flatnonzero(nmap >= 0)
    next_channel = np.full((new.num_nodes, old.num_terminals), -1, dtype=np.int32)
    next_channel[nmap[surviving], :] = mapped[surviving, :]
    entry_died = (old_nc[surviving, :] >= 0) & (mapped[surviving, :] < 0)
    affected = np.flatnonzero(entry_died.any(axis=0))
    return next_channel, affected


def _translate_weights(prior: RoutingResult, degraded: DegradedFabric) -> np.ndarray:
    new = degraded.fabric
    w0 = new.num_terminals * new.num_terminals + 1
    weights = np.full(new.num_channels, w0, dtype=np.int64)
    if prior.channel_weights is not None:
        cmap = degraded.channel_map
        alive = np.flatnonzero(cmap >= 0)
        weights[cmap[alive]] = prior.channel_weights[alive]
    return weights


def _translate_layers(
    prior: RoutingResult, degraded: DegradedFabric
) -> np.ndarray:
    """Old path-layer assignment reshaped onto the surviving switches.

    The pid layout is destination-major (``t_idx * S + s_idx``) and the
    rebuild preserves node order, so surviving switches keep their rank.
    Layers of repaired columns remain as a first-choice guess for the
    re-insertion step.
    """
    old = prior.tables.fabric
    new = degraded.fabric
    T = old.num_terminals
    alive_sw = degraded.node_map[old.switches] >= 0
    old_mat = prior.layered.path_layers.reshape(T, old.num_switches)
    new_mat = old_mat[:, alive_sw]
    if new_mat.shape[1] != new.num_switches:  # pragma: no cover - map invariant
        raise RepairError("switch survivor count does not match the degraded fabric")
    return np.ascontiguousarray(new_mat).reshape(-1).astype(np.int16)


def repair_routing(
    prior: RoutingResult,
    degraded: DegradedFabric,
    *,
    engine_name: str | None = None,
    count_switch_sources: bool = False,
) -> RoutingResult:
    """Incrementally repair ``prior`` for ``degraded.fabric``.

    Raises :class:`~repro.exceptions.RepairError` when the degradation
    cannot be spliced (foreign fabric, link-up, terminals lost) and
    :class:`~repro.exceptions.InsufficientLayersError` when the repaired
    paths fit no virtual layer; both make the engines fall back to a full
    reroute. On success the result mirrors a full engine run: complete
    tables, a verified layer assignment (if ``prior`` had one) and the
    carried-forward balancing weights.
    """
    _check_degradation(prior, degraded)
    new = degraded.fabric
    check_routable(new)
    engine = engine_name or prior.tables.engine
    T = new.num_terminals

    reg = get_registry()
    m_repaired = reg.counter(
        "repair_destinations_recomputed", "destination columns re-routed by incremental repair"
    )
    m_total = reg.counter(
        "repair_destinations_total", "destination columns examined by incremental repair"
    )
    m_escal = reg.counter(
        "repair_escalations", "repaired paths moved off their old virtual layer"
    )
    h_seconds = reg.histogram(
        "repair_seconds", "wall time per incremental repair", buckets=DURATION_BUCKETS
    )
    h_fraction = reg.histogram(
        "repair_fraction", "share of destinations recomputed per repair", buckets=RATIO_BUCKETS
    )

    with span("repair.incremental", engine=engine) as sp:
        with span("repair.translate"):
            next_channel, affected = translate_tables(prior, degraded)
            weights = _translate_weights(prior, degraded)

        is_term = new.kinds == 1  # NodeKind.TERMINAL
        with span("repair.dijkstra", destinations=len(affected)):
            for t_idx in affected:
                check_budget()  # cooperative deadline (repro.service)
                dest = int(new.terminals[t_idx])
                dist, parent = dijkstra_to_dest(new, dest, weights)
                next_channel[:, t_idx] = parent
                update_weights_for_dest(
                    new, dest, dist, parent, weights, is_term,
                    count_switch_sources=count_switch_sources,
                )

        tables = RoutingTables(new, next_channel, engine=engine)
        # Doubles as the reachability check: raises on any missing entry.
        paths = extract_paths(tables)

        layered = None
        escalations = 0
        if prior.layered is not None:
            with span("repair.layers"):
                layered, escalations = _repair_layers(prior, degraded, tables, paths, affected)

        m_repaired.inc(len(affected))
        m_total.inc(T)
        m_escal.inc(escalations)
        h_fraction.observe(len(affected) / T if T else 0.0)
        sp.set_attr("destinations_repaired", int(len(affected)))
        sp.set_attr("escalations", escalations)
    h_seconds.observe(sp.duration)

    stats = {
        "engine": engine,
        "repair": {
            "destinations_repaired": int(len(affected)),
            "destinations_total": int(T),
            "escalations": int(escalations),
            "fraction": float(len(affected) / T) if T else 0.0,
            "time_repair_s": sp.duration,
        },
    }
    if layered is not None:
        stats["layers_used"] = layered.layers_used
    return RoutingResult(
        tables=tables,
        layered=layered,
        deadlock_free=layered is not None,
        stats=stats,
        channel_weights=weights,
    )


def _repair_layers(
    prior: RoutingResult,
    degraded: DegradedFabric,
    tables: RoutingTables,
    paths,
    affected: np.ndarray,
) -> tuple[LayeredRouting, int]:
    """Re-verify the virtual layers after splicing repaired columns.

    Surviving paths keep their layers (subsets of acyclic CDGs stay
    acyclic); each repaired traffic-carrying path is re-inserted starting
    at its old layer and escalates — old layer upward, then the remaining
    lower layers — only when an insertion would close a cycle.
    """
    new = degraded.fabric
    L = prior.layered.num_layers
    S = new.num_switches
    path_layers = _translate_layers(prior, degraded)

    affected_col = np.zeros(new.num_terminals, dtype=bool)
    affected_col[affected] = True
    active = paths.active_pids()
    is_repaired = affected_col[active // S]
    kept = active[~is_repaired]
    repaired = active[is_repaired]

    scratch = LayeredRouting(tables, path_layers, L)
    cdgs = build_layer_cdgs(scratch, paths, pids=kept)

    escalations = 0
    for pid in map(int, repaired):
        check_budget()  # cooperative deadline (repro.service)
        guess = int(path_layers[pid])
        chans = paths.path(pid)
        placed = -1
        for layer in (guess, *range(guess + 1, L), *range(guess)):
            if cdgs[layer].try_add_path(pid, chans):
                placed = layer
                break
        if placed < 0:
            raise InsufficientLayersError(
                f"repaired path {pid} fits no layer; escalating to a full reroute",
                layers_available=L,
                layers_needed_at_least=L + 1,
            )
        if placed != guess:
            escalations += 1
            path_layers[pid] = placed

    layered = LayeredRouting(tables, path_layers, L)
    report = verify_deadlock_free(layered, paths)
    if not report.deadlock_free:  # pragma: no cover - insertion guarantees this
        raise RoutingError(
            f"incremental repair produced a cyclic layer: {sorted(report.cycles)}"
        )
    return layered, escalations
