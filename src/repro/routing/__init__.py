"""Routing engines and forwarding-table machinery."""

from repro.routing.base import (
    LayeredRouting,
    RoutingEngine,
    RoutingResult,
    RoutingTables,
)
from repro.routing.paths import (
    PathSet,
    extract_paths,
    flow_channels,
    path_minimality_violations,
)
from repro.routing.minhop import MinHopEngine, bfs_hops_to
from repro.routing.updown import UpDownEngine, rank_switches
from repro.routing.dor import DOREngine
from repro.routing.dor_vc import DORVCEngine
from repro.routing.ftree import FatTreeEngine, tree_ranks
from repro.routing.lash import LASHEngine
from repro.routing.cache import RoutingCache, cache_key
from repro.routing.io import (
    RoutingState,
    fabric_fingerprint,
    load_routing,
    load_routing_state,
    save_routing,
)
from repro.routing.registry import (
    DEADLOCK_FREE_ENGINES,
    ENGINES,
    PAPER_ENGINES,
    REPAIRABLE_ENGINES,
    make_engine,
)

__all__ = [
    "RoutingCache",
    "cache_key",
    "RoutingState",
    "fabric_fingerprint",
    "load_routing",
    "load_routing_state",
    "save_routing",
    "LayeredRouting",
    "RoutingEngine",
    "RoutingResult",
    "RoutingTables",
    "PathSet",
    "extract_paths",
    "flow_channels",
    "path_minimality_violations",
    "MinHopEngine",
    "bfs_hops_to",
    "UpDownEngine",
    "rank_switches",
    "DOREngine",
    "DORVCEngine",
    "FatTreeEngine",
    "tree_ranks",
    "LASHEngine",
    "DEADLOCK_FREE_ENGINES",
    "ENGINES",
    "PAPER_ENGINES",
    "REPAIRABLE_ENGINES",
    "make_engine",
]
