"""Routing-engine interface and forwarding-table containers.

All engines produce **destination-based** forwarding tables, mirroring
InfiniBand's linear forwarding tables: ``next_channel[node, dest]`` is the
outgoing channel a packet takes at ``node`` when headed for destination
terminal index ``dest``. A consequence the whole library exploits: the
switch-level path from a switch to a terminal is *unique*, so the global
path population has ``num_switches * num_terminals`` members (the CA-level
paths of the paper collapse onto them).

Deadlock-free engines additionally return a layer (virtual lane)
assignment per path — see :class:`LayeredRouting`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import RoutingError
from repro.network.fabric import Fabric
from repro.network.validate import check_routable
from repro.service.budget import check_budget


class RoutingTables:
    """Destination-based forwarding tables.

    ``next_channel`` has shape ``(num_nodes, num_terminals)`` with channel
    ids, or -1 for "no entry" (only legal on the destination terminal's
    own row/column intersection).
    """

    def __init__(self, fabric: Fabric, next_channel: np.ndarray, engine: str = "?"):
        self.fabric = fabric
        self.next_channel = np.asarray(next_channel, dtype=np.int32)
        self.engine = engine
        expected = (fabric.num_nodes, fabric.num_terminals)
        if self.next_channel.shape != expected:
            raise RoutingError(
                f"tables shape {self.next_channel.shape} != expected {expected}"
            )

    @classmethod
    def empty(cls, fabric: Fabric, engine: str = "?") -> "RoutingTables":
        return cls(
            fabric,
            np.full((fabric.num_nodes, fabric.num_terminals), -1, dtype=np.int32),
            engine=engine,
        )

    def next_hop(self, node: int, dest_terminal: int) -> int:
        """Outgoing channel at ``node`` toward terminal node id
        ``dest_terminal`` (-1 if none/self)."""
        t_idx = self.fabric.term_index[dest_terminal]
        if t_idx < 0:
            raise RoutingError(f"node {dest_terminal} is not a terminal")
        return int(self.next_channel[node, t_idx])

    def path_channels(self, src: int, dest_terminal: int) -> list[int]:
        """Full channel sequence from node ``src`` to ``dest_terminal``.

        Raises :class:`RoutingError` on incomplete tables or forwarding
        loops.
        """
        fab = self.fabric
        t_idx = int(fab.term_index[dest_terminal])
        if t_idx < 0:
            raise RoutingError(f"node {dest_terminal} is not a terminal")
        node = src
        out: list[int] = []
        while node != dest_terminal:
            c = int(self.next_channel[node, t_idx])
            if c < 0:
                raise RoutingError(
                    f"{self.engine}: no table entry at node {node} for terminal "
                    f"{dest_terminal}"
                )
            out.append(c)
            node = int(fab.channels.dst[c])
            if len(out) > fab.num_nodes:
                raise RoutingError(
                    f"{self.engine}: forwarding loop toward terminal {dest_terminal} "
                    f"(via node {src})"
                )
        return out

    def hops(self, src: int, dest_terminal: int) -> int:
        return len(self.path_channels(src, dest_terminal))


class LayeredRouting:
    """Forwarding tables plus a per-path virtual-layer (SL/VL) assignment.

    ``path_layers`` is indexed by ``pid = t_idx * num_switches + s_idx``
    (destination-major, matching :class:`repro.routing.paths.PathSet`).
    A source *terminal* inherits the layer of its first-hop switch's path.
    """

    def __init__(self, tables: RoutingTables, path_layers: np.ndarray, num_layers: int):
        self.tables = tables
        self.fabric = tables.fabric
        self.path_layers = np.asarray(path_layers, dtype=np.int16)
        self.num_layers = int(num_layers)
        expected = self.fabric.num_switches * self.fabric.num_terminals
        if self.path_layers.shape != (expected,):
            raise RoutingError(
                f"path_layers shape {self.path_layers.shape} != ({expected},)"
            )
        if num_layers < 1:
            raise RoutingError("num_layers must be >= 1")
        if len(self.path_layers) and (
            self.path_layers.min() < 0 or self.path_layers.max() >= num_layers
        ):
            raise RoutingError(
                f"path layer out of range [0, {num_layers}): "
                f"[{self.path_layers.min()}, {self.path_layers.max()}]"
            )

    @classmethod
    def single_layer(cls, tables: RoutingTables) -> "LayeredRouting":
        """Wrap plain tables as a one-layer assignment (not necessarily
        deadlock-free!)."""
        n = tables.fabric.num_switches * tables.fabric.num_terminals
        return cls(tables, np.zeros(n, dtype=np.int16), 1)

    def pid(self, switch_node: int, dest_terminal: int) -> int:
        fab = self.fabric
        s_idx = int(fab.switch_index[switch_node])
        t_idx = int(fab.term_index[dest_terminal])
        if s_idx < 0 or t_idx < 0:
            raise RoutingError(
                f"pid requires (switch, terminal), got nodes ({switch_node}, {dest_terminal})"
            )
        return t_idx * fab.num_switches + s_idx

    def layer_for(self, src: int, dest_terminal: int) -> int:
        """Virtual layer used by traffic from ``src`` to ``dest_terminal``.

        ``src`` may be a terminal (the paper's SL is chosen at the source
        CA); it then uses its first-hop switch's path layer.
        """
        fab = self.fabric
        if src == dest_terminal:
            raise RoutingError("no layer for a self-path")
        node = src
        if fab.is_terminal(src):
            c = self.tables.next_hop(src, dest_terminal)
            if c < 0:
                raise RoutingError(f"no route from terminal {src} to {dest_terminal}")
            node = int(fab.channels.dst[c])
            if node == dest_terminal:
                # Same-switch... actually direct terminal-terminal is
                # impossible (builder rejects such cables).
                return 0  # pragma: no cover - defensive
        return int(self.path_layers[self.pid(node, dest_terminal)])

    def layer_histogram(self) -> np.ndarray:
        """Number of paths per layer, shape (num_layers,)."""
        return np.bincount(self.path_layers, minlength=self.num_layers)

    @property
    def layers_used(self) -> int:
        """Number of non-empty layers."""
        return int(np.count_nonzero(self.layer_histogram()))


@dataclass
class RoutingResult:
    """What a routing engine returns.

    ``layered`` is present for deadlock-free engines (DFSSSP, LASH,
    Up*/Down* wraps its single layer); ``deadlock_free`` records the
    engine's own claim, which tests independently verify via
    :mod:`repro.deadlock.verify`. ``channel_weights`` carries the final
    per-channel balancing weights of weight-based engines (SSSP/DFSSSP)
    so :mod:`repro.resilience` can continue balancing across incremental
    repairs instead of restarting from uniform weights.

    ``certificate`` (a
    :class:`repro.deadlock.certificate.DeadlockFreedomCertificate`, typed
    loosely to keep this module import-light) is attached by the cache,
    checkpoint store and ``certify`` CLI so consumers can re-check
    deadlock freedom in O(V+E) without re-running the layer assignment.
    Engines themselves leave it ``None``.
    """

    tables: RoutingTables
    layered: LayeredRouting | None = None
    deadlock_free: bool = False
    stats: dict = field(default_factory=dict)
    channel_weights: np.ndarray | None = None
    certificate: object | None = None

    @property
    def num_layers(self) -> int:
        return self.layered.num_layers if self.layered is not None else 1

    @property
    def layers_used(self) -> int:
        return self.layered.layers_used if self.layered is not None else 1


class RoutingEngine(ABC):
    """Base class for all routing engines.

    Subclasses implement :meth:`_route`; the public :meth:`route` performs
    the shared fabric validation first.
    """

    #: short identifier used by the registry, CLI and benchmark tables
    name: str = "abstract"

    #: whether :meth:`reroute` can splice a prior result instead of
    #: recomputing from scratch (overridden by SSSP/DFSSSP)
    supports_incremental_reroute: bool = False

    def route(self, fabric: Fabric) -> RoutingResult:
        # Engines honour the active compute budget (repro.service): SSSP/
        # DFSSSP poll it in their inner loops; this entry check makes even
        # single-pass engines fail fast once the deadline has passed.
        check_budget()
        check_routable(fabric)
        return self._route(fabric)

    def reroute(self, prior: RoutingResult | None, degraded) -> RoutingResult:
        """Recompute routing after failure injection.

        ``degraded`` is a :class:`repro.network.faults.DegradedFabric`
        derived from the fabric that produced ``prior``. The base
        implementation performs a full from-scratch reroute; engines that
        can repair incrementally (SSSP, DFSSSP) override this to splice
        only the broken forwarding columns and fall back to the full
        recompute when repair is impossible.
        """
        return self.route(degraded.fabric)

    @abstractmethod
    def _route(self, fabric: Fabric) -> RoutingResult:
        """Produce forwarding tables for a validated fabric."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
