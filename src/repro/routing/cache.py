"""Fingerprint-keyed routing cache.

A full DFSSSP run on a large fabric costs seconds to minutes, yet its
inputs are completely determined by (a) the fabric's structure and (b)
the engine configuration — both engines are deterministic functions of
those. :class:`RoutingCache` memoises full routing results on disk under
a key derived from the :func:`~repro.routing.io.fabric_fingerprint` and
the engine's name + options, so a :class:`~repro.service.supervisor.RoutingSupervisor`
restarting (or re-encountering a previously seen degraded fabric) can
warm-start instead of recomputing.

Each entry is up to three files in the cache directory:

* ``<key>.npz`` — tables, lane assignment and balancing weights, written
  through :func:`~repro.routing.io.save_routing` (atomic, fingerprint-
  stamped, so a cache hit is *still* validated against the live fabric
  at load time — a re-cabled fabric can never be served stale tables);
* ``<key>.meta.json`` — human-inspectable metadata (engine, options,
  fingerprint, the engine's ``stats`` dict) for ``repro-route stats``;
* ``<key>.cert.json`` — the deadlock-freedom certificate of layered
  results (see :mod:`repro.deadlock.certificate`). Emitted at store
  time and re-checked — structure *and* binding to the live routing —
  at load time, so a warm start serves provably safe tables without
  re-running the layer assignment. A missing, corrupt or mismatched
  certificate turns the hit into a miss and bumps
  ``routing_cert_invalid_total``.

The cache can be **bounded**: ``max_entries`` / ``max_bytes`` cap the
entry count and total on-disk footprint, with least-recently-used
entries pruned at store time (a hit refreshes the entry's recency via
its ``mtime``, so long-running fleets keep their hot fabrics warm).
Unbounded by default, matching the old behaviour.

Counters: ``routing_cache_hit_total`` / ``routing_cache_miss_total`` /
``routing_cache_store_total`` / ``routing_cache_evicted_total`` /
``routing_cert_invalid_total``, labelled by engine.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import CertificateError, RoutingError
from repro.network.fabric import Fabric
from repro.obs import get_registry
from repro.obs.recorder import record_event
from repro.routing.base import RoutingResult
from repro.routing.io import fabric_fingerprint, load_routing_state, save_routing
from repro.utils.atomicio import atomic_write_text

_KEY_LEN = 24


def cache_key(fingerprint: str, engine: str, opts: dict | None = None) -> str:
    """Deterministic entry key: fingerprint + engine + sorted options.

    Options are JSON-encoded with sorted keys so dict ordering never
    splits the cache; anything unserialisable raises immediately rather
    than silently colliding.
    """
    payload = json.dumps(opts or {}, sort_keys=True, default=_jsonify)
    digest = hashlib.sha256(
        f"{fingerprint}|{engine}|{payload}".encode()
    ).hexdigest()
    return digest[:_KEY_LEN]


def _jsonify(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    raise TypeError(f"cache options must be JSON-serialisable, got {type(obj).__name__}")


class RoutingCache:
    """Disk cache of full routing results, keyed by fabric + engine config.

    >>> cache = RoutingCache(tmp_dir)            # doctest: +SKIP
    >>> hit = cache.load(fabric, "dfsssp", {})   # None on miss
    >>> cache.store(fabric, "dfsssp", {}, result)

    ``max_entries`` / ``max_bytes`` (``None`` = unlimited) bound the
    cache; :meth:`store` prunes least-recently-used entries past either
    limit. The entry being stored is never its own eviction victim, so a
    single oversized routing still caches (the bound then holds again at
    the next store).
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.dir = Path(cache_dir)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _paths(self, key: str) -> tuple[Path, Path, Path]:
        return (
            self.dir / f"{key}.npz",
            self.dir / f"{key}.meta.json",
            self.dir / f"{key}.cert.json",
        )

    def _counter(self, event: str, engine: str, key: str | None = None):
        record_event(f"cache_{event}", engine=str(engine), key=key)
        return get_registry().counter(
            f"routing_cache_{event}_total",
            f"routing-cache {event}s",
            engine=str(engine),
        )

    # ------------------------------------------------------------------
    def load(self, fabric: Fabric, engine: str, opts: dict | None = None) -> RoutingResult | None:
        """Return the cached routing for ``fabric`` + config, or ``None``.

        A hit re-validates the stored fingerprint against ``fabric`` (via
        :func:`load_routing_state`); a corrupt or mismatched entry counts
        as a miss and is left for :meth:`store` to overwrite. Layered
        entries additionally carry a deadlock-freedom certificate that is
        re-checked — structurally and against the loaded routing — before
        the hit is served; an invalid certificate is a miss.
        """
        key = cache_key(fabric_fingerprint(fabric), engine, opts)
        npz, meta_path, cert_path = self._paths(key)
        if not npz.is_file():
            self._counter("miss", engine, key).inc()
            return None
        try:
            state = load_routing_state(npz, fabric)
            meta = json.loads(meta_path.read_text()) if meta_path.is_file() else {}
        except (RoutingError, OSError, ValueError, KeyError):
            self._counter("miss", engine, key).inc()
            return None
        cert = None
        if state.layered is not None:
            cert = self._checked_certificate(cert_path, state, engine, key)
            if cert is None:
                self._counter("miss", engine, key).inc()
                return None
        self._counter("hit", engine, key).inc()
        self._touch(npz)
        stats = dict(meta.get("stats", {}))
        stats["cache"] = "hit"
        if cert is not None:
            stats["certified"] = True
        return RoutingResult(
            tables=state.tables,
            layered=state.layered,
            deadlock_free=bool(meta.get("deadlock_free", state.layered is not None)),
            stats=stats,
            channel_weights=state.channel_weights,
            certificate=cert,
        )

    def _checked_certificate(self, cert_path: Path, state, engine: str, key: str):
        """Load + fully check the entry's certificate; ``None`` if invalid.

        An entry stored before certificates existed (or whose certificate
        was corrupted/tampered with) must not be served as deadlock-free
        on trust — the caller treats ``None`` as a cache miss so the
        routing is recomputed and re-certified.
        """
        from repro.deadlock.certificate import (
            DeadlockFreedomCertificate,
            check_against_routing,
        )
        from repro.routing.paths import extract_paths

        reason = None
        try:
            cert = DeadlockFreedomCertificate.load(cert_path)
            check = check_against_routing(cert, state.layered, extract_paths(state.tables))
            if check.ok:
                return cert
            reason = check.reason
        except CertificateError as err:
            reason = str(err)
        record_event("cache_cert_invalid", engine=str(engine), key=key, reason=reason)
        get_registry().counter(
            "routing_cert_invalid_total",
            "cache entries rejected for a missing/invalid deadlock certificate",
            engine=str(engine),
        ).inc()
        return None

    def store(
        self, fabric: Fabric, engine: str, opts: dict | None, result: RoutingResult
    ) -> str:
        """Persist ``result`` for ``fabric`` + config; returns the key.

        All files are written atomically; a crash mid-store leaves any
        previous entry intact. Layered results are certified on the way
        in (the certificate is also attached to ``result``); an
        uncertifiable layered routing — a cyclic layer — refuses to
        enter the cache by raising :class:`CertificateError` with a
        witness cycle.
        """
        key = cache_key(fabric_fingerprint(fabric), engine, opts)
        npz, meta_path, cert_path = self._paths(key)
        if result.layered is not None and result.certificate is None:
            from repro.deadlock.certificate import emit_certificate
            from repro.routing.paths import extract_paths

            result.certificate = emit_certificate(
                result.layered, extract_paths(result.tables), engine=str(engine)
            )
        save_routing(
            npz,
            result.tables,
            layered=result.layered,
            channel_weights=result.channel_weights,
        )
        if result.certificate is not None:
            result.certificate.save(cert_path)
        meta = {
            "key": key,
            "engine": str(engine),
            "opts": json.loads(json.dumps(opts or {}, sort_keys=True, default=_jsonify)),
            "fingerprint": fabric_fingerprint(fabric),
            "deadlock_free": bool(result.deadlock_free),
            "stats": _json_safe_stats(result.stats),
        }
        atomic_write_text(meta_path, json.dumps(meta, indent=2, sort_keys=True) + "\n")
        self._counter("store", engine, key).inc()
        self._prune(keep_key=key)
        return key

    # ------------------------------------------------------------------
    @staticmethod
    def _touch(npz: Path) -> None:
        """Refresh an entry's LRU recency (mtime of its ``.npz``)."""
        try:
            os.utime(npz)
        except OSError:  # pragma: no cover - read-only cache mount
            pass

    def _prune(self, keep_key: str) -> None:
        """Evict least-recently-used entries past ``max_entries``/``max_bytes``.

        An entry is the ``.npz`` + ``.meta.json`` + ``.cert.json`` triple;
        its recency is the ``.npz`` mtime (touched on every hit) and its
        size the triple's combined bytes. ``keep_key`` — the entry just
        stored — is exempt from this round.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = []  # (mtime, key, bytes)
        total = 0
        for npz in self.dir.glob("*.npz"):
            key = npz.stem
            try:
                size = sum(p.stat().st_size for p in self._paths(key) if p.is_file())
                mtime = npz.stat().st_mtime
            except OSError:  # pragma: no cover - raced with clear()
                continue
            entries.append((mtime, key, size))
            total += size
        entries.sort()
        count = len(entries)
        for mtime, key, size in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if key == keep_key:
                continue
            npz, meta_path, cert_path = self._paths(key)
            engine = "?"
            try:
                engine = str(json.loads(meta_path.read_text()).get("engine", "?"))
            except (OSError, ValueError):
                pass
            for p in (npz, meta_path, cert_path):
                p.unlink(missing_ok=True)
            count -= 1
            total -= size
            self._counter("evicted", engine, key).inc()

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Metadata of every cache entry (for ``repro-route stats``)."""
        out = []
        for meta_path in sorted(self.dir.glob("*.meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):  # pragma: no cover - corrupt entry
                continue
            key = meta.get("key", meta_path.stem.split(".")[0])
            npz = self.dir / f"{key}.npz"
            meta["bytes"] = npz.stat().st_size if npz.is_file() else 0
            meta["certified"] = (self.dir / f"{key}.cert.json").is_file()
            out.append(meta)
        return out

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        for pattern in ("*.npz", "*.meta.json", "*.cert.json"):
            for p in self.dir.glob(pattern):
                p.unlink(missing_ok=True)
                removed += 1
        return removed


def _json_safe_stats(stats: dict) -> dict:
    """Engine stats dicts hold numpy scalars; coerce for JSON."""
    safe = {}
    for k, v in stats.items():
        try:
            safe[k] = json.loads(json.dumps(v, default=_jsonify))
        except TypeError:
            safe[k] = str(v)
    return safe
