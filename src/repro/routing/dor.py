"""Dimension-ordered routing (DOR).

Classic e-cube routing for coordinate topologies: correct the coordinate
differences one dimension at a time, in fixed dimension order. Minimal
and simple, but only defined where coordinates exist — on anything else
the engine raises :class:`UnsupportedTopologyError`, which the benchmark
harness reports as the paper's "missing bar".

Deadlock behaviour matches the literature: acyclic on meshes and
hypercubes, cyclic on tori/rings (the wraparound closes dependency
cycles) — OpenSM's DOR has the same property, which is why LASH exists.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import UnsupportedTopologyError
from repro.network.fabric import Fabric
from repro.routing.base import RoutingEngine, RoutingResult, RoutingTables

_COORD_FAMILIES = ("torus", "mesh", "hypercube", "ring", "chordal_ring")


def _dims_and_wrap(fabric: Fabric) -> tuple[tuple[int, ...], bool]:
    family = fabric.metadata.get("family")
    if family in ("torus", "mesh"):
        return tuple(fabric.metadata["dims"]), bool(fabric.metadata.get("wraparound", False))
    if family == "hypercube":
        return (2,) * int(fabric.metadata["dimension"]), False
    if family in ("ring", "chordal_ring"):
        return (int(fabric.metadata["num_switches"]),), True
    raise UnsupportedTopologyError(
        f"DOR needs a coordinate topology (one of {_COORD_FAMILIES}), "
        f"got family {family!r}"
    )


class DOREngine(RoutingEngine):
    """Dimension-ordered routing for coordinate topologies."""

    name = "dor"

    def _route(self, fabric: Fabric) -> RoutingResult:
        dims, wrap = _dims_and_wrap(fabric)
        coords = fabric.coordinates
        for s in fabric.switches:
            if int(s) not in coords or len(coords[int(s)]) != len(dims):
                raise UnsupportedTopologyError(
                    f"switch {int(s)} lacks {len(dims)}-dimensional coordinates"
                )
        coord_to_switch = {coords[int(s)]: int(s) for s in fabric.switches}

        T = fabric.num_terminals
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)

        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            attached = fabric.attached_switches(dest)
            target = int(attached[0])
            tc = coords[target]
            for s in fabric.switches:
                s = int(s)
                if s == target:
                    eject = fabric.channels_between(s, dest)
                    next_channel[s, t_idx] = eject[t_idx % len(eject)]
                    continue
                next_channel[s, t_idx] = self._step(
                    fabric, coords, coord_to_switch, dims, wrap, s, tc, t_idx
                )
            for term in fabric.terminals:
                term = int(term)
                if term == dest:
                    continue
                inject = fabric.out_channels(term)
                next_channel[term, t_idx] = inject[t_idx % len(inject)]

        tables = RoutingTables(fabric, next_channel, engine=self.name)
        return RoutingResult(
            tables=tables,
            layered=None,
            deadlock_free=False,  # cyclic on wraparound topologies
            stats={"engine": self.name, "dims": dims, "wraparound": wrap},
        )

    @staticmethod
    def _step(fabric, coords, coord_to_switch, dims, wrap, s, tc, t_idx) -> int:
        sc = coords[s]
        for axis, size in enumerate(dims):
            delta = (tc[axis] - sc[axis]) % size
            if delta == 0:
                continue
            if wrap:
                # Shorter wrap direction; ties go positive.
                step = 1 if delta <= size - delta else -1
            else:
                step = 1 if tc[axis] > sc[axis] else -1
            nxt = list(sc)
            nxt[axis] = (sc[axis] + step) % size if wrap else sc[axis] + step
            nxt_switch = coord_to_switch.get(tuple(nxt))
            if nxt_switch is None:
                raise UnsupportedTopologyError(
                    f"coordinate grid incomplete at {tuple(nxt)} "
                    f"(degraded fabric?); DOR cannot route"
                )
            chans = fabric.channels_between(s, nxt_switch)
            if not chans:
                raise UnsupportedTopologyError(
                    f"missing cable {sc} -> {tuple(nxt)}; DOR cannot route"
                )
            return chans[t_idx % len(chans)]
        raise AssertionError("DOR step called with source == target")  # pragma: no cover
