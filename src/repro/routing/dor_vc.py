"""Deadlock-free dimension-ordered routing with dateline virtual channels.

The classic Dally/Seitz solution for tori, included as the "specialised
structured-topology" counterpoint to DFSSSP: routes are plain DOR, and
each path gets a virtual layer derived from *which dimensions it wraps
around* (crosses the dateline between coordinate ``size-1`` and ``0``).

Why this is deadlock-free with one static layer per path (InfiniBand SL
semantics — the lane cannot change mid-route):

* DOR orders dimensions, so channel dependencies only go from dimension
  ``i`` channels to dimension ``j >= i`` channels — any dependency cycle
  is confined to a single dimension's ring.
* Within layer ``L`` (the set of paths wrapping exactly the dimension
  set ``S``), consider dimension ``i``'s ring: if ``i ∉ S`` no path in
  the layer crosses the dateline, so the ring's dependency chain is cut
  there; if ``i ∈ S`` every path crosses it, and a shortest-path arc
  through one fixed point cannot cover the whole ring, so the chain is
  cut opposite the dateline.

The layer index is the wrap bitmask, giving at most ``2**ndims`` layers
(2 for a ring, 4 for a 2D torus, ...). Meshes and hypercubes wrap
nothing and use a single layer, as expected.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InsufficientLayersError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingEngine, RoutingResult
from repro.routing.dor import DOREngine, _dims_and_wrap
from repro.routing.paths import extract_paths


class DORVCEngine(RoutingEngine):
    """DOR plus dateline virtual-channel assignment (deadlock-free)."""

    name = "dor_vc"

    def __init__(self, max_layers: int = 8):
        if max_layers < 1:
            raise ValueError(f"max_layers must be >= 1, got {max_layers}")
        self.max_layers = max_layers

    def _route(self, fabric: Fabric) -> RoutingResult:
        dims, wrap = _dims_and_wrap(fabric)
        inner = DOREngine().route(fabric)
        tables = inner.tables
        tables.engine = self.name
        paths = extract_paths(tables)

        n_dims = len(dims)
        needed = 2**n_dims if wrap else 1
        if needed > self.max_layers:
            raise InsufficientLayersError(
                f"dateline DOR needs {needed} layers for {n_dims} wrapped "
                f"dimensions but only {self.max_layers} are available",
                layers_available=self.max_layers,
                layers_needed_at_least=needed,
            )

        coords = fabric.coordinates
        chan_src = fabric.channels.src
        chan_dst = fabric.channels.dst
        path_layers = np.zeros(paths.num_paths, dtype=np.int16)
        if wrap:
            for pid in range(paths.num_paths):
                mask = 0
                for c in paths.path(pid):
                    u, v = int(chan_src[c]), int(chan_dst[c])
                    if not (fabric.is_switch(u) and fabric.is_switch(v)):
                        continue
                    cu, cv = coords[u], coords[v]
                    for axis, size in enumerate(dims):
                        if cu[axis] == cv[axis]:
                            continue
                        # Dateline: the cable between size-1 and 0.
                        if {cu[axis], cv[axis]} == {0, size - 1} and size > 2:
                            mask |= 1 << axis
                        break  # one axis changes per DOR hop
                path_layers[pid] = mask

        layered = LayeredRouting(tables, path_layers, max(needed, 1))
        return RoutingResult(
            tables=tables,
            layered=layered,
            deadlock_free=True,
            stats={
                "engine": self.name,
                "dims": dims,
                "wraparound": wrap,
                "layers_needed": int(len(np.unique(path_layers))),
            },
        )
