"""Fat-tree routing.

OpenSM's ``ftree`` engine recognises k-ary n-trees / XGFTs and routes
up-then-down with deterministic spreading; on anything else it refuses
and OpenSM falls back to MinHop. We mirror that: the engine requires the
generator-recorded ``switch_levels`` metadata (and a tree-family tag),
validates that cables respect the leveling, and otherwise raises
:class:`UnsupportedTopologyError` — the paper's "missing bar" on the
irregular real-world fabrics.

Routing itself reuses the phase-consistent two-stage DP of
:mod:`repro.routing.updown` with ranks derived from tree levels (root
level = rank 0). In a proper fat tree the descent stage settles exactly
the destination leaf's ancestor cone and the ascent stage takes minimal
up paths into it, i.e. classic NCA routing; port-load tie-breaking
provides the d-mod-k-style spreading over parallel ancestors.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import UnsupportedTopologyError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingEngine, RoutingResult, RoutingTables
from repro.routing.updown import UpDownEngine

_TREE_FAMILIES = ("kary_ntree", "xgft")


def infer_switch_levels(fabric: Fabric) -> dict[int, int]:
    """Detect a fat-tree leveling structurally (OpenSM's ftree does the
    same on the live subnet).

    Rules: every switch with attached terminals is a leaf (level 1);
    other switches take 1 + (hop distance to the nearest leaf). The
    result must satisfy (a) every cable connects adjacent levels, and
    (b) all "roots" (switches without up-links) sit on the single top
    level. Violations — trunked leaf-to-leaf cables, mid-level terminals,
    capped sub-spines — raise :class:`UnsupportedTopologyError`, which is
    how the irregular real-world systems end up as the paper's missing
    bars.
    """
    from collections import deque

    levels: dict[int, int] = {}
    queue: deque[int] = deque()
    for s in fabric.switches:
        s = int(s)
        if any(fabric.is_terminal(int(n)) for n in fabric.neighbors(s)):
            levels[s] = 1
            queue.append(s)
    if not queue:
        raise UnsupportedTopologyError("no leaf switches (no terminals attached?)")
    while queue:
        v = queue.popleft()
        for n in fabric.neighbors(v):
            n = int(n)
            if fabric.is_switch(n) and n not in levels:
                levels[n] = levels[v] + 1
                queue.append(n)
    for s in fabric.switches:
        if int(s) not in levels:
            raise UnsupportedTopologyError(f"switch {int(s)} is not level-reachable")
    # (a) adjacency of levels.
    for cid in fabric.switch_channel_ids():
        u = int(fabric.channels.src[cid])
        v = int(fabric.channels.dst[cid])
        if abs(levels[u] - levels[v]) != 1:
            raise UnsupportedTopologyError(
                f"cable {u}<->{v} connects levels {levels[u]} and {levels[v]}; "
                f"not a fat tree"
            )
    # (b) all roots on the top level.
    top = max(levels.values())
    for s in fabric.switches:
        s = int(s)
        if levels[s] == top:
            continue
        if not any(
            fabric.is_switch(int(n)) and levels[int(n)] == levels[s] + 1
            for n in fabric.neighbors(s)
        ):
            raise UnsupportedTopologyError(
                f"switch {s} at level {levels[s]} has no up-links; not a fat tree"
            )
    return levels


def tree_ranks(fabric: Fabric) -> np.ndarray:
    """Ranks (0 = top level) from generator metadata, or inferred
    structurally when the fabric was not built by a tree generator.

    Raises :class:`UnsupportedTopologyError` when the fabric is not a
    leveled tree (e.g. after failure injection removed switches).
    """
    levels = fabric.metadata.get("switch_levels")
    if levels:
        if fabric.metadata.get("family") not in _TREE_FAMILIES:
            raise UnsupportedTopologyError(
                f"switch_levels metadata present but family "
                f"{fabric.metadata.get('family')!r} is not a tree"
            )
        # JSON round-trips turn int keys into strings; normalise.
        levels = {int(k): int(v) for k, v in levels.items()}
    else:
        levels = infer_switch_levels(fabric)
    max_level = max(levels.values())
    rank = np.full(fabric.num_nodes, -1, dtype=np.int64)
    for s in fabric.switches:
        s = int(s)
        if s not in levels:
            raise UnsupportedTopologyError(f"switch {s} has no tree level")
        rank[s] = max_level - int(levels[s])
    # Structural check: switch cables must connect adjacent levels.
    for cid in fabric.switch_channel_ids():
        u = int(fabric.channels.src[cid])
        v = int(fabric.channels.dst[cid])
        if abs(int(rank[u]) - int(rank[v])) != 1:
            raise UnsupportedTopologyError(
                f"cable {u}<->{v} does not connect adjacent tree levels"
            )
    return rank


class FatTreeEngine(RoutingEngine):
    """NCA up/down routing for k-ary n-trees and XGFTs."""

    name = "ftree"

    def _route(self, fabric: Fabric) -> RoutingResult:
        rank = tree_ranks(fabric)
        T = fabric.num_terminals
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        load = np.zeros(fabric.num_channels, dtype=np.int64)
        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            chan = UpDownEngine._dp_from_dest(fabric, dest, rank, load)
            next_channel[:, t_idx] = chan
            valid = chan[chan >= 0]
            np.add.at(load, valid, 1)
        tables = RoutingTables(fabric, next_channel, engine=self.name)
        return RoutingResult(
            tables=tables,
            layered=LayeredRouting.single_layer(tables),
            deadlock_free=True,
            stats={"engine": self.name},
        )
