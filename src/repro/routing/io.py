"""Persist routing state — forwarding tables and lane assignments.

Computing DFSSSP on a big fabric costs minutes; a deployed subnet
manager wants to write the result once and reload it across restarts
(OpenSM's equivalent: cached LFTs + SL tables). State is stored as a
compressed NumPy archive together with a *fabric fingerprint* (node
kinds + channel endpoints hash), so tables are never silently applied to
a different or re-cabled fabric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import RoutingError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingTables
from repro.utils.atomicio import atomic_path

_FORMAT = 1


def fabric_fingerprint(fabric: Fabric) -> str:
    """Digest of the structure a routing depends on.

    Covers node kinds and every channel's (src, dst, capacity); names and
    metadata may change freely without invalidating tables.
    """
    h = hashlib.sha256()
    h.update(fabric.kinds.tobytes())
    h.update(fabric.channels.src.tobytes())
    h.update(fabric.channels.dst.tobytes())
    h.update(fabric.channels.capacity.tobytes())
    return h.hexdigest()


@dataclass
class RoutingState:
    """Everything :func:`save_routing` can persist about one routing."""

    tables: RoutingTables
    layered: LayeredRouting | None = None
    channel_weights: np.ndarray | None = None

    @property
    def engine(self) -> str:
        return self.tables.engine


def save_routing(
    path: str | Path,
    tables: RoutingTables,
    layered: LayeredRouting | None = None,
    channel_weights: np.ndarray | None = None,
) -> None:
    """Write tables (and optionally lanes + balancing weights) to ``path``.

    ``channel_weights`` carries the SSSP/DFSSSP balancing weights so a
    restored service keeps balancing across incremental repairs. The file
    appears atomically: a crash mid-write leaves any previous version
    intact.
    """
    payload = {
        "format": np.array([_FORMAT]),
        "engine": np.array([tables.engine]),
        "fingerprint": np.array([fabric_fingerprint(tables.fabric)]),
        "next_channel": tables.next_channel,
    }
    if layered is not None:
        if layered.tables is not tables and not (
            layered.tables.next_channel == tables.next_channel
        ).all():
            raise RoutingError("layered assignment belongs to different tables")
        payload["path_layers"] = layered.path_layers
        payload["num_layers"] = np.array([layered.num_layers])
    if channel_weights is not None:
        weights = np.asarray(channel_weights)
        if weights.shape != (tables.fabric.num_channels,):
            raise RoutingError(
                f"channel_weights shape {weights.shape} != ({tables.fabric.num_channels},)"
            )
        payload["channel_weights"] = weights
    # np.savez appends ".npz" to extensionless *paths*; an open handle
    # keeps the temp/final names under our control.
    with atomic_path(_npz_path(path), "wb") as fp:
        np.savez_compressed(fp, **payload)


def _npz_path(path: str | Path) -> Path:
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_routing_state(path: str | Path, fabric: Fabric) -> RoutingState:
    """Reload routing state, validating it against ``fabric``.

    Raises :class:`RoutingError` on version or fingerprint mismatch — the
    fabric was re-cabled since the tables were computed.
    """
    path = Path(path)
    if not path.exists() and _npz_path(path).exists():
        path = _npz_path(path)
    with np.load(path, allow_pickle=False) as data:
        if int(data["format"][0]) != _FORMAT:
            raise RoutingError(f"unsupported routing-state format {data['format'][0]}")
        stored = str(data["fingerprint"][0])
        actual = fabric_fingerprint(fabric)
        if stored != actual:
            raise RoutingError(
                "routing state does not match this fabric (re-cabled since "
                f"save? stored {stored[:12]}…, fabric {actual[:12]}…)"
            )
        tables = RoutingTables(
            fabric, data["next_channel"], engine=str(data["engine"][0])
        )
        layered = None
        if "path_layers" in data:
            layered = LayeredRouting(
                tables, data["path_layers"], int(data["num_layers"][0])
            )
        weights = None
        if "channel_weights" in data:
            weights = np.array(data["channel_weights"])
    return RoutingState(tables=tables, layered=layered, channel_weights=weights)


def load_routing(
    path: str | Path, fabric: Fabric
) -> tuple[RoutingTables, LayeredRouting | None]:
    """Back-compat wrapper around :func:`load_routing_state`."""
    state = load_routing_state(path, fabric)
    return state.tables, state.layered
