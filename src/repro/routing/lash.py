"""LASH — LAyered SHortest path routing (Skeie/Lysne et al.).

LASH routes minimum-hop at *switch-pair* granularity and assigns every
switch-pair path **online** to the lowest virtual layer whose channel
dependency graph stays acyclic — one incremental cycle check per path.
It was designed for tori (where DOR-like path sets layer cheaply); the
paper uses it as the established deadlock-free baseline for both
bandwidth (Figs. 4-6) and virtual-lane counts (Figs. 9/10).

Differences from DFSSSP worth keeping in mind when reading results:

* balancing is MinHop-style local (port counters), not global;
* layering granularity is switch pairs (|S|² paths), whereas DFSSSP
  layers (switch, destination-terminal) paths — coarser moves, which is
  why their layer counts diverge on sparse vs dense fabrics (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.core.layers import DEFAULT_MAX_LAYERS
from repro.deadlock.cdg import ChannelDependencyGraph
from repro.exceptions import InsufficientLayersError, RoutingError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingEngine, RoutingResult, RoutingTables
from repro.routing.minhop import bfs_hops_to


class LASHEngine(RoutingEngine):
    """Layered shortest-path routing with online layer assignment."""

    name = "lash"

    def __init__(self, max_layers: int = DEFAULT_MAX_LAYERS):
        if max_layers < 1:
            raise ValueError(f"max_layers must be >= 1, got {max_layers}")
        self.max_layers = max_layers

    def _route(self, fabric: Fabric) -> RoutingResult:
        S = fabric.num_switches
        T = fabric.num_terminals
        # ------------------------------------------------------------------
        # 1. Balanced min-hop trees toward every destination switch.
        #    sw_next[node, t_sw_idx] = next channel toward switch.
        sw_next = np.full((fabric.num_nodes, S), -1, dtype=np.int32)
        load = np.zeros(fabric.num_channels, dtype=np.int64)
        chan_dst = fabric.channels.dst
        for t_sw_idx in range(S):
            dest_sw = int(fabric.switches[t_sw_idx])
            dist = bfs_hops_to(fabric, dest_sw)
            for v in fabric.switches:
                v = int(v)
                if v == dest_sw:
                    continue
                best, best_load = -1, None
                dv = dist[v]
                for c in fabric.out_channels(v):
                    w = int(chan_dst[c])
                    if not fabric.is_switch(w) or dist[w] + 1 != dv:
                        continue
                    if best < 0 or load[c] < best_load:
                        best, best_load = int(c), int(load[c])
                if best < 0:
                    raise RoutingError(
                        f"lash: switch {v} cannot reach switch {dest_sw} "
                        f"through the switch graph"
                    )
                sw_next[v, t_sw_idx] = best
                load[best] += 1

        # ------------------------------------------------------------------
        # 2. Extract the |S|^2 switch-pair paths (suffix-consistent trees).
        pair_paths: dict[tuple[int, int], np.ndarray] = {}
        for t_sw_idx in range(S):
            dest_sw = int(fabric.switches[t_sw_idx])
            for s_sw_idx in range(S):
                if s_sw_idx == t_sw_idx:
                    continue
                node = int(fabric.switches[s_sw_idx])
                chans: list[int] = []
                while node != dest_sw:
                    c = int(sw_next[node, t_sw_idx])
                    chans.append(c)
                    node = int(chan_dst[c])
                    if len(chans) > fabric.num_nodes:  # pragma: no cover
                        raise RoutingError("lash: switch-level forwarding loop")
                pair_paths[(s_sw_idx, t_sw_idx)] = np.array(chans, dtype=np.int32)

        # ------------------------------------------------------------------
        # 3. Online layer assignment per switch pair.
        pair_layer = np.zeros((S, S), dtype=np.int16)
        cdgs = [ChannelDependencyGraph(fabric)]
        for (s_sw_idx, t_sw_idx), chans in pair_paths.items():
            pair_pid = t_sw_idx * S + s_sw_idx
            placed = False
            for layer, cdg in enumerate(cdgs):
                if cdg.try_add_path(pair_pid, chans):
                    pair_layer[s_sw_idx, t_sw_idx] = layer
                    placed = True
                    break
            if not placed:
                if len(cdgs) >= self.max_layers:
                    raise InsufficientLayersError(
                        f"lash: pair ({s_sw_idx},{t_sw_idx}) fits no layer and all "
                        f"{self.max_layers} layers are in use",
                        layers_available=self.max_layers,
                        layers_needed_at_least=self.max_layers + 1,
                    )
                cdgs.append(ChannelDependencyGraph(fabric))
                ok = cdgs[-1].try_add_path(pair_pid, chans)
                assert ok, "a single shortest path cannot be cyclic"
                pair_layer[s_sw_idx, t_sw_idx] = len(cdgs) - 1

        # ------------------------------------------------------------------
        # 4. Expand to terminal-destination forwarding tables.
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        term_sw_idx = np.empty(T, dtype=np.int32)
        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            dest_sw = int(fabric.attached_switches(dest)[0])
            t_sw_idx = int(fabric.switch_index[dest_sw])
            term_sw_idx[t_idx] = t_sw_idx
            next_channel[:, t_idx] = sw_next[:, t_sw_idx]
            eject = fabric.channels_between(dest_sw, dest)
            next_channel[dest_sw, t_idx] = eject[t_idx % len(eject)]
            for term in fabric.terminals:
                term = int(term)
                if term == dest:
                    next_channel[term, t_idx] = -1
                    continue
                # Inject toward the attached switch minimizing switch hops.
                inject = fabric.out_channels(term)
                next_channel[term, t_idx] = inject[t_idx % len(inject)]

        tables = RoutingTables(fabric, next_channel, engine=self.name)
        # Per-(switch, terminal) layers inherit the switch-pair layer; the
        # destination's own switch row is an ejection-only path (layer 0).
        path_layers = np.zeros(S * T, dtype=np.int16)
        for t_idx in range(T):
            t_sw_idx = int(term_sw_idx[t_idx])
            path_layers[t_idx * S : (t_idx + 1) * S] = pair_layer[:, t_sw_idx]
            path_layers[t_idx * S + t_sw_idx] = 0
        layered = LayeredRouting(tables, path_layers, self.max_layers)
        return RoutingResult(
            tables=tables,
            layered=layered,
            deadlock_free=True,
            stats={
                "engine": self.name,
                "layers_needed": len(cdgs),
                "layers_used": layered.layers_used,
            },
        )
