"""MinHop routing — OpenSM's default, the paper's main baseline.

MinHop forwards every destination along some minimum-hop path and
balances *locally*: each switch spreads its destination entries over the
eligible minimum-hop ports by picking, per destination, the port that has
accumulated the fewest routes so far. It is fast and gives good paths,
but (a) its balancing cannot see remote congestion, and (b) it is **not
deadlock-free** — both facts the paper exploits.

Implementation note: the per-destination pass is fully vectorised. This
is *exactly* equivalent to the sequential OpenSM-style loop because a
channel's load counter is only ever bumped by its own source node, so
within one destination no node's choice can influence another's; choices
only interact across destinations, where we apply the bulk update. Ties
break on (load, channel id), matching the sequential first-minimum scan.
"""

from __future__ import annotations


import numpy as np

from repro.network.fabric import Fabric
from repro.routing.base import RoutingEngine, RoutingResult, RoutingTables


def bfs_hops_to(fabric: Fabric, dest: int) -> np.ndarray:
    """Unweighted hop distance of every node to ``dest``.

    Level-synchronous vectorised BFS over the CSR adjacency; terminals
    other than ``dest`` never forward, so they are not expanded.
    """
    dist = np.full(fabric.num_nodes, -1, dtype=np.int64)
    dist[dest] = 0
    frontier = np.array([dest], dtype=np.int64)
    out_ptr, out_chan = fabric.out_ptr, fabric.out_chan
    chan_dst = fabric.channels.dst
    is_switch = fabric.kinds == 0
    level = 0
    while len(frontier):
        level += 1
        # Expand only forwarding nodes (switches) plus the destination.
        expand = frontier[is_switch[frontier] | (frontier == dest)]
        if not len(expand):
            break
        starts = out_ptr[expand]
        counts = out_ptr[expand + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flat indices of all outgoing channels of the frontier.
        base = np.repeat(starts, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        neighbors = chan_dst[out_chan[base + offsets]].astype(np.int64)
        fresh = neighbors[dist[neighbors] < 0]
        if not len(fresh):
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


class MinHopEngine(RoutingEngine):
    """OpenSM-style locally balanced minimum-hop routing."""

    name = "minhop"

    def _route(self, fabric: Fabric) -> RoutingResult:
        T = fabric.num_terminals
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        load = np.zeros(fabric.num_channels, dtype=np.int64)
        chan_src = fabric.channels.src.astype(np.int64)
        chan_dst = fabric.channels.dst.astype(np.int64)
        chan_ids = np.arange(fabric.num_channels, dtype=np.int64)

        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            dist = bfs_hops_to(fabric, dest)
            # A channel (u -> v) lies on a minimum-hop path iff
            # dist[v] + 1 == dist[u]; the destination itself gets no entry.
            eligible = (
                (dist[chan_dst] >= 0)
                & (dist[chan_src] == dist[chan_dst] + 1)
                & (chan_src != dest)
            )
            cand = chan_ids[eligible]
            if not len(cand):  # pragma: no cover - connected fabrics route
                continue
            # First channel per source under (load, cid) ordering.
            order = np.lexsort((cand, load[cand], chan_src[cand]))
            cand = cand[order]
            srcs = chan_src[cand]
            first = np.ones(len(cand), dtype=bool)
            first[1:] = srcs[1:] != srcs[:-1]
            chosen = cand[first]
            next_channel[chan_src[chosen], t_idx] = chosen.astype(np.int32)
            load[chosen] += 1

        tables = RoutingTables(fabric, next_channel, engine=self.name)
        return RoutingResult(
            tables=tables,
            layered=None,
            deadlock_free=False,
            stats={"engine": self.name, "max_port_load": int(load.max(initial=0))},
        )

    # ------------------------------------------------------------------
    def _route_scalar(self, fabric: Fabric) -> RoutingResult:
        """Reference implementation (sequential loop); kept for the
        equivalence regression test."""
        T = fabric.num_terminals
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        load = np.zeros(fabric.num_channels, dtype=np.int64)
        chan_dst = fabric.channels.dst
        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            dist = bfs_hops_to(fabric, dest)
            for v in range(fabric.num_nodes):
                if v == dest:
                    continue
                best, best_load = -1, None
                dv = dist[v]
                for c in fabric.out_channels(v):
                    if dist[chan_dst[c]] < 0 or dist[chan_dst[c]] + 1 != dv:
                        continue
                    lc = load[c]
                    if best < 0 or lc < best_load:
                        best, best_load = int(c), lc
                if best < 0:  # pragma: no cover
                    continue
                next_channel[v, t_idx] = best
                load[best] += 1
        tables = RoutingTables(fabric, next_channel, engine=self.name)
        return RoutingResult(
            tables=tables,
            layered=None,
            deadlock_free=False,
            stats={"engine": self.name, "max_port_load": int(load.max(initial=0))},
        )
