"""Path extraction and the :class:`PathSet` container.

A :class:`PathSet` materialises, for every (source switch, destination
terminal) pair, the unique channel sequence the forwarding tables induce.
It is the shared input of

* the channel-dependency-graph builder (:mod:`repro.deadlock.cdg`),
* the congestion simulator (flows concatenate an injection channel with a
  switch-level path), and
* path statistics (hop histograms, minimality checks).

Storage is flat and destination-major: path ``pid = t_idx * S + s_idx``
occupies ``chans[offsets[pid]:offsets[pid+1]]``. Extraction is vectorised
per destination — all switches walk their next-hop chain simultaneously —
so the Python-level loop count is ``O(num_terminals * diameter)`` instead
of ``O(S * T * diameter)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RoutingError
from repro.network.fabric import Fabric
from repro.routing.base import RoutingTables


class PathSet:
    """Flat storage of all switch-to-terminal paths of a routing."""

    def __init__(self, fabric: Fabric, offsets: np.ndarray, chans: np.ndarray):
        self.fabric = fabric
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.chans = np.asarray(chans, dtype=np.int32)
        expected = fabric.num_switches * fabric.num_terminals + 1
        if self.offsets.shape != (expected,):
            raise RoutingError(f"offsets shape {self.offsets.shape} != ({expected},)")

    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        return len(self.offsets) - 1

    def pid(self, switch_node: int, dest_terminal: int) -> int:
        fab = self.fabric
        s_idx = int(fab.switch_index[switch_node])
        t_idx = int(fab.term_index[dest_terminal])
        if s_idx < 0 or t_idx < 0:
            raise RoutingError(
                f"pid requires (switch, terminal) node ids, got ({switch_node}, {dest_terminal})"
            )
        return t_idx * fab.num_switches + s_idx

    def path(self, pid: int) -> np.ndarray:
        """Channel-id sequence of path ``pid`` (NumPy view)."""
        return self.chans[self.offsets[pid] : self.offsets[pid + 1]]

    def path_between(self, switch_node: int, dest_terminal: int) -> np.ndarray:
        return self.path(self.pid(switch_node, dest_terminal))

    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def hop_histogram(self) -> np.ndarray:
        """Histogram of path hop counts (index = hops)."""
        lengths = self.lengths()
        return np.bincount(lengths) if len(lengths) else np.zeros(1, dtype=np.int64)

    def mean_hops(self) -> float:
        lengths = self.lengths()
        return float(lengths.mean()) if len(lengths) else 0.0

    def endpoints_of(self, pid: int) -> tuple[int, int]:
        """(source switch node id, destination terminal node id) of ``pid``."""
        fab = self.fabric
        s_idx = pid % fab.num_switches
        t_idx = pid // fab.num_switches
        return int(fab.switches[s_idx]), int(fab.terminals[t_idx])

    def active_mask(self) -> np.ndarray:
        """Which paths can actually carry traffic (bool per pid).

        Flows start at terminals, so only paths whose *source switch
        hosts at least one terminal* ever materialise as buffer
        dependencies. OpenSM's DFSSSP likewise only considers CA-to-CA
        paths — layering the spine-originated suffixes separately would
        pin their edges in lower layers and inflate the lane count.
        """
        fab = self.fabric
        leaf = np.zeros(fab.num_switches, dtype=bool)
        for t in fab.terminals:
            for sw in fab.attached_switches(int(t)):
                leaf[int(fab.switch_index[int(sw)])] = True
        return np.tile(leaf, fab.num_terminals)

    def active_pids(self) -> np.ndarray:
        """Ids of the traffic-carrying paths (see :meth:`active_mask`)."""
        return np.flatnonzero(self.active_mask())


def extract_paths(tables: RoutingTables) -> PathSet:
    """Walk the forwarding tables into a :class:`PathSet`.

    Raises :class:`RoutingError` on missing entries or forwarding loops —
    this doubles as the completeness validator for routing engines.
    """
    fab = tables.fabric
    S, T = fab.num_switches, fab.num_terminals
    nc = tables.next_channel
    chan_dst = fab.channels.dst
    switches = fab.switches.astype(np.int64)
    max_steps = fab.num_nodes + 1

    all_lengths = np.empty(S * T, dtype=np.int64)
    chunks: list[np.ndarray] = []

    for t_idx in range(T):
        term = int(fab.terminals[t_idx])
        cur = switches.copy()
        alive = cur != term
        lengths = np.zeros(S, dtype=np.int64)
        steps: list[np.ndarray] = []
        while alive.any():
            c = nc[cur, t_idx]
            bad = alive & (c < 0)
            if bad.any():
                node = int(fab.switches[int(np.flatnonzero(bad)[0])])
                raise RoutingError(
                    f"{tables.engine}: missing table entry at node {node} "
                    f"for terminal {term}"
                )
            step = np.where(alive, c, -1).astype(np.int32)
            steps.append(step)
            lengths[alive] += 1
            cur = np.where(alive, chan_dst[np.maximum(c, 0)].astype(np.int64), cur)
            alive = cur != term
            if len(steps) > max_steps:
                raise RoutingError(
                    f"{tables.engine}: forwarding loop toward terminal {term}"
                )
        if steps:
            m = np.vstack(steps)  # (depth, S)
            mask = (m >= 0).T  # (S, depth)
            chunks.append(m.T[mask])  # per-switch channel runs, s order
        all_lengths[t_idx * S : (t_idx + 1) * S] = lengths

    offsets = np.zeros(S * T + 1, dtype=np.int64)
    np.cumsum(all_lengths, out=offsets[1:])
    chans = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int32)
    if offsets[-1] != len(chans):  # pragma: no cover - internal invariant
        raise RoutingError("path extraction bookkeeping mismatch")
    return PathSet(fab, offsets, chans)


def flow_channels(tables: RoutingTables, paths: PathSet, src_terminal: int, dst_terminal: int) -> np.ndarray:
    """Channel sequence of a terminal-to-terminal flow.

    Concatenates the injection channel chosen by the source terminal's
    table row with the switch-level path from the first-hop switch.
    """
    fab = tables.fabric
    if src_terminal == dst_terminal:
        raise RoutingError("flow requires distinct endpoints")
    t_idx = int(fab.term_index[dst_terminal])
    inject = int(tables.next_channel[src_terminal, t_idx])
    if inject < 0:
        raise RoutingError(
            f"no injection channel from terminal {src_terminal} to {dst_terminal}"
        )
    first = int(fab.channels.dst[inject])
    if first == dst_terminal:  # pragma: no cover - builder forbids T-T cables
        return np.array([inject], dtype=np.int32)
    rest = paths.path_between(first, dst_terminal)
    out = np.empty(len(rest) + 1, dtype=np.int32)
    out[0] = inject
    out[1:] = rest
    return out


def path_minimality_violations(tables: RoutingTables, paths: PathSet) -> int:
    """Count paths longer than the hop distance of an unweighted BFS.

    SSSP's large initial edge weight guarantees zero violations (the §II
    argument); MinHop trivially has zero as well. Used by tests and the
    analysis module.
    """
    from collections import deque

    fab = tables.fabric
    S, T = fab.num_switches, fab.num_terminals
    violations = 0
    lengths = paths.lengths()
    for t_idx in range(T):
        term = int(fab.terminals[t_idx])
        dist = np.full(fab.num_nodes, -1, dtype=np.int64)
        dist[term] = 0
        queue = deque([term])
        while queue:
            v = queue.popleft()
            for c in fab.out_channels(v):
                w = int(fab.channels.dst[c])
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        sw_dist = dist[fab.switches]
        got = lengths[t_idx * S : (t_idx + 1) * S]
        violations += int(np.count_nonzero(got != sw_dist))
    return violations
