"""Name → engine factory registry.

Used by the CLI and the benchmark harnesses to iterate "all engines the
paper compares" uniformly. Factories take no arguments; engines with
parameters get sensible defaults (8 virtual lanes, weakest-edge
heuristic) matching the paper's hardware constraints.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.routing.base import RoutingEngine


def _factories() -> dict[str, Callable[..., RoutingEngine]]:
    # Imported lazily: repro.core's engines themselves import
    # repro.routing.base, so eager imports here would be circular.
    from repro.core.dfsssp import DFSSSPEngine
    from repro.core.sssp import SSSPEngine
    from repro.routing.dor import DOREngine
    from repro.routing.dor_vc import DORVCEngine
    from repro.routing.ftree import FatTreeEngine
    from repro.routing.lash import LASHEngine
    from repro.routing.minhop import MinHopEngine
    from repro.routing.updown import UpDownEngine

    return {
        "minhop": MinHopEngine,
        "updown": UpDownEngine,
        "dor": DOREngine,
        "dor_vc": DORVCEngine,
        "ftree": FatTreeEngine,
        "lash": LASHEngine,
        "sssp": SSSPEngine,
        "dfsssp": DFSSSPEngine,
    }


class _LazyEngines(dict):
    """Mapping that materialises the factory table on first access."""

    def _ensure(self):
        if not super().__len__():
            super().update(_factories())

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self):
        self._ensure()
        return super().__len__()

    def __contains__(self, key):
        self._ensure()
        return super().__contains__(key)

    def keys(self):
        self._ensure()
        return super().keys()

    def items(self):
        self._ensure()
        return super().items()

    def values(self):
        self._ensure()
        return super().values()


ENGINES: dict[str, Callable[..., RoutingEngine]] = _LazyEngines()

#: the engine list of the paper's Figure 4, in presentation order
PAPER_ENGINES = ("minhop", "updown", "dor", "ftree", "lash", "sssp", "dfsssp")

#: engines that guarantee deadlock-freedom by construction
DEADLOCK_FREE_ENGINES = ("updown", "dor_vc", "ftree", "lash", "dfsssp")

#: engines whose ``reroute`` repairs incrementally instead of recomputing
#: from scratch (see :mod:`repro.resilience.repair`)
REPAIRABLE_ENGINES = ("sssp", "dfsssp")


def make_engine(name: str, **kwargs) -> RoutingEngine:
    """Instantiate an engine by name, forwarding keyword options."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    return factory(**kwargs)
