"""Up*/Down* routing (Autonet-style, as shipped in OpenSM).

Switches are ranked by BFS distance from a root; every channel is *up*
(toward the root, i.e. to a strictly smaller ``(rank, id)``) or *down*.
A legal route is ``up* down*`` — never down-then-up — which makes the
channel dependency graph acyclic without virtual channels, at the price
of concentrating traffic near the root (the bandwidth loss the paper
measures against).

Destination-based tables cannot track a packet's phase, so we make the
chosen paths phase-consistent *by construction*: a node may adopt a
down-edge next hop only if the downstream node's own chosen path is
entirely down. This is a Dijkstra-like dynamic program from each
destination; among equal candidates we prefer all-down paths (they keep
more options open for predecessors) and then the least-loaded port
(OpenSM-style balancing).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.exceptions import RoutingError
from repro.network.fabric import Fabric
from repro.routing.base import LayeredRouting, RoutingEngine, RoutingResult, RoutingTables


def rank_switches(fabric: Fabric, root: int | None = None) -> tuple[np.ndarray, int]:
    """BFS ranks over the switch-to-switch graph.

    The root defaults to the highest-degree switch (ties: lowest id) —
    a stand-in for OpenSM's root auto-selection.
    """
    if root is None:
        best = None
        for s in fabric.switches:
            key = (fabric.degree(int(s)), -int(s))
            if best is None or key > best[0]:
                best = (key, int(s))
        root = best[1]
    elif not fabric.is_switch(root):
        raise RoutingError(f"Up*/Down* root {root} is not a switch")
    rank = np.full(fabric.num_nodes, -1, dtype=np.int64)
    rank[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        for c in fabric.out_channels(v):
            w = int(fabric.channels.dst[c])
            if fabric.is_switch(w) and rank[w] < 0:
                rank[w] = rank[v] + 1
                queue.append(w)
    unranked = [int(s) for s in fabric.switches if rank[int(s)] < 0]
    if unranked:
        raise RoutingError(
            f"Up*/Down* requires a connected switch graph; switches {unranked[:5]} "
            f"are unreachable from root {root} without crossing terminals"
        )
    return rank, root


class UpDownEngine(RoutingEngine):
    """Deadlock-free Up*/Down* routing (single virtual layer)."""

    name = "updown"

    def __init__(self, root: int | None = None):
        self.root = root

    def _route(self, fabric: Fabric) -> RoutingResult:
        rank, root = rank_switches(fabric, self.root)
        T = fabric.num_terminals
        next_channel = np.full((fabric.num_nodes, T), -1, dtype=np.int32)
        load = np.zeros(fabric.num_channels, dtype=np.int64)

        for t_idx in range(T):
            dest = int(fabric.terminals[t_idx])
            chan = self._dp_from_dest(fabric, dest, rank, load)
            next_channel[:, t_idx] = chan
            # Count loads once per table entry, as in MinHop.
            valid = chan[chan >= 0]
            np.add.at(load, valid, 1)

        tables = RoutingTables(fabric, next_channel, engine=self.name)
        layered = LayeredRouting.single_layer(tables)
        return RoutingResult(
            tables=tables,
            layered=layered,
            deadlock_free=True,
            stats={"engine": self.name, "root": root},
        )

    @staticmethod
    def _dp_from_dest(fabric: Fabric, dest: int, rank: np.ndarray, load: np.ndarray) -> np.ndarray:
        """Choose a phase-consistent next hop for every node, in two stages.

        **Stage 1 (descent):** Dijkstra from the destination over *down*
        edges only. Every node settled here owns an all-down chosen path.
        The BFS-tree argument guarantees the Up*/Down* root is always
        among them (the tree path root→…→dest's switch descends).

        **Stage 2 (ascent):** remaining nodes relax exclusively via *up*
        edges into already-settled nodes. Prepending an up hop to any
        legal path stays ``up* down*``, so realized routes are legal by
        construction; every non-root switch has an up neighbor, so all
        nodes settle.

        Descent nodes keep their all-down path even when a shorter
        up-then-down mixture exists — the conservative choice that makes
        destination-based tables phase-consistent. Ties break on port
        load (OpenSM-style balancing), then insertion order.
        """
        n = fabric.num_nodes
        chosen = np.full(n, -1, dtype=np.int32)
        settled = np.zeros(n, dtype=bool)
        dist = np.zeros(n, dtype=np.int64)
        chan_dst = fabric.channels.dst
        reverse = fabric.channels.reverse

        def goes_down(u: int, v: int) -> bool:
            """Does the channel u->v descend? Terminals hang below their
            switches; among switches, strictly larger (rank, id) is lower."""
            if fabric.is_terminal(v):
                return True
            if fabric.is_terminal(u):
                return False
            return (rank[v], v) > (rank[u], u)

        counter = 0

        def push_predecessors(heap: list, u: int, want_down: bool):
            nonlocal counter
            du = int(dist[u])
            for c_out in fabric.out_channels(u):
                c = int(reverse[c_out])  # channel p -> u
                p = int(chan_dst[c_out])
                if settled[p]:
                    continue
                if goes_down(p, u) != want_down:
                    continue
                counter += 1
                heapq.heappush(heap, (du + 1, int(load[c]), counter, p, c))

        def run(heap: list, want_down: bool):
            while heap:
                d, _lc, _cnt, node, c = heapq.heappop(heap)
                if settled[node]:
                    continue
                settled[node] = True
                dist[node] = d
                chosen[node] = c
                if fabric.is_switch(node):
                    # Terminals never forward traffic for others.
                    push_predecessors(heap, node, want_down)

        settled[dest] = True
        down_heap: list = []
        push_predecessors(down_heap, dest, want_down=True)
        run(down_heap, want_down=True)

        up_heap: list = []
        for u in range(n):
            if settled[u] and fabric.is_switch(u):
                push_predecessors(up_heap, u, want_down=False)
        push_predecessors(up_heap, dest, want_down=False)
        run(up_heap, want_down=False)
        chosen[dest] = -1
        return chosen
