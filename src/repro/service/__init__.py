"""Supervised routing service: deadlines, backoff, checkpoint/restore.

The policy layer over :mod:`repro.resilience`'s mechanisms — see
``docs/service.md``. Light submodules (:mod:`~repro.service.budget`,
:mod:`~repro.service.policy`) are imported eagerly; the engine-facing
ones load lazily so ``repro.core`` can import :func:`check_budget`
without dragging the whole routing stack (and a circular import) along.
"""

from repro.service.budget import (
    Budget,
    active_budget,
    check_budget,
    compute_budget,
)
from repro.service.policy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffPolicy,
    CircuitBreaker,
    ServicePolicy,
)

_LAZY = {
    "Checkpoint": "repro.service.checkpoint",
    "CheckpointStore": "repro.service.checkpoint",
    "BatchOutcome": "repro.service.supervisor",
    "RoutingSupervisor": "repro.service.supervisor",
    "ServedRouting": "repro.service.supervisor",
    "HEALTHY": "repro.service.supervisor",
    "REPAIRING": "repro.service.supervisor",
    "DEGRADED": "repro.service.supervisor",
    "FAILED": "repro.service.supervisor",
    "STATES": "repro.service.supervisor",
}

__all__ = [
    "Budget",
    "active_budget",
    "check_budget",
    "compute_budget",
    "BackoffPolicy",
    "CircuitBreaker",
    "ServicePolicy",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
