"""Cooperative compute budgets (deadlines) for routing work.

A long-running routing service must bound how long any single recompute
may take: a repair that stalls for minutes is worse than serving slightly
stale last-known-good tables, because the fabric keeps changing
underneath it. OpenSM solves this with worker threads and signals; we use
*cooperative* deadlines instead — the SSSP/DFSSSP/repair inner loops
periodically call :func:`check_budget`, which raises
:class:`~repro.exceptions.ComputeTimeoutError` once the active
:class:`Budget` is exhausted. Abandoning work this way is always safe:
engines build fresh arrays and only publish complete results, so a
timeout can never corrupt the routing currently being served.

Budgets nest through a :mod:`contextvars` context variable (so they are
thread- and async-safe like tracing spans): entering an inner budget can
only *tighten* the effective deadline, never extend an outer one. Code
that never activates a budget pays one context-variable read per
check — cheap enough for per-destination granularity.

>>> with compute_budget(None) as b:          # unlimited
...     check_budget()
>>> b.checks
1
"""

from __future__ import annotations

import time
from contextvars import ContextVar

from repro.exceptions import ComputeTimeoutError

_active: ContextVar["Budget | None"] = ContextVar("repro_service_budget", default=None)


class Budget:
    """A deadline measured on a monotonic clock.

    Parameters
    ----------
    seconds:
        Allowed wall time from construction; ``None`` means unlimited
        (checks never raise — useful to keep call sites unconditional).
    label:
        Name carried into :class:`ComputeTimeoutError` and metrics, e.g.
        ``"repair"`` or ``"full_reroute"``.
    clock:
        Monotonic time source. Tests inject a fake counter to expire a
        budget after a deterministic number of checks; production uses
        :func:`time.perf_counter` so wall-clock adjustments (NTP steps)
        cannot fire or defer deadlines.
    """

    __slots__ = ("label", "seconds", "clock", "started", "deadline", "checks")

    def __init__(self, seconds: float | None, *, label: str = "compute", clock=time.perf_counter):
        if seconds is not None and seconds < 0:
            raise ValueError(f"budget seconds must be >= 0 or None, got {seconds}")
        self.label = label
        self.seconds = seconds
        self.clock = clock
        self.started = clock()
        self.deadline = None if seconds is None else self.started + seconds
        self.checks = 0

    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining(self) -> float | None:
        """Seconds left, clamped at 0 (``None`` when unlimited)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.clock() >= self.deadline

    def check(self) -> None:
        """Count a checkpoint; raise if the deadline has passed."""
        self.checks += 1
        if self.deadline is not None and self.clock() >= self.deadline:
            raise ComputeTimeoutError(
                f"{self.label} budget of {self.seconds:g}s exhausted "
                f"after {self.elapsed():.3f}s ({self.checks} checks)",
                label=self.label,
                limit_s=self.seconds,
                elapsed_s=self.elapsed(),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        left = self.remaining()
        state = "unlimited" if left is None else f"{left:.3f}s left"
        return f"Budget({self.label!r}, {state})"


def active_budget() -> Budget | None:
    """The innermost active budget in this context, if any."""
    return _active.get()


def check_budget() -> None:
    """Engine-side checkpoint: no-op without an active budget.

    This is the function the SSSP/DFSSSP/repair inner loops call; it must
    stay cheap when nobody set a deadline (one context-variable read).
    """
    b = _active.get()
    if b is not None:
        b.check()


class compute_budget:
    """Context manager activating a :class:`Budget` for the enclosed work.

    Nested budgets never extend an enclosing deadline: when an outer
    budget (on the same clock) expires earlier, the inner budget inherits
    the outer deadline.
    """

    __slots__ = ("_budget", "_token")

    def __init__(self, seconds: float | None, *, label: str = "compute",
                 clock=time.perf_counter):
        self._budget = Budget(seconds, label=label, clock=clock)

    def __enter__(self) -> Budget:
        b = self._budget
        outer = _active.get()
        if (
            outer is not None
            and outer.deadline is not None
            and outer.clock is b.clock
            and (b.deadline is None or outer.deadline < b.deadline)
        ):
            b.deadline = outer.deadline
            b.seconds = b.deadline - b.started
        self._token = _active.set(b)
        return b

    def __exit__(self, exc_type, exc, tb) -> None:
        _active.reset(self._token)
