"""Atomic, versioned checkpoints for the supervised routing service.

A checkpoint captures everything the supervisor needs to resume after a
crash (including SIGKILL at any instant):

* the **healthy baseline fabric** (``fabric.json``) — fault history is
  expressed in its coordinates;
* the **last-known-good routing** (``routing.npz``: forwarding tables,
  virtual-layer assignment and balancing weights, fingerprinted against
  the *degraded* fabric they were computed for);
* the **supervisor state** (``state.json``: state-machine state, dead
  cable/switch sets, uncommitted fault events, failure counters, breaker
  state, monotonically increasing version, plus a caller-owned ``extra``
  dict — the serve CLI stashes its fault-stream seed there).

Layout under the store root::

    CURRENT             # name of the newest complete checkpoint
    ckpt-00000007/      # one immutable directory per version
        fabric.json
        routing.npz
        state.json
        certificate.json  # deadlock-freedom certificate (layered routings)

Writes are crash-safe by construction: a checkpoint is staged in a
temporary directory, published with a single ``rename`` to its (never
reused) versioned name, and only then does ``CURRENT`` flip — itself an
atomic tmp-file + ``os.replace``. Readers always follow ``CURRENT``, so
they see the previous checkpoint until the new one is complete. Stale
staging directories and pruned old versions are cleaned opportunistically.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import CheckpointError, FabricError, ReproError, RoutingError
from repro.network.fabric import Fabric
from repro.network.faults import DegradedFabric, degrade
from repro.network.io import load_fabric, save_fabric
from repro.obs import get_registry
from repro.obs.recorder import record_event
from repro.routing.base import RoutingResult
from repro.routing.io import load_routing_state, save_routing
from repro.utils.atomicio import atomic_write_text

STATE_FORMAT = 1

_CURRENT = "CURRENT"
_PREFIX = "ckpt-"


@dataclass
class Checkpoint:
    """One restored checkpoint, fully materialised."""

    version: int
    path: Path
    baseline: Fabric
    degraded: DegradedFabric
    result: RoutingResult
    state: dict


class CheckpointStore:
    """Versioned checkpoint directory with an atomic ``CURRENT`` pointer."""

    def __init__(self, root: str | Path, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.keep = keep
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def latest_version(self) -> int | None:
        """Version named by ``CURRENT``, or ``None`` if no checkpoint exists."""
        pointer = self.root / _CURRENT
        try:
            name = pointer.read_text().strip()
        except FileNotFoundError:
            return None
        except OSError as err:
            raise CheckpointError(f"{pointer}: cannot read checkpoint pointer: {err}") from err
        if not name.startswith(_PREFIX):
            raise CheckpointError(f"{pointer}: corrupt pointer contents {name!r}")
        try:
            return int(name[len(_PREFIX):])
        except ValueError as err:
            raise CheckpointError(f"{pointer}: corrupt pointer contents {name!r}") from err

    def __contains__(self, version: int) -> bool:
        return (self.root / self._name(version) / "state.json").exists()

    def complete_versions(self) -> list[int]:
        """Versions whose directory is complete (published with its
        ``state.json``), ascending. Staging dirs never qualify — a
        checkpoint only becomes visible through its final ``rename``."""
        out = []
        for entry in self.root.iterdir():
            if entry.name.startswith(_PREFIX) and (entry / "state.json").is_file():
                try:
                    out.append(int(entry.name[len(_PREFIX):]))
                except ValueError:  # pragma: no cover - foreign dir
                    continue
        return sorted(out)

    @staticmethod
    def _name(version: int) -> str:
        return f"{_PREFIX}{version:08d}"

    # ------------------------------------------------------------------
    def save(
        self,
        *,
        version: int,
        baseline: Fabric,
        result: RoutingResult,
        state: dict,
    ) -> Path:
        """Persist one checkpoint; returns its directory.

        ``state`` must be JSON-serialisable and carry the dead sets that
        reproduce ``result``'s fabric from ``baseline`` (see
        :meth:`load`). The version must be new — checkpoints are immutable.
        """
        final = self.root / self._name(version)
        if final.exists():
            raise CheckpointError(f"{final}: checkpoint version {version} already exists")
        staging = self.root / f".staging-{self._name(version)}-{os.getpid()}"
        if staging.exists():  # pragma: no cover - leftover from a crashed pid reuse
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            save_fabric(baseline, staging / "fabric.json")
            save_routing(
                staging / "routing.npz",
                result.tables,
                result.layered,
                channel_weights=result.channel_weights,
            )
            if result.certificate is not None:
                (staging / "certificate.json").write_text(result.certificate.to_json())
            payload = dict(state)
            payload["format"] = STATE_FORMAT
            payload["version"] = version
            (staging / "state.json").write_text(json.dumps(payload, indent=1, sort_keys=True))
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        atomic_write_text(self.root / _CURRENT, self._name(version) + "\n")
        self._cleanup(current=version)
        return final

    def _cleanup(self, current: int) -> None:
        """Drop stale staging dirs and checkpoints beyond ``keep``."""
        versions = []
        for entry in self.root.iterdir():
            if entry.name.startswith(".staging-"):
                shutil.rmtree(entry, ignore_errors=True)
            elif entry.name.startswith(_PREFIX) and entry.is_dir():
                try:
                    versions.append(int(entry.name[len(_PREFIX):]))
                except ValueError:  # pragma: no cover - foreign dir
                    continue
        versions.sort(reverse=True)
        for v in versions[self.keep:]:
            if v != current:
                shutil.rmtree(self.root / self._name(v), ignore_errors=True)

    # ------------------------------------------------------------------
    def load(self, version: int | None = None) -> Checkpoint:
        """Materialise a checkpoint (default: the one ``CURRENT`` names).

        Reconstructs the degraded fabric by re-applying the checkpointed
        dead sets to the baseline, then validates the routing against it
        (fingerprint check). Raises :class:`CheckpointError` naming the
        offending file on any corruption or mismatch.

        When no explicit ``version`` is requested and the version named
        by ``CURRENT`` is missing or corrupt — a disk fault or tampering,
        never a normal crash, which the staged-rename protocol already
        covers — the store falls back to the newest *older* complete
        checkpoint instead of raising, recording a ``checkpoint_fallback``
        flight event (and bumping ``checkpoint_fallbacks_total``) so the
        post-mortem shows the service resumed from older state. An
        explicit ``version`` is a precise request and never falls back.
        """
        if version is not None:
            return self._load_version(version)
        current = self.latest_version()
        if current is None:
            raise CheckpointError(f"{self.root}: no checkpoint found (missing {_CURRENT})")
        try:
            return self._load_version(current)
        except CheckpointError as err:
            for candidate in reversed([v for v in self.complete_versions() if v < current]):
                try:
                    ckpt = self._load_version(candidate)
                except CheckpointError:
                    continue  # also damaged; keep walking back
                # Clear the damaged version so the resumed supervisor can
                # reuse its number (checkpoint dirs are never overwritten).
                shutil.rmtree(self.root / self._name(current), ignore_errors=True)
                record_event(
                    "checkpoint_fallback", root=str(self.root),
                    failed_version=current, fallback_version=candidate,
                    reason=str(err),
                )
                get_registry().counter(
                    "checkpoint_fallbacks_total",
                    "restores served by an older checkpoint after CURRENT's was damaged",
                ).inc()
                return ckpt
            raise

    def _load_version(self, version: int) -> Checkpoint:
        path = self.root / self._name(version)
        state_path = path / "state.json"
        try:
            state = json.loads(state_path.read_text())
        except FileNotFoundError as err:
            raise CheckpointError(f"{state_path}: missing checkpoint state") from err
        except (OSError, json.JSONDecodeError) as err:
            raise CheckpointError(f"{state_path}: corrupt checkpoint state: {err}") from err
        if state.get("format") != STATE_FORMAT:
            raise CheckpointError(
                f"{state_path}: unsupported checkpoint format {state.get('format')!r}"
            )
        for key in ("engine", "state", "dead_cables", "dead_switches"):
            if key not in state:
                raise CheckpointError(f"{state_path}: missing key {key!r}")

        try:
            baseline = load_fabric(path / "fabric.json")
        except FabricError as err:
            raise CheckpointError(f"{path / 'fabric.json'}: {err}") from err

        dead_switches = {int(s) for s in state["dead_switches"]}
        dead_cables = {tuple(int(c) for c in key) for key in state["dead_cables"]}
        try:
            degraded = degrade(baseline, dead_switches, dead_cables)
        except ReproError as err:
            raise CheckpointError(
                f"{state_path}: dead sets do not apply to the baseline fabric: {err}"
            ) from err

        routing_path = path / "routing.npz"
        try:
            routing = load_routing_state(routing_path, degraded.fabric)
        except FileNotFoundError as err:
            raise CheckpointError(f"{routing_path}: missing routing state") from err
        except (RoutingError, OSError, ValueError) as err:
            raise CheckpointError(f"{routing_path}: {err}") from err

        certificate = None
        cert_path = path / "certificate.json"
        if cert_path.is_file():
            from repro.deadlock.certificate import DeadlockFreedomCertificate
            from repro.exceptions import CertificateError

            try:
                certificate = DeadlockFreedomCertificate.load(cert_path)
            except CertificateError as err:
                # Checkpoints are immutable and written atomically; an
                # unparsable certificate means tampering or disk fault —
                # fail loudly like any other corrupt checkpoint file.
                raise CheckpointError(f"{cert_path}: {err}") from err

        result = RoutingResult(
            tables=routing.tables,
            layered=routing.layered,
            deadlock_free=routing.layered is not None,
            stats={"engine": routing.engine, "restored_from": str(path)},
            channel_weights=routing.channel_weights,
            certificate=certificate,
        )
        return Checkpoint(
            version=int(state.get("version", version)),
            path=path,
            baseline=baseline,
            degraded=degraded,
            result=result,
            state=state,
        )
