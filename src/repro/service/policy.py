"""Retry, backoff and circuit-breaker policy for the routing service.

The supervisor's escalation ladder (incremental repair → full reroute →
fallback engine) is mechanism; this module is the policy that drives it:
how long each rung may run (:class:`ServicePolicy` deadlines), how often
a failed rung is retried and how the retries space out
(:class:`BackoffPolicy`, exponential with decorrelating jitter), and when
the service stops burning CPU on a fabric it cannot route
(:class:`CircuitBreaker` — trips open after N consecutive batch
failures, probes again after a cooldown).

Everything is JSON round-trippable (``to_dict``/``from_dict``) so the
supervisor can persist its policy and breaker state into checkpoints and
resume identically after a crash.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field, replace

from repro.obs.recorder import record_event

#: circuit-breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative jitter.

    ``delay(attempt, rng)`` for attempt 0, 1, 2, … is
    ``min(cap_s, base_s * factor**attempt)`` scaled by a uniform factor
    in ``[1 - jitter, 1]`` — jitter only ever *shortens* the wait, so the
    cap remains a hard upper bound and tests can bound total retry time.
    """

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 2.0
    jitter: float = 0.5
    max_attempts: int = 3

    def __post_init__(self):
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int, rng=None) -> float:
        d = min(self.cap_s, self.base_s * self.factor ** max(0, attempt))
        if rng is not None and self.jitter:
            d *= 1.0 - self.jitter * float(rng.random())
        return d

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BackoffPolicy":
        return cls(**data)


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; probe after cooldown.

    States: *closed* (normal operation), *open* (all attempts rejected
    until ``cooldown_s`` elapsed on the supplied monotonic clock),
    *half-open* (exactly one probe allowed; success closes, failure
    re-opens). While the probe is in flight every other :meth:`allow`
    returns ``False`` — interleaved request batches cannot stampede a
    recovering dependency. All transitions are mutex-protected, so one
    breaker may be shared across request threads (the fleet front-end
    keeps one per fabric).
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0, *,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = CLOSED
        self.failures = 0
        self.opened_at: float | None = None
        self._probing = False
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        return self.state == OPEN

    @property
    def probing(self) -> bool:
        """True while a half-open probe is in flight (unresolved)."""
        return self.state == HALF_OPEN and self._probing

    def allow(self) -> bool:
        """May the caller attempt work right now?

        Transitions *open* → *half-open* once the cooldown has elapsed.
        The caller owning that ``True`` is the single probe: until it
        resolves via :meth:`record_success` / :meth:`record_failure`,
        every other caller is rejected.
        """
        with self._lock:
            if self.state == OPEN:
                if (
                    self.opened_at is not None
                    and self.clock() - self.opened_at >= self.cooldown_s
                ):
                    self.state = HALF_OPEN
                    self._probing = True
                    record_event("breaker_half_open", failures=self.failures)
                    return True
                return False
            if self.state == HALF_OPEN:
                if self._probing:
                    return False  # probe already in flight; wait for its verdict
                self._probing = True
                return True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self.state != CLOSED:
                record_event("breaker_closed", failures=self.failures)
            self.state = CLOSED
            self.failures = 0
            self.opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._probing = False
            if self.state == HALF_OPEN or self.failures >= self.threshold:
                if self.state != OPEN:
                    record_event("breaker_open", failures=self.failures,
                                 threshold=self.threshold)
                self.state = OPEN
                self.opened_at = self.clock()

    def to_dict(self) -> dict:
        """Persistable state (relative cooldown remaining, not clock values —
        monotonic clocks do not survive a process restart)."""
        remaining = None
        if self.state == OPEN and self.opened_at is not None:
            remaining = max(0.0, self.cooldown_s - (self.clock() - self.opened_at))
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "state": self.state,
            "failures": self.failures,
            "cooldown_remaining_s": remaining,
        }

    @classmethod
    def from_dict(cls, data: dict, *, clock=time.monotonic) -> "CircuitBreaker":
        breaker = cls(int(data["threshold"]), float(data["cooldown_s"]), clock=clock)
        breaker.state = data.get("state", CLOSED)
        breaker.failures = int(data.get("failures", 0))
        # A probe in flight at checkpoint time died with its process: a
        # restored half-open breaker grants one fresh probe immediately.
        if breaker.state == OPEN:
            remaining = float(data.get("cooldown_remaining_s") or 0.0)
            # Re-anchor so the restored breaker re-probes after the same
            # residual cooldown it had when checkpointed.
            breaker.opened_at = clock() - (breaker.cooldown_s - remaining)
        return breaker

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker({self.state}, failures={self.failures}/{self.threshold})"


@dataclass(frozen=True)
class ServicePolicy:
    """All supervisor knobs in one JSON-serialisable bundle.

    Deadlines are seconds on the service's monotonic clock; ``None``
    disables the corresponding budget (unlimited).
    """

    repair_deadline_s: float | None = 5.0
    full_deadline_s: float | None = 30.0
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    fallback_engine: str | None = "updown"
    checkpoint_every: int = 1
    keep_checkpoints: int = 3

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")

    def with_(self, **changes) -> "ServicePolicy":
        """A copy with the given fields replaced (soaks use this to inject
        timeouts for specific events)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["backoff"] = self.backoff.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServicePolicy":
        data = dict(data)
        if "backoff" in data and isinstance(data["backoff"], dict):
            data["backoff"] = BackoffPolicy.from_dict(data["backoff"])
        return cls(**data)
