"""Supervised routing service: the policy layer over fault streams.

The paper's DFSSSP ran inside OpenSM — a long-running subnet manager
that must keep handing out *valid* forwarding tables while the fabric
changes underneath it. :class:`RoutingSupervisor` reproduces that
operational contract on top of the PR-2 mechanisms (fault events,
incremental repair, chaos streams):

* **Queue + coalescing.** Fault events are :meth:`submit`-ted into a
  queue; :meth:`process` drains the whole backlog into *one* repair
  batch, so a burst of failures costs one recompute, not one per event.
* **Deadlines.** Every recompute runs under a cooperative
  :class:`~repro.service.budget.Budget`; the SSSP/DFSSSP/repair inner
  loops poll it and abandon work with
  :class:`~repro.exceptions.ComputeTimeoutError` when it expires.
* **Escalation ladder.** incremental repair → full reroute → safe
  fallback engine (Up*/Down* by default), each rung retried with
  exponential backoff + jitter. A rung's result is *independently
  verified* (reachability + per-layer acyclicity) before it is accepted —
  the supervisor never serves an unroutable or cyclic table.
* **Last-known-good serving.** While repairing — and after a failed
  batch — :meth:`serving` keeps returning the previous good routing,
  explicitly marked ``stale``. A :class:`~repro.service.policy.CircuitBreaker`
  trips to ``FAILED`` after N consecutive batch failures and re-probes
  after a cooldown.
* **Checkpoint/restore.** Atomic checkpoints (baseline fabric + tables +
  balancing weights + supervisor state) are written through a
  :class:`~repro.service.checkpoint.CheckpointStore`; a killed process
  :meth:`restore`-s and resumes mid-soak with identical state.

State machine::

              submit+process            all rungs fail
    HEALTHY ----------------> REPAIRING ----------------> DEGRADED (stale LKG)
       ^                        |    |                       |
       |   verified repair/full |    | fallback engine ok    | breaker trips
       +------------------------+    +--> DEGRADED (fresh) --+--> FAILED
                                                             cooldown -> re-probe
"""

from __future__ import annotations

import secrets
import time
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.deadlock.verify import verify_deadlock_free
from repro.exceptions import ComputeTimeoutError, ReproError, RoutingError, ServiceError
from repro.network.fabric import Fabric
from repro.network.faults import DegradedFabric, degrade, identity_degradation
from repro.network.validate import check_routable
from repro.obs import DURATION_BUCKETS, get_registry, span
from repro.obs.recorder import get_recorder, record_event
from repro.obs.telemetry import request_scope
from repro.resilience.events import LINK_UP, FaultEvent, relative_degradation
from repro.routing.base import RoutingEngine, RoutingResult
from repro.routing.paths import extract_paths
from repro.routing.registry import make_engine
from repro.service.budget import compute_budget
from repro.service.checkpoint import Checkpoint, CheckpointStore
from repro.service.policy import CircuitBreaker, ServicePolicy
from repro.utils.prng import make_rng

#: supervisor states
HEALTHY = "healthy"
REPAIRING = "repairing"
DEGRADED = "degraded"
FAILED = "failed"

STATES = (HEALTHY, REPAIRING, DEGRADED, FAILED)

_STATE_CODES = {state: i for i, state in enumerate(STATES)}


@dataclass(frozen=True)
class ServedRouting:
    """What a routing query gets: always *some* valid tables.

    ``stale`` is True when the tables were computed for an older fabric
    than the physically current one (failed or still-pending repairs);
    consumers decide whether stale-but-deadlock-free beats nothing.
    """

    result: RoutingResult
    stale: bool
    version: int
    state: str
    pending_events: int

    @property
    def fabric(self) -> Fabric:
        return self.result.tables.fabric


@dataclass
class BatchOutcome:
    """JSON-friendly record of one coalesced repair batch."""

    batch: int
    request_id: str | None = None
    events: list[dict] = field(default_factory=list)
    coalesced: int = 0
    action: str = "none"  # "repair" | "full" | "fallback" | "rejected" | "failed"
    ok: bool = False
    attempts: int = 0
    timeouts: int = 0
    seconds: float = 0.0
    state: str = HEALTHY
    version: int = 0
    stale: bool = False
    switches: int | None = None
    cables: int | None = None
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)


class RoutingSupervisor:
    """Long-running routing service over one fabric's fault stream.

    Parameters
    ----------
    fabric:
        The healthy baseline. The initial route runs (and is verified)
        during construction, so a constructed supervisor always serves.
    engine:
        Primary engine — a name or a :class:`RoutingEngine` instance.
    policy:
        :class:`ServicePolicy` knobs (deadlines, backoff, breaker,
        fallback, checkpoint cadence).
    checkpoint_dir:
        Enables checkpointing; ``restore`` resumes from it.
    cache_dir:
        Path or ready-made :class:`~repro.routing.cache.RoutingCache`
        instance (a fleet worker shares one bounded cache across its
        shards). Enables the cache: full
        routes (the initial route and the ladder's "full" rung) first
        probe the cache under the target fabric's fingerprint + engine
        config, and every freshly computed full route is stored back.
        A supervisor restarted on the same fabric — or re-encountering a
        previously seen degraded fabric — warm-starts instead of paying
        the full recompute. Cached results still pass :meth:`_verify`
        before being served.
    clock / sleep:
        Monotonic clock for breaker cooldowns and a sleep for backoff —
        injectable so tests run instantly and deterministically. Compute
        deadlines always use :func:`time.perf_counter` internally.
    seed:
        Jitter RNG seed (backoff determinism in tests).
    engine_opts:
        Keyword options forwarded to :func:`make_engine` when ``engine``
        is a name (e.g. ``{"workers": 4, "kernel": "numpy"}`` to run the
        SSSP phase on the parallel executor). Persisted in checkpoints
        and re-applied on :meth:`restore`, so a restored service keeps
        its parallel configuration. Ignored when ``engine`` is already an
        instance.
    """

    def __init__(
        self,
        fabric: Fabric | None = None,
        engine: str | RoutingEngine = "dfsssp",
        policy: ServicePolicy | None = None,
        checkpoint_dir=None,
        cache_dir=None,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
        seed=0,
        engine_opts: dict | None = None,
        _restored: Checkpoint | None = None,
    ):
        self.policy = policy or ServicePolicy()
        self.engine_opts = {} if isinstance(engine, RoutingEngine) else dict(engine_opts or {})
        self.engine = (
            engine if isinstance(engine, RoutingEngine) else make_engine(engine, **self.engine_opts)
        )
        self.clock = clock
        self.sleep = sleep
        self.rng = make_rng(seed)
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown_s, clock=clock
        )
        self._store = (
            CheckpointStore(checkpoint_dir, keep=self.policy.keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        if cache_dir is not None:
            from repro.routing.cache import RoutingCache

            # Accept a ready-made cache so fleets can share one bounded
            # instance across all supervisors in a worker process.
            self._cache = (
                cache_dir if isinstance(cache_dir, RoutingCache) else RoutingCache(cache_dir)
            )
        else:
            self._cache = None
        self._queue: deque[FaultEvent] = deque()
        self._uncommitted: list[FaultEvent] = []
        self.extra: dict = {}
        self.events_submitted = 0
        self.batches = 0
        self.consecutive_failures = 0
        # Request-id namespace: ids are svc-<service_id>-<seq>. Both parts
        # are checkpointed, so a restored service keeps issuing unique ids
        # in the same namespace (no id is ever reused across a crash).
        self.service_id = secrets.token_hex(4)
        self.request_seq = 0

        if _restored is not None:
            self._adopt(_restored)
            self._count_restore()
            return

        if fabric is None:
            raise ServiceError("a fabric is required unless restoring from a checkpoint")
        self.baseline = fabric
        self._committed = identity_degradation(fabric)
        self._committed_cables: set[tuple[int, int]] = set()
        self._committed_switches: set[int] = set()
        self._stale = False
        self.version = 0
        self._ckpt_seq = 1
        self._successes_since_checkpoint = 0
        with request_scope(
            self._next_request_id(), name="service.initial_route", engine=self.engine.name
        ):
            with compute_budget(self.policy.full_deadline_s, label="initial_route"):
                result = self._full_route(fabric)
            self._verify(result)
        self._lkg = result
        self.version = 1
        self._set_state(HEALTHY)
        if self._store is not None:
            self.checkpoint()

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        checkpoint_dir,
        *,
        policy: ServicePolicy | None = None,
        cache_dir=None,
        clock=time.monotonic,
        sleep=time.sleep,
        seed=0,
    ) -> "RoutingSupervisor":
        """Resume from the newest checkpoint under ``checkpoint_dir``.

        The persisted policy is used unless an explicit ``policy``
        overrides it; breaker state, dead sets, queued events, counters
        and the ``extra`` dict all come back exactly as checkpointed.
        """
        store = CheckpointStore(checkpoint_dir)
        with span("service.restore", path=str(checkpoint_dir)):
            ckpt = store.load()
            restored_policy = policy or ServicePolicy.from_dict(ckpt.state["policy"])
            sup = cls(
                engine=str(ckpt.state["engine"]),
                policy=restored_policy,
                checkpoint_dir=checkpoint_dir,
                cache_dir=cache_dir,
                clock=clock,
                sleep=sleep,
                seed=seed,
                engine_opts=dict(ckpt.state.get("engine_opts", {})),
                _restored=ckpt,
            )
        return sup

    def _adopt(self, ckpt: Checkpoint) -> None:
        state = ckpt.state
        self.baseline = ckpt.baseline
        self._committed = ckpt.degraded
        self._committed_cables = {tuple(int(c) for c in k) for k in state["dead_cables"]}
        self._committed_switches = {int(s) for s in state["dead_switches"]}
        self._lkg = ckpt.result
        self._uncommitted = [FaultEvent.from_dict(e) for e in state.get("uncommitted", [])]
        self._stale = bool(state.get("stale", False))
        self.version = int(state.get("lkg_version", 1))
        self._ckpt_seq = ckpt.version + 1
        self._successes_since_checkpoint = 0
        self.events_submitted = int(state.get("events_submitted", 0))
        self.batches = int(state.get("batches", 0))
        self.consecutive_failures = int(state.get("consecutive_failures", 0))
        self.breaker = CircuitBreaker.from_dict(state["breaker"], clock=self.clock)
        self.extra = dict(state.get("extra", {}))
        # Pre-telemetry checkpoints lack the id namespace; fresh one then.
        self.service_id = str(state.get("service_id") or self.service_id)
        self.request_seq = int(state.get("request_seq", 0))
        self._set_state(state.get("state", HEALTHY))
        record_event(
            "restore", engine=self.engine.name, version=self.version,
            state=self._state, pending=len(self._uncommitted),
            certified=self._lkg.certificate is not None,
        )
        # A restored routing is re-verified before it is ever served —
        # via its checkpointed certificate (O(V+E)) when one is present,
        # via the full CDG rebuild otherwise. The scope id lives outside
        # the numbered namespace: restores must not shift request_seq,
        # which is checkpointed so pre-crash ids are never reused.
        with request_scope(
            f"svc-{self.service_id}-restore-{ckpt.version:06d}",
            name="service.restore_verify", engine=self.engine.name,
        ):
            self._verify(self._lkg)

    def _count_restore(self) -> None:
        get_registry().counter(
            "service_restores", "supervisor restores from checkpoint",
            engine=self.engine.name,
        ).inc()

    # ------------------------------------------------------------------
    # serving / queue
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def _next_request_id(self) -> str:
        self.request_seq += 1
        return f"svc-{self.service_id}-{self.request_seq:06d}"

    def _set_state(self, state: str) -> None:
        if state not in STATES:
            raise ServiceError(f"unknown supervisor state {state!r}")
        prev = getattr(self, "_state", None)
        if prev != state:
            record_event("state_transition", engine=self.engine.name,
                         from_state=prev, to_state=state)
        self._state = state
        get_registry().gauge(
            "service_state",
            "supervisor state (0=healthy 1=repairing 2=degraded 3=failed)",
            engine=self.engine.name,
        ).set(_STATE_CODES[state])

    def serving(self) -> ServedRouting:
        """The routing a query gets *right now* — never unroutable/cyclic."""
        reg = get_registry()
        reg.counter(
            "service_serves_total", "routing queries answered",
            engine=self.engine.name,
        ).inc()
        if self._stale:
            reg.counter(
                "service_stale_serves_total", "routing queries answered with stale tables",
                engine=self.engine.name,
            ).inc()
        return ServedRouting(
            result=self._lkg,
            stale=self._stale,
            version=self.version,
            state=self._state,
            pending_events=len(self._queue) + len(self._uncommitted),
        )

    @property
    def has_pending(self) -> bool:
        return bool(self._queue or self._uncommitted)

    def submit(self, event: FaultEvent) -> None:
        """Queue one fault event (serving is marked stale until repaired)."""
        self._queue.append(event)
        self.events_submitted += 1
        self._stale = True
        record_event("fault_submitted", engine=self.engine.name, fault=event.kind,
                     cable=list(event.cable) if event.cable is not None else None,
                     switch=event.switch, queued=len(self._queue))
        get_registry().counter(
            "service_events_submitted", "fault events queued at the supervisor",
            engine=self.engine.name,
        ).inc()

    # ------------------------------------------------------------------
    # repair batches
    # ------------------------------------------------------------------
    def process(self) -> BatchOutcome | None:
        """Coalesce the backlog into one repair batch and run the ladder.

        Returns ``None`` when there is nothing to do. Never raises for
        repair failures — the outcome records them and serving degrades to
        the stale last-known-good tables.
        """
        batch = self._uncommitted + list(self._queue)
        if not batch:
            return None
        self._queue.clear()
        self._uncommitted = []
        self.batches += 1
        outcome = BatchOutcome(
            batch=self.batches,
            request_id=self._next_request_id(),
            events=[e.to_dict() for e in batch],
            coalesced=len(batch),
            version=self.version,
        )
        reg = get_registry()
        m_batches = reg.counter(
            "service_batches", "repair batches processed", engine=self.engine.name
        )
        h_seconds = reg.histogram(
            "service_batch_seconds", "wall time per repair batch", buckets=DURATION_BUCKETS
        )

        if not self.breaker.allow():
            self._uncommitted = batch
            outcome.action = "rejected"
            outcome.state = self._state
            outcome.stale = self._stale
            outcome.errors.append(
                f"circuit breaker open ({self.breaker.failures} consecutive failures); "
                f"serving stale last-known-good"
            )
            record_event("batch_rejected", engine=self.engine.name,
                         request_id=outcome.request_id,
                         breaker_failures=self.breaker.failures)
            m_batches.inc()
            return outcome

        t0 = time.perf_counter()
        with request_scope(
            outcome.request_id, name="service.batch",
            engine=self.engine.name, coalesced=len(batch),
        ) as sp:
            prev_state = self._state
            self._set_state(REPAIRING)
            try:
                target, cables, switches, has_link_up = self._apply_events(batch)
            except ReproError as err:
                self._record_failure(batch, outcome, prev_state,
                                     [f"batch not routable: {err}"])
                outcome.seconds = time.perf_counter() - t0
                sp.set_attr("action", outcome.action)
                m_batches.inc()
                h_seconds.observe(outcome.seconds)
                return outcome
            outcome.switches = target.fabric.num_switches
            outcome.cables = target.fabric.num_channels // 2
            rel = relative_degradation(self._committed, target)

            action, result, errors = self._run_ladder(target, rel, has_link_up, outcome)
            if result is not None:
                self._accept(result, target, cables, switches, action)
                outcome.ok = True
                outcome.action = action
                outcome.state = self._state
                outcome.version = self.version
                outcome.stale = self._stale
            else:
                self._record_failure(batch, outcome, prev_state, errors)
            outcome.seconds = time.perf_counter() - t0
            sp.set_attr("action", outcome.action)
            sp.set_attr("attempts", outcome.attempts)
        m_batches.inc()
        h_seconds.observe(outcome.seconds)
        return outcome

    def _apply_events(self, batch):
        """Fold a batch into tentative dead sets and rebuild the target fabric."""
        cables = set(self._committed_cables)
        switches = set(self._committed_switches)
        has_link_up = False
        for event in batch:
            if event.kind == LINK_UP:
                cables.discard(event.cable)
                has_link_up = True
            elif event.cable is not None:
                cables.add(event.cable)
            else:
                switches.add(int(event.switch))
        target = degrade(self.baseline, switches, cables)
        check_routable(target.fabric)
        return target, cables, switches, has_link_up

    def _run_ladder(self, target: DegradedFabric, rel: DegradedFabric,
                    has_link_up: bool, outcome: BatchOutcome):
        """incremental → full → fallback, each rung retried with backoff."""
        policy = self.policy
        rungs = []
        if (
            self.engine.supports_incremental_reroute
            and not has_link_up
            and self._lkg.tables.engine == self.engine.name
        ):
            rungs.append(
                ("repair", policy.repair_deadline_s, policy.backoff.max_attempts,
                 lambda: self.engine.reroute(self._lkg, rel))
            )
        rungs.append(
            ("full", policy.full_deadline_s, policy.backoff.max_attempts,
             lambda: self._full_route(target.fabric))
        )
        if policy.fallback_engine and policy.fallback_engine != self.engine.name:
            fallback = make_engine(policy.fallback_engine)
            rungs.append(
                ("fallback", policy.full_deadline_s, 1,
                 lambda: fallback.route(target.fabric))
            )

        reg = get_registry()
        errors: list[str] = []
        for rung, deadline, max_attempts, attempt_fn in rungs:
            for attempt in range(max_attempts):
                if attempt:
                    delay = policy.backoff.delay(attempt - 1, self.rng)
                    reg.counter(
                        "service_backoff_sleeps", "backoff waits between retry attempts",
                        engine=self.engine.name,
                    ).inc()
                    self.sleep(delay)
                outcome.attempts += 1
                reg.counter(
                    "service_attempts", "repair-ladder attempts", rung=rung,
                    engine=self.engine.name,
                ).inc()
                try:
                    with span("service.attempt", rung=rung, attempt=attempt):
                        with compute_budget(deadline, label=rung):
                            result = attempt_fn()
                        self._verify(result)
                    record_event("rung_ok", engine=self.engine.name, rung=rung,
                                 attempt=attempt)
                    return rung, result, errors
                except ComputeTimeoutError as err:
                    outcome.timeouts += 1
                    reg.counter(
                        "service_timeouts", "compute budgets exhausted", rung=rung,
                        engine=self.engine.name,
                    ).inc()
                    record_event("rung_failed", engine=self.engine.name, rung=rung,
                                 attempt=attempt, cause="timeout",
                                 limit_s=err.limit_s, elapsed_s=err.elapsed_s)
                    errors.append(f"{rung}[{attempt}]: {err}")
                except ReproError as err:
                    record_event("rung_failed", engine=self.engine.name, rung=rung,
                                 attempt=attempt, cause="error",
                                 error=f"{type(err).__name__}: {err}")
                    errors.append(f"{rung}[{attempt}]: {type(err).__name__}: {err}")
        return None, None, errors

    def _full_route(self, fabric: Fabric) -> RoutingResult:
        """Full primary-engine route with optional cache warm-start.

        The ``cache.warm_start`` span wraps the probe; the ``hit``
        attribute records the outcome. A hit skips the engine entirely
        (the caller still verifies the result); a miss routes and stores
        the fresh result for the next encounter of this fabric.
        """
        if self._cache is None:
            return self.engine.route(fabric)
        with span("cache.warm_start", engine=self.engine.name) as sp:
            cached = self._cache.load(fabric, self.engine.name, self.engine_opts)
            sp.set_attr("hit", cached is not None)
        if cached is not None:
            return cached
        result = self.engine.route(fabric)
        self._cache.store(fabric, self.engine.name, self.engine_opts, result)
        return result

    def _verify(self, result: RoutingResult) -> None:
        """Refuse to serve unroutable or cyclic tables (independent check).

        Results that carry a deadlock-freedom certificate (cache hits,
        restored checkpoints) are verified by the O(V+E) certificate
        check — structure *and* binding to the live routing — instead of
        the full CDG rebuild; everything else pays the rebuild. Either
        way a ``service.verify`` span and a ``verify`` flight-recorder
        event record which method ran; a rejection dumps the certificate's
        minimal counterexample to the flight recorder before raising.
        """
        paths = extract_paths(result.tables)
        if result.layered is None:
            return
        if result.certificate is not None:
            from repro.deadlock.certificate import check_against_routing, report_from_check

            with span("service.verify", method="certificate") as sp:
                check = check_against_routing(result.certificate, result.layered, paths)
                sp.set_attr("ok", check.ok)
            record_event("verify", engine=self.engine.name, method="certificate",
                         ok=check.ok)
            if check.ok:
                return
            record_event(
                "certificate_rejected", engine=self.engine.name,
                reason=check.reason, layer=check.layer,
                witness_edge=list(check.witness_edge) if check.witness_edge else None,
                counterexample=check.counterexample,
            )
            report = report_from_check(result.certificate, check)
        else:
            with span("service.verify", method="rebuild") as sp:
                report = verify_deadlock_free(result.layered, paths)
                sp.set_attr("ok", report.deadlock_free)
            record_event("verify", engine=self.engine.name, method="rebuild",
                         ok=report.deadlock_free)
            if report.deadlock_free:
                return
        raise RoutingError(f"candidate routing rejected: {report.failure_summary()}")

    def _accept(self, result: RoutingResult, target: DegradedFabric,
                cables: set, switches: set, action: str) -> None:
        self._lkg = result
        self._committed = target
        self._committed_cables = cables
        self._committed_switches = switches
        self._stale = False
        self.version += 1
        self.consecutive_failures = 0
        self.breaker.record_success()
        record_event("routing_accepted", engine=self.engine.name, action=action,
                     version=self.version)
        # A fallback-engine routing is fresh but not the primary engine's
        # quality: the service is functioning, degraded.
        self._set_state(HEALTHY if action in ("repair", "full") else DEGRADED)
        get_registry().gauge(
            "service_lkg_version", "version of the routing currently served",
            engine=self.engine.name,
        ).set(self.version)
        self._successes_since_checkpoint += 1
        if (
            self._store is not None
            and self._successes_since_checkpoint >= self.policy.checkpoint_every
        ):
            self.checkpoint()

    def _record_failure(self, batch, outcome: BatchOutcome, prev_state: str,
                        errors: list[str]) -> None:
        self._uncommitted = batch
        self._stale = True
        self.consecutive_failures += 1
        self.breaker.record_failure()
        self._set_state(FAILED if self.breaker.open else DEGRADED)
        record_event("batch_failed", engine=self.engine.name,
                     request_id=outcome.request_id,
                     consecutive_failures=self.consecutive_failures,
                     errors=len(errors))
        outcome.action = "failed"
        outcome.errors.extend(errors)
        outcome.state = self._state
        outcome.stale = True
        reg = get_registry()
        reg.counter(
            "service_batch_failures", "repair batches that exhausted the ladder",
            engine=self.engine.name,
        ).inc()
        reg.gauge(
            "service_consecutive_failures", "current consecutive batch failures",
            engine=self.engine.name,
        ).set(self.consecutive_failures)
        if self._store is not None:
            # Persist the failure too: a crash while degraded must restore
            # with the pending events and breaker state intact.
            self.checkpoint()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable supervisor state (excluding bulk arrays)."""
        return {
            "engine": self.engine.name,
            "engine_opts": self.engine_opts,
            "service_id": self.service_id,
            "request_seq": self.request_seq,
            "state": self._state,
            "stale": self._stale,
            "lkg_version": self.version,
            "dead_cables": [list(k) for k in sorted(self._committed_cables)],
            "dead_switches": sorted(self._committed_switches),
            "uncommitted": [e.to_dict() for e in self._uncommitted + list(self._queue)],
            "consecutive_failures": self.consecutive_failures,
            "events_submitted": self.events_submitted,
            "batches": self.batches,
            "breaker": self.breaker.to_dict(),
            "policy": self.policy.to_dict(),
            "extra": self.extra,
        }

    def checkpoint(self) -> "str | None":
        """Write an atomic checkpoint now; returns its path."""
        if self._store is None:
            raise ServiceError("supervisor has no checkpoint directory configured")
        if self._lkg.layered is not None and self._lkg.certificate is None:
            # Certify at checkpoint time so every restore can verify in
            # O(V+E) — cache hits already arrive certified, this covers
            # fresh routes and incremental repairs.
            from repro.deadlock.certificate import emit_certificate

            self._lkg.certificate = emit_certificate(
                self._lkg.layered, extract_paths(self._lkg.tables),
                engine=self._lkg.tables.engine,
            )
        with span("service.checkpoint", version=self._ckpt_seq):
            path = self._store.save(
                version=self._ckpt_seq,
                baseline=self.baseline,
                result=self._lkg,
                state=self.state_dict(),
            )
        record_event("checkpoint", engine=self.engine.name, version=self._ckpt_seq,
                     path=str(path))
        # The ring rides along with every checkpoint: after a crash the
        # newest flightrecorder.json explains what led up to it.
        get_recorder().dump(self._store.root / "flightrecorder.json")
        self._ckpt_seq += 1
        self._successes_since_checkpoint = 0
        get_registry().counter(
            "service_checkpoints_written", "checkpoints persisted",
            engine=self.engine.name,
        ).inc()
        return str(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutingSupervisor(engine={self.engine.name!r}, state={self._state!r}, "
            f"version={self.version}, pending={len(self._queue) + len(self._uncommitted)})"
        )
