"""Simulation substrate: traffic patterns, the ORCS-equivalent congestion
simulator, the flit-level deadlock demonstrator and utilization metrics."""

from repro.simulator.patterns import (
    Pattern,
    alltoall_rounds,
    bisection_pattern,
    hotspot_pattern,
    permutation_pattern,
    shift_pattern,
    stencil_pattern,
    validate_pattern,
)
from repro.simulator.congestion import CongestionSimulator, EbbResult, PatternResult
from repro.simulator.flitsim import FlitSimOutcome, FlitSimulator, Packet
from repro.simulator.throughput import (
    OpenLoopResult,
    run_open_loop,
    saturation_point,
    saturation_sweep,
)
from repro.simulator.orcs import OrcsResult, run_orcs
from repro.simulator.metrics import UtilizationStats, gini_coefficient, utilization_stats

__all__ = [
    "OrcsResult",
    "run_orcs",
    "OpenLoopResult",
    "run_open_loop",
    "saturation_point",
    "saturation_sweep",
    "Pattern",
    "alltoall_rounds",
    "bisection_pattern",
    "hotspot_pattern",
    "permutation_pattern",
    "shift_pattern",
    "stencil_pattern",
    "validate_pattern",
    "CongestionSimulator",
    "EbbResult",
    "PatternResult",
    "FlitSimOutcome",
    "FlitSimulator",
    "Packet",
    "UtilizationStats",
    "gini_coefficient",
    "utilization_stats",
]
