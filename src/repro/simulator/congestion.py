"""ORCS-equivalent congestion simulator (§V).

The Oblivious Routing Congestion Simulator estimates the *effective
bisection bandwidth* of a (topology, routing) pair: draw random bisection
perfect matchings, route every flow, count how many flows share each
channel, and credit each flow the bandwidth of its most congested channel
(``capacity / flows``). The eBB is the mean flow bandwidth over many
patterns — the statistic Netgauge measures on real hardware (Fig. 12).

The evaluation loop is fully vectorised: flows' channel sequences are
concatenated once, per-channel sharing comes from one ``bincount``, and
per-flow maxima from one ``maximum.reduceat``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import get_registry, span
from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.patterns import Pattern, bisection_pattern, validate_pattern
from repro.utils.prng import spawn_rngs


@dataclass(frozen=True)
class PatternResult:
    """Congestion outcome of one pattern."""

    flow_bandwidth: np.ndarray  # relative bandwidth per flow, in (0, 1]
    channel_load: np.ndarray  # number of flows per channel
    max_congestion: float  # worst channel sharing (capacity-adjusted)

    @property
    def mean_bandwidth(self) -> float:
        return float(self.flow_bandwidth.mean()) if len(self.flow_bandwidth) else 0.0

    @property
    def min_bandwidth(self) -> float:
        return float(self.flow_bandwidth.min()) if len(self.flow_bandwidth) else 0.0


@dataclass(frozen=True)
class EbbResult:
    """Effective bisection bandwidth over many random patterns."""

    per_pattern_mean: np.ndarray
    num_flows: int
    num_patterns: int

    @property
    def ebb(self) -> float:
        """Mean relative effective bisection bandwidth in (0, 1]."""
        return float(self.per_pattern_mean.mean())

    @property
    def std(self) -> float:
        return float(self.per_pattern_mean.std())

    @property
    def minimum(self) -> float:
        return float(self.per_pattern_mean.min())

    @property
    def maximum(self) -> float:
        return float(self.per_pattern_mean.max())

    def scaled(self, link_bandwidth: float) -> float:
        """eBB in physical units (e.g. 946 MiB/s PCIe limit on Deimos)."""
        return self.ebb * link_bandwidth


class CongestionSimulator:
    """Evaluate patterns against one routing's forwarding tables."""

    def __init__(self, tables: RoutingTables, paths: PathSet | None = None):
        self.tables = tables
        self.fabric = tables.fabric
        self.paths = paths if paths is not None else extract_paths(tables)
        self._inv_capacity = 1.0 / self.fabric.channels.capacity
        reg = get_registry()
        self._m_patterns = reg.counter(
            "sim_patterns_evaluated", "traffic patterns congestion-counted"
        )
        self._m_flows = reg.counter("sim_flows_routed", "flows routed across all patterns")

    # ------------------------------------------------------------------
    def _flow_arrays(self, pattern: Pattern) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate flow channel sequences: (flat channels, offsets)."""
        fab = self.fabric
        S = fab.num_switches
        chunks: list[np.ndarray] = []
        lengths = np.empty(len(pattern), dtype=np.int64)
        nc = self.tables.next_channel
        chan_dst = fab.channels.dst
        for i, (src, dst) in enumerate(pattern):
            t_idx = int(fab.term_index[dst])
            inject = int(nc[src, t_idx])
            if inject < 0:
                raise SimulationError(f"no route from {src} to {dst}")
            first_switch = int(chan_dst[inject])
            rest = self.paths.path(t_idx * S + int(fab.switch_index[first_switch]))
            flow = np.empty(len(rest) + 1, dtype=np.int64)
            flow[0] = inject
            flow[1:] = rest
            chunks.append(flow)
            lengths[i] = len(flow)
        offsets = np.zeros(len(pattern) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        return flat, offsets

    def evaluate(self, pattern: Pattern) -> PatternResult:
        """Congestion-count one pattern (every flow active simultaneously)."""
        validate_pattern(self.fabric, pattern)
        if not pattern:
            raise SimulationError("empty pattern")
        with span("sim.evaluate", engine=self.tables.engine, flows=len(pattern)):
            flat, offsets = self._flow_arrays(pattern)
            load = np.bincount(flat, minlength=self.fabric.num_channels)
            sharing = load * self._inv_capacity  # capacity-adjusted congestion
            per_flow_max = np.maximum.reduceat(sharing[flat], offsets[:-1])
            flow_bw = 1.0 / per_flow_max
        self._m_patterns.inc()
        self._m_flows.inc(len(pattern))
        return PatternResult(
            flow_bandwidth=flow_bw,
            channel_load=load,
            max_congestion=float(sharing.max()),
        )

    # ------------------------------------------------------------------
    def effective_bisection_bandwidth(
        self,
        num_patterns: int = 100,
        seed=None,
        terminals=None,
        bidirectional: bool = False,
    ) -> EbbResult:
        """The §V/§VI estimator: mean flow bandwidth over random
        bisection matchings."""
        if num_patterns < 1:
            raise SimulationError("need at least one pattern")
        rngs = spawn_rngs(seed, num_patterns)
        means = np.empty(num_patterns)
        flows = 0
        with span("sim.ebb", engine=self.tables.engine, patterns=num_patterns):
            for i, rng in enumerate(rngs):
                pattern = bisection_pattern(
                    self.fabric, seed=rng, terminals=terminals, bidirectional=bidirectional
                )
                result = self.evaluate(pattern)
                means[i] = result.mean_bandwidth
                flows = len(pattern)
        return EbbResult(per_pattern_mean=means, num_flows=flows, num_patterns=num_patterns)

    def phase_times(self, phases: list[Pattern], bytes_per_flow: float, link_bandwidth: float = 1.0) -> list[float]:
        """Completion time of each phase, run back to back.

        A phase finishes when its slowest flow finishes; a flow's rate is
        its most-congested channel's fair share. Used by the collective
        and NAS application models.
        """
        times = []
        for phase in phases:
            result = self.evaluate(phase)
            slowest = result.min_bandwidth * link_bandwidth
            times.append(bytes_per_flow / slowest)
        return times
