"""Cycle-based packet-level network simulator with virtual channels.

This is the substrate that makes the paper's deadlock argument (§III,
Figure 2) *observable*: switches have finite per-virtual-channel buffers
and store-and-forward packets hop by hop. With SSSP routing and the
5-node ring's 2-hop-shift pattern, the clockwise buffer dependencies fill
up into a circular wait — the simulator detects the cycle in the packet
wait-for graph and reports a deadlock. The same experiment under DFSSSP
(2 virtual layers) always drains.

Model
-----
* Each directed channel has ``num_vcs`` FIFO buffers of ``buffer_depth``
  packets. A packet occupies exactly one buffer slot (store-and-forward).
* A packet's virtual channel is fixed at the source from its path's
  virtual layer (InfiniBand SL→VL semantics).
* A packet is ``packet_length`` flits long: after accepting a packet, a
  channel is busy serialising it for ``packet_length`` cycles before it
  can accept the next (``packet_length=1`` is the classic one-packet-
  per-cycle link). Terminals consume any number (sinks are not the
  bottleneck). Queue service order rotates round-robin across cycles so
  no flow starves.
* Deadlock detection: whenever a cycle passes with zero packet movement
  while packets are in flight, the head-packet wait-for graph restricted
  to *full* target buffers is searched for a cycle. A circular wait
  among full buffers can never resolve (no consumer inside the cycle),
  so a found cycle is a proof; channel-busy stalls are transient and the
  simulation continues.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import get_registry, span
from repro.routing.base import LayeredRouting, RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.patterns import Pattern, validate_pattern


def record_flit_metrics(
    packets_injected: int,
    packets_delivered: int,
    stalls: int,
    deadlocked: bool,
    packet_length: int,
) -> None:
    """Accumulate one flit-level simulation run into the registry.

    Shared by the closed-loop :class:`FlitSimulator` and the open-loop
    sweep in :mod:`repro.simulator.throughput` so both report under the
    same metric names.
    """
    reg = get_registry()
    reg.counter("flit_packets_injected", "packets entering the network").inc(packets_injected)
    reg.counter("flit_packets_delivered", "packets reaching their terminal").inc(
        packets_delivered
    )
    reg.counter("flit_flits_injected", "flits entering the network").inc(
        packets_injected * packet_length
    )
    reg.counter("flit_flits_delivered", "flits reaching their terminal").inc(
        packets_delivered * packet_length
    )
    reg.counter(
        "flit_stalls", "head-of-line blocked hop attempts (busy channel or full buffer)"
    ).inc(stalls)
    if deadlocked:
        reg.counter("flit_deadlocks_detected", "runs ending in a proven deadlock").inc()


@dataclass
class Packet:
    pid: int
    src: int
    dst: int
    vc: int
    channels: np.ndarray  # full route, channel ids
    pos: int = -1  # index of the channel whose buffer holds the packet
    born: int = 0  # injection-queue entry cycle (for latency accounting)

    @property
    def next_channel(self) -> int | None:
        if self.pos + 1 < len(self.channels):
            return int(self.channels[self.pos + 1])
        return None


@dataclass
class FlitSimOutcome:
    """Result of a :meth:`FlitSimulator.run`."""

    status: str  # "delivered" | "deadlock" | "cycle_limit"
    cycles: int
    delivered: int
    in_flight: int
    pending: int
    waitfor_cycle: list[tuple[int, int]] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return self.status == "deadlock"


class FlitSimulator:
    """Finite-buffer store-and-forward simulator."""

    def __init__(
        self,
        tables: RoutingTables,
        layered: LayeredRouting | None = None,
        buffer_depth: int = 2,
        paths: PathSet | None = None,
        packet_length: int = 1,
    ):
        if buffer_depth < 1:
            raise SimulationError("buffer_depth must be >= 1")
        if packet_length < 1:
            raise SimulationError("packet_length must be >= 1")
        self.tables = tables
        self.fabric = tables.fabric
        self.layered = layered
        self.num_vcs = layered.num_layers if layered is not None else 1
        self.buffer_depth = buffer_depth
        self.packet_length = packet_length
        self.paths = paths if paths is not None else extract_paths(tables)

    # ------------------------------------------------------------------
    def _build_packets(self, pattern: Pattern, packets_per_flow: int) -> list[deque]:
        fab = self.fabric
        S = fab.num_switches
        nc = self.tables.next_channel
        chan_dst = fab.channels.dst
        sources: dict[int, deque] = {}
        pid = 0
        for src, dst in pattern:
            t_idx = int(fab.term_index[dst])
            inject = int(nc[src, t_idx])
            if inject < 0:
                raise SimulationError(f"no route from {src} to {dst}")
            first_switch = int(chan_dst[inject])
            rest = self.paths.path(t_idx * S + int(fab.switch_index[first_switch]))
            route = np.empty(len(rest) + 1, dtype=np.int32)
            route[0] = inject
            route[1:] = rest
            vc = self.layered.layer_for(src, dst) if self.layered is not None else 0
            q = sources.setdefault(src, deque())
            for _ in range(packets_per_flow):
                q.append(Packet(pid=pid, src=src, dst=dst, vc=vc, channels=route))
                pid += 1
        return list(sources.values())

    # ------------------------------------------------------------------
    def run(
        self,
        pattern: Pattern,
        packets_per_flow: int = 4,
        max_cycles: int = 100_000,
    ) -> FlitSimOutcome:
        """Inject ``packets_per_flow`` packets per flow and simulate until
        everything is delivered, a deadlock is proven, or ``max_cycles``."""
        validate_pattern(self.fabric, pattern)
        if packets_per_flow < 1:
            raise SimulationError("packets_per_flow must be >= 1")
        source_queues = self._build_packets(pattern, packets_per_flow)
        total = sum(len(q) for q in source_queues)
        with span(
            "flitsim.run", engine=self.tables.engine, flows=len(pattern), packets=total
        ) as sp:
            outcome = self._simulate(source_queues, total, max_cycles)
            sp.set_attr("status", outcome.status)
            sp.set_attr("cycles", outcome.cycles)
        return outcome

    def _simulate(
        self, source_queues: list[deque], total: int, max_cycles: int
    ) -> FlitSimOutcome:
        chan_dst = self.fabric.channels.dst

        # buffers[(channel, vc)] -> deque of packets, created on demand.
        buffers: dict[tuple[int, int], deque] = {}
        delivered = 0
        in_flight = 0
        injected = 0
        stalls = 0

        def space(key: tuple[int, int]) -> int:
            q = buffers.get(key)
            return self.buffer_depth - (len(q) if q else 0)

        def finish(outcome: FlitSimOutcome) -> FlitSimOutcome:
            record_flit_metrics(injected, delivered, stalls, outcome.deadlocked, L)
            return outcome

        busy_until: dict[int, int] = {}  # channel -> first free cycle
        L = self.packet_length
        cycle = 0
        while cycle < max_cycles:
            cycle += 1
            moved = 0

            def channel_free(c: int) -> bool:
                return busy_until.get(c, 0) <= cycle

            # 1. Deliveries: heads whose current channel ends at their dst.
            for key in list(buffers):
                q = buffers[key]
                while q and int(chan_dst[q[0].channels[q[0].pos]]) == q[0].dst:
                    q.popleft()
                    delivered += 1
                    in_flight -= 1
                    moved += 1
                if not q:
                    del buffers[key]

            # 2. Advancement, round-robin rotated service order.
            keys = list(buffers)
            if keys:
                rot = cycle % len(keys)
                keys = keys[rot:] + keys[:rot]
            for key in keys:
                q = buffers.get(key)
                if not q:
                    continue
                p = q[0]
                nxt = p.next_channel
                assert nxt is not None, "non-final packet without next hop"
                if not channel_free(nxt):
                    stalls += 1
                    continue
                tgt = (nxt, p.vc)
                if space(tgt) <= 0:
                    stalls += 1
                    continue
                q.popleft()
                if not q:
                    del buffers[key]
                p.pos += 1
                buffers.setdefault(tgt, deque()).append(p)
                busy_until[nxt] = cycle + L
                moved += 1

            # 3. Injection.
            for q in source_queues:
                if not q:
                    continue
                p = q[0]
                c0 = int(p.channels[0])
                if not channel_free(c0):
                    stalls += 1
                    continue
                tgt = (c0, p.vc)
                if space(tgt) <= 0:
                    stalls += 1
                    continue
                q.popleft()
                p.pos = 0
                buffers.setdefault(tgt, deque()).append(p)
                busy_until[c0] = cycle + L
                in_flight += 1
                injected += 1
                moved += 1

            pending = sum(len(q) for q in source_queues)
            if delivered == total:
                return finish(FlitSimOutcome("delivered", cycle, delivered, 0, 0))
            if moved == 0 and in_flight > 0:
                # Zero movement can be a transient serialisation stall
                # (L > 1); only a circular wait among FULL buffers proves
                # a deadlock.
                witness = self._waitfor_cycle(buffers, self.buffer_depth)
                if witness:
                    return finish(
                        FlitSimOutcome(
                            "deadlock", cycle, delivered, in_flight, pending, witness
                        )
                    )
        return finish(
            FlitSimOutcome(
                "cycle_limit",
                cycle,
                delivered,
                in_flight,
                sum(len(q) for q in source_queues),
            )
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _waitfor_cycle(
        buffers: dict[tuple[int, int], deque], buffer_depth: int
    ) -> list[tuple[int, int]]:
        """Cycle in the head-packet wait-for graph (the deadlock witness).

        Each occupied buffer's head waits for its next buffer; only waits
        on *full* buffers count — a circular wait among full buffers can
        never make progress (condition 4 of §III), while a wait on a
        merely busy channel resolves once serialisation finishes.
        """
        waits: dict[tuple[int, int], tuple[int, int]] = {}
        for key, q in buffers.items():
            if not q:
                continue
            nxt = q[0].next_channel
            if nxt is None:
                continue
            tgt = (nxt, q[0].vc)
            if len(buffers.get(tgt, ())) >= buffer_depth:
                waits[key] = tgt
        # Functional-graph cycle walk.
        seen_global: set[tuple[int, int]] = set()
        for start in waits:
            if start in seen_global:
                continue
            trail: list[tuple[int, int]] = []
            index: dict[tuple[int, int], int] = {}
            node = start
            while node in waits and node not in seen_global:
                if node in index:
                    return trail[index[node] :]
                index[node] = len(trail)
                trail.append(node)
                node = waits[node]
            seen_global.update(trail)
        return []
