"""Cycle-based packet-level network simulator with virtual channels.

This is the substrate that makes the paper's deadlock argument (§III,
Figure 2) *observable*: switches have finite per-virtual-channel buffers
and store-and-forward packets hop by hop. With SSSP routing and the
5-node ring's 2-hop-shift pattern, the clockwise buffer dependencies fill
up into a circular wait — the simulator detects the cycle in the packet
wait-for graph and reports a deadlock. The same experiment under DFSSSP
(2 virtual layers) always drains.

Model
-----
* Each directed channel has ``num_vcs`` FIFO buffers of ``buffer_depth``
  packets. A packet occupies exactly one buffer slot (store-and-forward).
* A packet's virtual channel is fixed at the source from its path's
  virtual layer (InfiniBand SL→VL semantics).
* A packet is ``packet_length`` flits long: after accepting a packet, a
  channel is busy serialising it for ``packet_length`` cycles before it
  can accept the next (``packet_length=1`` is the classic one-packet-
  per-cycle link). Terminals consume any number (sinks are not the
  bottleneck). Queue service order rotates round-robin across cycles so
  no flow starves.
* Deadlock detection: whenever a cycle passes with zero packet movement
  while packets are in flight, the head-packet wait-for graph restricted
  to *full* target buffers is searched for a cycle. A circular wait
  among full buffers can never resolve (no consumer inside the cycle),
  so a found cycle is a proof; channel-busy stalls are transient and the
  simulation continues.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import get_registry, span
from repro.routing.base import LayeredRouting, RoutingTables
from repro.routing.paths import PathSet, extract_paths
from repro.simulator.patterns import Pattern, validate_pattern
from repro.simulator.stepping import SteppingCore, build_route, waitfor_cycle


def record_flit_metrics(
    packets_injected: int,
    packets_delivered: int,
    stalls: int,
    deadlocked: bool,
    packet_length: int,
) -> None:
    """Accumulate one flit-level simulation run into the registry.

    Shared by the closed-loop :class:`FlitSimulator` and the open-loop
    sweep in :mod:`repro.simulator.throughput` so both report under the
    same metric names.
    """
    reg = get_registry()
    reg.counter("flit_packets_injected", "packets entering the network").inc(packets_injected)
    reg.counter("flit_packets_delivered", "packets reaching their terminal").inc(
        packets_delivered
    )
    reg.counter("flit_flits_injected", "flits entering the network").inc(
        packets_injected * packet_length
    )
    reg.counter("flit_flits_delivered", "flits reaching their terminal").inc(
        packets_delivered * packet_length
    )
    reg.counter(
        "flit_stalls", "head-of-line blocked hop attempts (busy channel or full buffer)"
    ).inc(stalls)
    if deadlocked:
        reg.counter("flit_deadlocks_detected", "runs ending in a proven deadlock").inc()


@dataclass
class Packet:
    pid: int
    src: int
    dst: int
    vc: int
    channels: np.ndarray  # full route, channel ids
    pos: int = -1  # index of the channel whose buffer holds the packet
    born: int = 0  # injection-queue entry cycle (for latency accounting)

    @property
    def next_channel(self) -> int | None:
        if self.pos + 1 < len(self.channels):
            return int(self.channels[self.pos + 1])
        return None


@dataclass
class FlitSimOutcome:
    """Result of a :meth:`FlitSimulator.run`."""

    status: str  # "delivered" | "deadlock" | "cycle_limit"
    cycles: int
    delivered: int
    in_flight: int
    pending: int
    waitfor_cycle: list[tuple[int, int]] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return self.status == "deadlock"


class FlitSimulator:
    """Finite-buffer store-and-forward simulator."""

    def __init__(
        self,
        tables: RoutingTables,
        layered: LayeredRouting | None = None,
        buffer_depth: int = 2,
        paths: PathSet | None = None,
        packet_length: int = 1,
    ):
        if buffer_depth < 1:
            raise SimulationError("buffer_depth must be >= 1")
        if packet_length < 1:
            raise SimulationError("packet_length must be >= 1")
        self.tables = tables
        self.fabric = tables.fabric
        self.layered = layered
        self.num_vcs = layered.num_layers if layered is not None else 1
        self.buffer_depth = buffer_depth
        self.packet_length = packet_length
        self.paths = paths if paths is not None else extract_paths(tables)

    # ------------------------------------------------------------------
    def _build_packets(self, pattern: Pattern, packets_per_flow: int) -> list[deque]:
        sources: dict[int, deque] = {}
        pid = 0
        for src, dst in pattern:
            route = build_route(self.tables, self.paths, src, dst)
            vc = self.layered.layer_for(src, dst) if self.layered is not None else 0
            q = sources.setdefault(src, deque())
            for _ in range(packets_per_flow):
                q.append(Packet(pid=pid, src=src, dst=dst, vc=vc, channels=route))
                pid += 1
        return list(sources.values())

    # ------------------------------------------------------------------
    def run(
        self,
        pattern: Pattern,
        packets_per_flow: int = 4,
        max_cycles: int = 100_000,
    ) -> FlitSimOutcome:
        """Inject ``packets_per_flow`` packets per flow and simulate until
        everything is delivered, a deadlock is proven, or ``max_cycles``."""
        validate_pattern(self.fabric, pattern)
        if packets_per_flow < 1:
            raise SimulationError("packets_per_flow must be >= 1")
        source_queues = self._build_packets(pattern, packets_per_flow)
        total = sum(len(q) for q in source_queues)
        with span(
            "flitsim.run", engine=self.tables.engine, flows=len(pattern), packets=total
        ) as sp:
            outcome = self._simulate(source_queues, total, max_cycles)
            sp.set_attr("status", outcome.status)
            sp.set_attr("cycles", outcome.cycles)
        return outcome

    def _simulate(
        self, source_queues: list[deque], total: int, max_cycles: int
    ) -> FlitSimOutcome:
        core = SteppingCore(
            self.fabric.channels.dst, self.buffer_depth, self.packet_length
        )
        delivered = 0
        injected = 0
        L = self.packet_length

        def finish(outcome: FlitSimOutcome) -> FlitSimOutcome:
            record_flit_metrics(injected, delivered, core.stalls, outcome.deadlocked, L)
            return outcome

        cycle = 0
        while cycle < max_cycles:
            cycle += 1

            # 1. Deliveries: heads whose current channel ends at their dst.
            moved = core.drain_deliveries(cycle)
            delivered += moved

            # 2. Advancement, round-robin rotated service order.
            moved += core.advance(cycle)

            # 3. Injection.
            for q in source_queues:
                if q and core.try_inject(q[0], cycle):
                    q.popleft()
                    injected += 1
                    moved += 1

            pending = sum(len(q) for q in source_queues)
            in_flight = core.in_flight()
            if delivered == total:
                return finish(FlitSimOutcome("delivered", cycle, delivered, 0, 0))
            if moved == 0 and in_flight > 0:
                # Zero movement can be a transient serialisation stall
                # (L > 1); only a circular wait among FULL buffers proves
                # a deadlock.
                witness = core.waitfor_cycle()
                if witness:
                    return finish(
                        FlitSimOutcome(
                            "deadlock", cycle, delivered, in_flight, pending, witness
                        )
                    )
        return finish(
            FlitSimOutcome(
                "cycle_limit",
                cycle,
                delivered,
                core.in_flight(),
                sum(len(q) for q in source_queues),
            )
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _waitfor_cycle(
        buffers: dict[tuple[int, int], deque], buffer_depth: int
    ) -> list[tuple[int, int]]:
        """Deadlock witness over explicit buffers — kept as an entry point
        for callers that maintain their own buffer maps; the shared
        implementation lives in :func:`repro.simulator.stepping.waitfor_cycle`."""
        return waitfor_cycle(buffers, buffer_depth)
