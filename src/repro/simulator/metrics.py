"""Link-utilization and bandwidth statistics over simulation results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.congestion import PatternResult


@dataclass(frozen=True)
class UtilizationStats:
    """How evenly a pattern's flows spread over the channels."""

    mean_load: float
    max_load: int
    nonzero_channels: int
    total_channels: int
    gini: float

    @property
    def balance_ratio(self) -> float:
        """mean/max load of used channels; 1.0 = perfectly even."""
        return self.mean_load / self.max_load if self.max_load else 0.0


def gini_coefficient(values: np.ndarray) -> float:
    """Gini inequality of non-negative values (0 = even, →1 = concentrated).

    Degenerate inputs degrade to 0.0 rather than NaN: empty vectors,
    all-zero loads, a single channel, and any non-finite entries (which
    are dropped before computing).
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    total = v.sum()
    if len(v) == 0 or total <= 0:
        return 0.0
    v = np.sort(v)
    n = len(v)
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def utilization_stats(result: PatternResult, switch_channels_only: np.ndarray | None = None) -> UtilizationStats:
    """Summarise a :class:`PatternResult`'s channel loads.

    Pass ``fabric.is_switch_channel`` as the mask to restrict to the
    inter-switch links (terminal links trivially carry one flow each).
    """
    load = np.asarray(result.channel_load)
    if switch_channels_only is not None:
        load = load[switch_channels_only]
    used = load[load > 0]
    # Empty / all-zero load vectors are legal (e.g. a masked-out fabric
    # region): every statistic degrades to 0, never NaN.
    return UtilizationStats(
        mean_load=float(used.mean()) if len(used) else 0.0,
        max_load=int(load.max(initial=0)),
        nonzero_channels=int(len(used)),
        total_channels=int(len(load)),
        gini=gini_coefficient(load),
    )
