"""ORCS compatibility layer.

The paper's §V numbers come from the Oblivious Routing Congestion
Simulator (Hoefler et al.), which is driven by *named patterns* and
*metric aggregations*. This module mirrors that interface on top of
:class:`~repro.simulator.congestion.CongestionSimulator`, so an ORCS user
can reproduce their runs against our fabric model:

* patterns: ``bisect`` (random bisection matching), ``bisect_fb``
  (ping-pong, both directions), ``shift_<k>``, ``rand_perm`` (random
  derangement), ``alltoall`` (P-1 shift rounds, summed), ``hotspot_<k>``;
* metrics: per-pattern aggregation of the flow-bandwidth vector —
  ``avg_bandwidth`` (ORCS's ``sum``-normalised default, = eBB),
  ``min_bandwidth`` (worst flow), ``max_congestion`` (hottest channel),
  ``hist`` (congestion histogram over channels).

The entry point :func:`run_orcs` evaluates ``num_runs`` pattern samples
and aggregates like ORCS's driver loop, returning a structured result
plus an ORCS-flavoured text report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.simulator.congestion import CongestionSimulator
from repro.simulator.patterns import (
    alltoall_rounds,
    bisection_pattern,
    hotspot_pattern,
    permutation_pattern,
    shift_pattern,
)
from repro.utils.prng import spawn_rngs

METRICS = ("avg_bandwidth", "min_bandwidth", "max_congestion", "hist")


def _parse_pattern(name: str):
    """Pattern name -> (kind, parameter)."""
    if name in ("bisect", "bisect_fb", "rand_perm", "alltoall"):
        return name, None
    if name.startswith("shift_"):
        return "shift", int(name.split("_", 1)[1])
    if name.startswith("hotspot_"):
        return "hotspot", int(name.split("_", 1)[1])
    raise SimulationError(
        f"unknown ORCS pattern {name!r}; available: bisect, bisect_fb, "
        f"rand_perm, alltoall, shift_<k>, hotspot_<k>"
    )


@dataclass
class OrcsResult:
    """Aggregated outcome of one ORCS-style run."""

    pattern: str
    metric: str
    num_runs: int
    samples: list[float] = field(default_factory=list)
    histogram: np.ndarray | None = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples)) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples)) if self.samples else 0.0

    def report(self) -> str:
        """ORCS-flavoured one-block text report."""
        lines = [
            f"pattern: {self.pattern}",
            f"metric:  {self.metric}",
            f"runs:    {self.num_runs}",
        ]
        if self.metric == "hist" and self.histogram is not None:
            for congestion, count in enumerate(self.histogram):
                if count:
                    lines.append(f"  congestion {congestion}: {int(count)} channels")
        else:
            lines.append(
                f"result:  mean={self.mean:.6f} min={self.minimum:.6f} "
                f"max={self.maximum:.6f}"
            )
        return "\n".join(lines) + "\n"


def run_orcs(
    tables: RoutingTables,
    pattern: str = "bisect",
    metric: str = "avg_bandwidth",
    num_runs: int = 100,
    seed=None,
) -> OrcsResult:
    """Evaluate a named ORCS pattern/metric combination.

    Deterministic patterns (``shift_<k>``, ``alltoall``) ignore
    ``num_runs``'s randomness but still repeat (cheaply) for interface
    parity.
    """
    if metric not in METRICS:
        raise SimulationError(f"unknown metric {metric!r}; available: {METRICS}")
    if num_runs < 1:
        raise SimulationError("num_runs must be >= 1")
    kind, param = _parse_pattern(pattern)
    sim = CongestionSimulator(tables)
    fabric = tables.fabric
    rngs = spawn_rngs(seed, num_runs)

    samples: list[float] = []
    hist_acc: np.ndarray | None = None
    for rng in rngs:
        if kind == "bisect":
            flows = bisection_pattern(fabric, seed=rng)
        elif kind == "bisect_fb":
            flows = bisection_pattern(fabric, seed=rng, bidirectional=True)
        elif kind == "rand_perm":
            flows = permutation_pattern(fabric, seed=rng)
        elif kind == "shift":
            flows = shift_pattern(fabric, param)
        elif kind == "hotspot":
            flows = hotspot_pattern(fabric, num_hot=param, seed=rng)
        elif kind == "alltoall":
            # Summed over rounds: report the per-round average.
            rounds = alltoall_rounds(fabric)
            vals = [sim.evaluate(r) for r in rounds]
            if metric == "avg_bandwidth":
                samples.append(float(np.mean([v.mean_bandwidth for v in vals])))
            elif metric == "min_bandwidth":
                samples.append(float(np.min([v.min_bandwidth for v in vals])))
            elif metric == "max_congestion":
                samples.append(float(np.max([v.max_congestion for v in vals])))
            else:  # hist
                loads = np.concatenate([v.channel_load for v in vals])
                h = np.bincount(loads)
                hist_acc = h if hist_acc is None else _merge_hist(hist_acc, h)
            continue
        result = sim.evaluate(flows)
        if metric == "avg_bandwidth":
            samples.append(result.mean_bandwidth)
        elif metric == "min_bandwidth":
            samples.append(result.min_bandwidth)
        elif metric == "max_congestion":
            samples.append(result.max_congestion)
        else:  # hist
            h = np.bincount(result.channel_load)
            hist_acc = h if hist_acc is None else _merge_hist(hist_acc, h)
    return OrcsResult(
        pattern=pattern,
        metric=metric,
        num_runs=num_runs,
        samples=samples,
        histogram=hist_acc,
    )


def _merge_hist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    n = max(len(a), len(b))
    out = np.zeros(n, dtype=np.int64)
    out[: len(a)] += a
    out[: len(b)] += b
    return out
