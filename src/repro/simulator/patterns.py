"""Traffic-pattern generators.

A *pattern* is a list of ``(source_terminal, destination_terminal)``
flows that are active simultaneously. The effective-bisection-bandwidth
experiments use random bisection perfect matchings (exactly ORCS's
"bisect" pattern); the application models use shifts, all-to-all round
decompositions and stencil exchanges.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.network.fabric import Fabric
from repro.utils.prng import make_rng

Pattern = list[tuple[int, int]]


def _terminal_list(
    fabric: Fabric, terminals: Sequence[int] | None, allow_duplicates: bool = False
) -> list[int]:
    if terminals is None:
        return [int(t) for t in fabric.terminals]
    out = []
    for t in terminals:
        t = int(t)
        if fabric.term_index[t] < 0:
            raise SimulationError(f"node {t} is not a terminal")
        out.append(t)
    if not allow_duplicates and len(set(out)) != len(out):
        raise SimulationError("duplicate terminals in pattern population")
    return out


def bisection_pattern(
    fabric: Fabric,
    seed=None,
    terminals: Sequence[int] | None = None,
    bidirectional: bool = False,
) -> Pattern:
    """Random bisection with perfect matching (ORCS / Netgauge eBB).

    The terminal population is split into two random equal halves A and
    B; each A member is matched with exactly one B member. Flows run
    A→B; with ``bidirectional`` both directions are active (ping-pong).
    An odd terminal is left idle.
    """
    rng = make_rng(seed)
    pop = np.array(_terminal_list(fabric, terminals), dtype=np.int64)
    rng.shuffle(pop)
    half = len(pop) // 2
    a, b = pop[:half], pop[half : 2 * half]
    pattern = [(int(x), int(y)) for x, y in zip(a, b)]
    if bidirectional:
        pattern += [(int(y), int(x)) for x, y in zip(a, b)]
    return pattern


def permutation_pattern(fabric: Fabric, seed=None, terminals: Sequence[int] | None = None) -> Pattern:
    """Random permutation without fixed points (every terminal sends)."""
    rng = make_rng(seed)
    pop = _terminal_list(fabric, terminals)
    n = len(pop)
    if n < 2:
        raise SimulationError("permutation pattern needs >= 2 terminals")
    perm = np.arange(n)
    while True:
        rng.shuffle(perm)
        if not np.any(perm == np.arange(n)):
            break
    return [(pop[i], pop[int(perm[i])]) for i in range(n)]


def shift_pattern(fabric: Fabric, shift: int, terminals: Sequence[int] | None = None) -> Pattern:
    """Cyclic shift: rank ``i`` sends to ``i + shift (mod n)``.

    ``shift=2`` on the 5-ring is the paper's §III deadlock example. The
    population may contain repeated terminals (several ranks sharing a
    node); pairs that land on one terminal are dropped — co-located ranks
    communicate through shared memory, not the network.
    """
    pop = _terminal_list(fabric, terminals, allow_duplicates=True)
    n = len(pop)
    if n < 2:
        raise SimulationError("shift pattern needs >= 2 terminals")
    shift = shift % n
    if shift == 0:
        raise SimulationError("shift of 0 creates self-flows")
    return [
        (pop[i], pop[(i + shift) % n])
        for i in range(n)
        if pop[i] != pop[(i + shift) % n]
    ]


def alltoall_rounds(fabric: Fabric, terminals: Sequence[int] | None = None) -> list[Pattern]:
    """All-to-all decomposed into ``n-1`` shift rounds.

    This is the classic linear-shift schedule used by MPI_Alltoall
    implementations on large messages; the paper's Figure 13 measures
    exactly this congestion behaviour.
    """
    pop = _terminal_list(fabric, terminals)
    n = len(pop)
    if n < 2:
        raise SimulationError("all-to-all needs >= 2 terminals")
    return [shift_pattern(fabric, r, pop) for r in range(1, n)]


def stencil_pattern(
    fabric: Fabric,
    grid: tuple[int, ...],
    terminals: Sequence[int] | None = None,
    periodic: bool = True,
) -> list[Pattern]:
    """Nearest-neighbor exchange phases on a logical process grid.

    Ranks are mapped onto ``grid`` row-major. Returns one pattern per
    (dimension, direction): 2·len(grid) phases, matching the halo
    exchanges of the NAS BT/SP/MG kernels. Repeated terminals (co-located
    ranks) are allowed; their mutual exchanges are dropped.
    """
    pop = _terminal_list(fabric, terminals, allow_duplicates=True)
    size = int(np.prod(grid))
    if size > len(pop):
        raise SimulationError(
            f"grid {grid} needs {size} ranks but only {len(pop)} terminals given"
        )
    pop = pop[:size]
    coords = np.array(np.unravel_index(np.arange(size), grid)).T
    phases: list[Pattern] = []
    for axis, extent in enumerate(grid):
        if extent < 2:
            continue
        for direction in (+1, -1):
            pattern: Pattern = []
            for r in range(size):
                c = coords[r].copy()
                c[axis] += direction
                if periodic:
                    c[axis] %= extent
                elif not (0 <= c[axis] < extent):
                    continue
                peer = int(np.ravel_multi_index(tuple(c), grid))
                if pop[r] != pop[peer]:
                    pattern.append((pop[r], pop[peer]))
            if pattern:
                phases.append(pattern)
    return phases


def hotspot_pattern(
    fabric: Fabric,
    num_hot: int = 1,
    seed=None,
    terminals: Sequence[int] | None = None,
) -> Pattern:
    """Everyone sends to one of ``num_hot`` random hot terminals
    (incast stress; not in the paper, used by extension experiments)."""
    rng = make_rng(seed)
    pop = _terminal_list(fabric, terminals)
    if num_hot < 1 or num_hot >= len(pop):
        raise SimulationError(f"num_hot must be in [1, {len(pop) - 1}]")
    hot = [pop[int(i)] for i in rng.choice(len(pop), size=num_hot, replace=False)]
    hotset = set(hot)
    return [(t, hot[i % num_hot]) for i, t in enumerate(pop) if t not in hotset]


def validate_pattern(fabric: Fabric, pattern: Pattern) -> None:
    """Raise :class:`SimulationError` on malformed flows."""
    for src, dst in pattern:
        if fabric.term_index[src] < 0 or fabric.term_index[dst] < 0:
            raise SimulationError(f"flow ({src}, {dst}) references a non-terminal")
        if src == dst:
            raise SimulationError(f"flow ({src}, {dst}) is a self-flow")
