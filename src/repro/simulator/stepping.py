"""Shared stepping core for the cycle-based finite-buffer simulators.

:class:`FlitSimulator` (closed-loop drain) and
:mod:`repro.simulator.throughput` (open-loop Bernoulli injection) step
the same store-and-forward network: per-``(channel, vc)`` FIFO buffers
of ``buffer_depth`` packets, channels busy for ``packet_length`` cycles
per accepted packet, rotating round-robin service order, and the
full-buffer wait-for-graph deadlock witness. Historically each module
carried its own copy of that loop; :class:`SteppingCore` is the single
implementation both now drive, so the deadlock-detection semantics can
never drift apart.

A caller owns the per-cycle schedule (generate / deliver / advance /
inject) and any measurement windows; the core owns buffer occupancy,
channel serialization state and the stall counter.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from repro.exceptions import SimulationError
from repro.routing.base import RoutingTables
from repro.routing.paths import PathSet


def build_route(
    tables: RoutingTables, paths: PathSet, src: int, dst: int
) -> np.ndarray:
    """Full channel route of the ``src → dst`` flow as one array.

    The injection channel comes from the terminal's forwarding row; the
    switch-level remainder is the precomputed
    ``pid = t_idx * S + s_idx`` path (unique per destination-based
    routing — see :mod:`repro.routing.base`).
    """
    fab = tables.fabric
    t_idx = int(fab.term_index[dst])
    inject = int(tables.next_channel[src, t_idx])
    if inject < 0:
        raise SimulationError(f"no route from {src} to {dst}")
    first_switch = int(fab.channels.dst[inject])
    rest = paths.path(t_idx * fab.num_switches + int(fab.switch_index[first_switch]))
    route = np.empty(len(rest) + 1, dtype=np.int32)
    route[0] = inject
    route[1:] = rest
    return route


class SteppingCore:
    """Finite-buffer store-and-forward stepping state.

    Packets must expose the :class:`repro.simulator.flitsim.Packet`
    protocol: ``channels`` (route array), ``pos`` (index of the channel
    whose buffer holds the packet, -1 while queued at the source),
    ``vc``, ``dst`` and ``next_channel``.
    """

    def __init__(self, chan_dst: np.ndarray, buffer_depth: int, packet_length: int):
        if buffer_depth < 1:
            raise SimulationError("buffer_depth must be >= 1")
        if packet_length < 1:
            raise SimulationError("packet_length must be >= 1")
        self.chan_dst = chan_dst
        self.buffer_depth = buffer_depth
        self.packet_length = packet_length
        #: buffers[(channel, vc)] -> deque of packets, created on demand
        self.buffers: dict[tuple[int, int], deque] = {}
        self.busy_until: dict[int, int] = {}  # channel -> first free cycle
        self.stalls = 0

    # ------------------------------------------------------------------
    def space(self, key: tuple[int, int]) -> int:
        q = self.buffers.get(key)
        return self.buffer_depth - (len(q) if q else 0)

    def channel_free(self, c: int, cycle: int) -> bool:
        return self.busy_until.get(c, 0) <= cycle

    def in_flight(self) -> int:
        return sum(len(q) for q in self.buffers.values())

    # ------------------------------------------------------------------
    def drain_deliveries(
        self, cycle: int, on_delivered: Callable | None = None
    ) -> int:
        """Pop every buffer head sitting on its destination's channel.

        Terminals consume any number of packets per cycle (sinks are not
        the bottleneck). Returns the number of deliveries; each delivered
        packet is passed to ``on_delivered``.
        """
        chan_dst = self.chan_dst
        delivered = 0
        for key in list(self.buffers):
            q = self.buffers[key]
            while q and int(chan_dst[q[0].channels[q[0].pos]]) == q[0].dst:
                p = q.popleft()
                delivered += 1
                if on_delivered is not None:
                    on_delivered(p)
            if not q:
                del self.buffers[key]
        return delivered

    def advance(self, cycle: int) -> int:
        """One hop attempt per occupied buffer, rotating service order.

        The rotation (``cycle % len(keys)`` over dict insertion order)
        keeps any single buffer from monopolising contended channels.
        Returns the number of packets that moved; blocked attempts (busy
        channel or full target buffer) increment :attr:`stalls`.
        """
        buffers = self.buffers
        keys = list(buffers)
        if keys:
            rot = cycle % len(keys)
            keys = keys[rot:] + keys[:rot]
        moved = 0
        for key in keys:
            q = buffers.get(key)
            if not q:
                continue
            p = q[0]
            nxt = p.next_channel
            if nxt is None or not self.channel_free(nxt, cycle):
                self.stalls += 1
                continue
            tgt = (nxt, p.vc)
            if self.space(tgt) <= 0:
                self.stalls += 1
                continue
            q.popleft()
            if not q:
                del buffers[key]
            p.pos += 1
            buffers.setdefault(tgt, deque()).append(p)
            self.busy_until[nxt] = cycle + self.packet_length
            moved += 1
        return moved

    def try_inject(self, p, cycle: int) -> bool:
        """Admit a source-queued packet onto its first channel.

        Returns True (packet now owned by the network) or False (busy
        channel / full buffer; counted as a stall, caller retries next
        cycle).
        """
        c0 = int(p.channels[0])
        if not self.channel_free(c0, cycle):
            self.stalls += 1
            return False
        tgt = (c0, p.vc)
        if self.space(tgt) <= 0:
            self.stalls += 1
            return False
        p.pos = 0
        self.buffers.setdefault(tgt, deque()).append(p)
        self.busy_until[c0] = cycle + self.packet_length
        return True

    # ------------------------------------------------------------------
    def waitfor_cycle(self) -> list[tuple[int, int]]:
        """Cycle in the head-packet wait-for graph (the deadlock witness).

        Each occupied buffer's head waits for its next buffer; only waits
        on *full* buffers count — a circular wait among full buffers can
        never make progress (condition 4 of §III of the paper), while a
        wait on a merely busy channel resolves once serialisation
        finishes.
        """
        return waitfor_cycle(self.buffers, self.buffer_depth)


def waitfor_cycle(
    buffers: dict[tuple[int, int], deque], buffer_depth: int
) -> list[tuple[int, int]]:
    """Functional-graph cycle walk over full-buffer waits (see
    :meth:`SteppingCore.waitfor_cycle`)."""
    waits: dict[tuple[int, int], tuple[int, int]] = {}
    for key, q in buffers.items():
        if not q:
            continue
        nxt = q[0].next_channel
        if nxt is None:
            continue
        tgt = (nxt, q[0].vc)
        if len(buffers.get(tgt, ())) >= buffer_depth:
            waits[key] = tgt
    seen_global: set[tuple[int, int]] = set()
    for start in waits:
        if start in seen_global:
            continue
        trail: list[tuple[int, int]] = []
        index: dict[tuple[int, int], int] = {}
        node = start
        while node in waits and node not in seen_global:
            if node in index:
                return trail[index[node] :]
            index[node] = len(trail)
            trail.append(node)
            node = waits[node]
        seen_global.update(trail)
    return []
