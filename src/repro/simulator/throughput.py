"""Open-loop throughput measurement on the flit-level simulator.

The closed-loop :meth:`FlitSimulator.run` answers "does this traffic
drain?"; this module answers the classic interconnect question "*how
much* load can the routed network sustain?". Sources inject packets as
Bernoulli processes at a configurable rate toward destinations drawn
from a traffic pattern; after a warm-up window we record delivered
throughput and delivery latency. Sweeping the rate produces the familiar
throughput/latency-vs-offered-load curves and the saturation point —
an extension experiment comparing routed bandwidth beyond the paper's
static congestion counting.

Deadlock-prone routings are handled gracefully: if the network wedges,
the measurement reports the deadlock instead of hanging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import span
from repro.simulator.flitsim import FlitSimulator, Packet, record_flit_metrics
from repro.simulator.patterns import Pattern, validate_pattern
from repro.simulator.stepping import SteppingCore, build_route
from repro.utils.prng import make_rng


@dataclass(frozen=True)
class OpenLoopResult:
    """Measurement at one offered load."""

    offered_rate: float  # packets per source per cycle
    delivered_rate: float  # packets per source per cycle, measured window
    mean_latency: float  # cycles from injection-queue entry to delivery
    deadlocked: bool
    cycles: int

    @property
    def accepted_fraction(self) -> float:
        return self.delivered_rate / self.offered_rate if self.offered_rate else 0.0


def run_open_loop(
    sim: FlitSimulator,
    pattern: Pattern,
    rate: float,
    warmup: int = 300,
    measure: int = 700,
    seed=None,
) -> OpenLoopResult:
    """Bernoulli injection at ``rate`` packets/source/cycle.

    Every flow's source injects independently; a source participating in
    several flows round-robins over its destinations. Throughput counts
    deliveries during the measurement window only.
    """
    validate_pattern(sim.fabric, pattern)
    if not (0 < rate <= 1):
        raise SimulationError(f"rate must be in (0, 1], got {rate}")
    if not pattern:
        # Zero demand: nothing to inject, nothing to measure — the sweep
        # degenerates gracefully instead of dividing by zero sources.
        return OpenLoopResult(
            offered_rate=rate, delivered_rate=0.0, mean_latency=0.0,
            deadlocked=False, cycles=0,
        )
    with span(
        "throughput.open_loop", engine=sim.tables.engine, rate=rate, warmup=warmup,
        measure=measure,
    ) as sp:
        result = _run_open_loop(sim, pattern, rate, warmup, measure, seed)
        sp.set_attr("deadlocked", result.deadlocked)
    return result


def _run_open_loop(
    sim: FlitSimulator,
    pattern: Pattern,
    rate: float,
    warmup: int,
    measure: int,
    seed,
) -> OpenLoopResult:
    rng = make_rng(seed)

    # Precompute one route per flow, grouped by source.
    by_source: dict[int, list[tuple[np.ndarray, int, int]]] = {}
    for src, dst in pattern:
        route = build_route(sim.tables, sim.paths, src, dst)
        vc = sim.layered.layer_for(src, dst) if sim.layered is not None else 0
        by_source.setdefault(src, []).append((route, vc, dst))

    sources = list(by_source.items())
    rr = {src: 0 for src, _ in sources}
    inject_queues: dict[int, deque] = {src: deque() for src, _ in sources}

    core = SteppingCore(sim.fabric.channels.dst, sim.buffer_depth, sim.packet_length)
    L = sim.packet_length
    delivered_window = 0
    delivered_total = 0
    injected = 0
    latencies: list[int] = []
    pid = 0
    total_cycles = warmup + measure

    for cycle in range(1, total_cycles + 1):
        # Generation.
        draws = rng.random(len(sources))
        for (src, flows), u in zip(sources, draws):
            if u < rate:
                route, vc, dst = flows[rr[src] % len(flows)]
                rr[src] += 1
                inject_queues[src].append(
                    Packet(pid=pid, src=src, dst=dst, vc=vc, channels=route, born=cycle)
                )
                pid += 1

        # Deliveries.
        def on_delivered(p, cycle=cycle):
            nonlocal delivered_total, delivered_window
            delivered_total += 1
            if cycle > warmup:
                delivered_window += 1
                latencies.append(cycle - p.born)

        moved = core.drain_deliveries(cycle, on_delivered)

        # Advancement (rotating service order).
        moved += core.advance(cycle)

        # Injection.
        for src, _flows in sources:
            q = inject_queues[src]
            if q and core.try_inject(q[0], cycle):
                q.popleft()
                injected += 1
                moved += 1

        if moved == 0 and core.in_flight() > 0:
            # Only a circular wait among FULL buffers proves a wedge;
            # serialisation stalls (packet_length > 1) are transient.
            witness = core.waitfor_cycle()
            if witness:
                record_flit_metrics(injected, delivered_total, core.stalls, True, L)
                return OpenLoopResult(
                    offered_rate=rate,
                    delivered_rate=delivered_window / max(1, (cycle - warmup)) / len(sources)
                    if cycle > warmup
                    else 0.0,
                    mean_latency=float(np.mean(latencies)) if latencies else float("inf"),
                    deadlocked=True,
                    cycles=cycle,
                )

    record_flit_metrics(injected, delivered_total, core.stalls, False, L)
    return OpenLoopResult(
        offered_rate=rate,
        delivered_rate=delivered_window / measure / len(sources),
        mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        deadlocked=False,
        cycles=total_cycles,
    )


def saturation_sweep(
    sim: FlitSimulator,
    pattern: Pattern,
    rates: list[float] | None = None,
    warmup: int = 300,
    measure: int = 700,
    seed=None,
) -> list[OpenLoopResult]:
    """Measure throughput/latency across offered loads.

    Returns one :class:`OpenLoopResult` per rate; the saturation
    throughput is where ``delivered_rate`` stops tracking
    ``offered_rate``.
    """
    if rates is None:
        rates = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    return [
        run_open_loop(sim, pattern, rate, warmup=warmup, measure=measure, seed=seed)
        for rate in rates
    ]


def saturation_point(results: list[OpenLoopResult], tolerance: float = 0.9) -> float:
    """Largest offered rate still delivering >= ``tolerance`` of it."""
    sustained = [r.offered_rate for r in results if not r.deadlocked and r.accepted_fraction >= tolerance]
    return max(sustained) if sustained else 0.0
