"""Small shared utilities: seeded RNG plumbing, timers and table reporting."""

from repro.utils.prng import make_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.reporting import Table, format_fixed

__all__ = ["make_rng", "spawn_rngs", "Timer", "Table", "format_fixed"]
