"""Crash-safe file writes (tmp file + ``os.replace``).

Checkpoints, fabric snapshots and soak reports are the service's
recovery substrate: a process killed mid-write must never leave a
truncated JSON file behind, because the next start would then fail while
trying to restore. Every artifact writer in the library therefore funnels
through these helpers — the payload is written to a sibling temporary
file in the *same directory* (so the final ``os.replace`` is an atomic
rename on POSIX, never a cross-device copy) and only a complete file
ever appears under the target name.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path


@contextmanager
def atomic_path(path: str | Path, mode: str = "wb"):
    """Yield an open temp file that atomically replaces ``path`` on success.

    On any exception the temp file is removed and ``path`` is left
    untouched (whatever was there before — including nothing — stays).

    >>> import tempfile, os
    >>> target = os.path.join(tempfile.mkdtemp(), "out.txt")
    >>> with atomic_path(target, "w") as fp:
    ...     _ = fp.write("done")
    >>> open(target).read()
    'done'
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    fp = os.fdopen(fd, mode, encoding=None if "b" in mode else "utf-8")
    try:
        yield fp
        fp.flush()
        os.fsync(fp.fileno())
        fp.close()
        os.replace(tmp, path)
    except BaseException:
        fp.close()
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically write ``text`` to ``path`` (complete file or no change)."""
    with atomic_path(path, "w") as fp:
        fp.write(text)


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Atomically write ``payload`` to ``path``."""
    with atomic_path(path, "wb") as fp:
        fp.write(payload)


def replace_dir(tmp_dir: str | Path, final_dir: str | Path) -> None:
    """Atomically publish a staged directory under its final name.

    ``final_dir`` must not already exist (checkpoint directories are
    versioned, so names are never reused); a stale directory left by a
    crashed predecessor is removed first.
    """
    import shutil

    final_dir = Path(final_dir)
    if final_dir.exists():
        shutil.rmtree(final_dir)
    os.rename(tmp_dir, final_dir)
