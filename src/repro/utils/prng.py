"""Seeded random-number plumbing.

Every stochastic component of the library (random topologies, bisection
patterns, tie-shuffling in routing engines) takes either an integer seed or
a ready :class:`numpy.random.Generator`. These helpers normalise that
convention and derive independent child streams, so that

* the same seed always reproduces the same experiment end to end, and
* sub-components (e.g. the 1000 bisection patterns of a Netgauge run) get
  statistically independent streams instead of correlated slices.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

import numpy as np

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def make_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an ``int``, a ``SeedSequence``
    or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    non-overlapping streams. If ``seed`` is already a ``Generator`` the
    children are derived from its bit generator's seed sequence when
    available, otherwise from integers drawn from it.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq
        if ss is None:  # pragma: no cover - only for exotic bit generators
            seeds = seed.integers(0, 2**63 - 1, size=n)
            return [np.random.default_rng(int(s)) for s in seeds]
        return [np.random.default_rng(child) for child in ss.spawn(n)]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_fabric_seed(fabric) -> int:
    """Deterministic seed derived from a fabric's structure.

    CRC32 over the node kinds and channel endpoint arrays: the same
    fabric yields the same seed in every process, interpreter and run —
    unlike ``hash()`` (salted per process) or OS entropy. Engines use
    this when a stochastic option (e.g. ``dest_order="random"``) is
    requested without an explicit seed, so that a routing recomputed in
    a worker, a restarted service, or a differential test is still
    bit-reproducible.

    The CRC is cached on the fabric after the first call — fabrics are
    immutable, and re-hashing three full-length arrays on every
    ``resolved_seed`` lookup is measurable at 100k nodes.
    """
    cached = getattr(fabric, "_stable_seed_cache", None)
    if cached is not None:
        return cached
    crc = zlib.crc32(np.ascontiguousarray(fabric.kinds, dtype=np.int8).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(fabric.channels.src, dtype=np.int64).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(fabric.channels.dst, dtype=np.int64).tobytes(), crc)
    try:
        fabric._stable_seed_cache = crc
    except AttributeError:  # pragma: no cover - slotted/frozen stand-ins
        pass
    return crc


def permutation_pairs(rng: np.random.Generator, items: Sequence[int]) -> list[tuple[int, int]]:
    """Random perfect matching of ``items`` into ordered pairs.

    ``items`` is shuffled and consecutive elements paired; a trailing odd
    element is dropped. Used by bisection-pattern generators.
    """
    arr = np.array(list(items), dtype=np.int64)
    rng.shuffle(arr)
    m = (len(arr) // 2) * 2
    return [(int(arr[i]), int(arr[i + 1])) for i in range(0, m, 2)]
