"""Plain-text table emitters used by the benchmark harnesses.

Every benchmark prints the rows/series of the corresponding paper table or
figure. To keep the output diff-able and terminal-friendly we emit simple
fixed-width tables (and optionally CSV) rather than depending on plotting
libraries, which are unavailable offline.
"""

from __future__ import annotations

import io
import json
from collections.abc import Iterable, Sequence


def _json_default(value):
    """Make numpy scalars (and anything else odd) JSON-serialisable."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def format_fixed(value, width: int = 10, precision: int = 3) -> str:
    """Format ``value`` right-aligned in ``width`` columns.

    Floats get ``precision`` digits; ``None`` renders as ``-`` (the paper's
    "missing bar" for engines that fail on a topology).
    """
    if value is None:
        return "-".rjust(width)
    if isinstance(value, bool):
        return str(value).rjust(width)
    if isinstance(value, float):
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


class Table:
    """Fixed-width table accumulator.

    >>> t = Table(["topo", "eBB"], title="demo")
    >>> t.add_row(["ring", 0.5])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo...
    """

    def __init__(self, columns: Sequence[str], title: str = "", precision: int = 3):
        self.columns = list(columns)
        self.title = title
        self.precision = precision
        self.rows: list[list[object]] = []

    def add_row(self, row: Iterable[object]) -> None:
        row = list(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(format_fixed(cell, 0, self.precision).strip()))
        return [w + 2 for w in widths]

    def render(self) -> str:
        widths = self._widths()
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        header = "".join(c.rjust(w) for c, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in self.rows:
            out.write(
                "".join(format_fixed(c, w, self.precision) for c, w in zip(row, widths)) + "\n"
            )
        return out.getvalue()

    def to_json(self, indent: int | None = 2) -> str:
        """Machine-readable form: rows as column-keyed objects (the CLI's
        ``--json`` output mode)."""
        payload = {
            "title": self.title,
            "columns": self.columns,
            "rows": [dict(zip(self.columns, row)) for row in self.rows],
        }
        return json.dumps(payload, indent=indent, default=_json_default)

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(
                ",".join("" if c is None else str(c) for c in row)
            )
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
